//! Hermetic, in-tree subset of `crossbeam` (see `compat/` rationale in
//! `compat/bytes`). Only `crossbeam::channel`'s unbounded MPMC channel is
//! provided — enough for sia-fabric's one-receiver-many-senders endpoints,
//! including `len()` and `recv_timeout`, which `std::sync::mpsc` lacks in the
//! shape the fabric needs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        items: VecDeque<T>,
        receiver_alive: bool,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the undelivered message back, as upstream does.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue empty but senders remain.
        Empty,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(ChanState {
                items: VecDeque::new(),
                receiver_alive: true,
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.queue.lock().unwrap();
            if !state.receiver_alive {
                return Err(SendError(msg));
            }
            state.items.push_back(msg);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.queue.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Nonblocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) =
                    self.chan.ready.wait_timeout(state, deadline - now).unwrap();
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages waiting in the queue.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap().items.len()
        }

        /// True when no message is waiting.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.queue.lock().unwrap().receiver_alive = false;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn disconnect_when_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
