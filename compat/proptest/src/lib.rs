//! Hermetic, in-tree property-testing engine (see `compat/` rationale in
//! `compat/bytes`).
//!
//! Exposes the subset of the `proptest` crate API the SIA test suites use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range/tuple/`Just`/collection/sample strategies, the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!` macros, and
//! [`ProptestConfig`]. Generation is deterministic per (test name, case
//! index), so failures reproduce; there is no shrinking — failing inputs are
//! printed instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---- RNG --------------------------------------------------------------------

/// Deterministic generator (SplitMix64) seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test identifier and case index, so every case is
    /// reproducible without stored seeds.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- failure type -----------------------------------------------------------

/// A failed property assertion (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---- config -----------------------------------------------------------------

/// Runner configuration (only the knobs the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---- Strategy trait ---------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }

    /// Recursive strategies: `recurse` receives the strategy built so far and
    /// wraps it one level deeper, up to `depth` levels. The `_desired_size`
    /// and `_expected_branch` hints of upstream proptest are accepted and
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Bias toward leaves so sizes stay bounded.
            let deeper = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy {
                inner: Arc::new(move |rng: &mut TestRng| {
                    if rng.below(3) == 0 {
                        l.sample(rng)
                    } else {
                        deeper.sample(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ---- primitive strategies ---------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// String strategy from a restricted regex pattern: a sequence of `[class]`
/// segments, each with an optional `{lo,hi}` repeat (default exactly one),
/// with ranges and `\n`/`\t`/`\\`/`\]` escapes inside the class. This covers
/// the patterns used by the workspace's fuzz tests (e.g.
/// `"[a-z_][a-z0-9_]{0,10}"`); anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let segments = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let mut out = String::new();
        for (chars, lo, hi) in &segments {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

fn parse_pattern(pat: &str) -> Option<Vec<(Vec<char>, usize, usize)>> {
    let mut segments = Vec::new();
    let mut rest = pat;
    while !rest.is_empty() {
        let (class, tail) = if let Some(r) = rest.strip_prefix('.') {
            // `.`: any char except newline — approximated as printable ASCII.
            (" -~", r)
        } else {
            let r = rest.strip_prefix('[')?;
            // Find the closing `]`, honoring `\]` escapes.
            let mut close = None;
            let mut escaped = false;
            for (i, c) in r.char_indices() {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, ']') => {
                        close = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let close = close?;
            (&r[..close], &r[close + 1..])
        };
        let (lo, hi, tail) = if let Some(t) = tail.strip_prefix('{') {
            let end = t.find('}')?;
            let (lo, hi) = t[..end].split_once(',')?;
            (
                lo.trim().parse().ok()?,
                hi.trim().parse().ok()?,
                &t[end + 1..],
            )
        } else {
            (1, 1, tail)
        };
        segments.push((parse_class(class)?, lo, hi));
        rest = tail;
    }
    if segments.is_empty() {
        return None;
    }
    Some(segments)
}

fn parse_class(class: &str) -> Option<Vec<char>> {
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        let c = if cs[i] == '\\' && i + 1 < cs.len() {
            i += 1;
            match cs[i] {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            cs[i]
        };
        // Range `a-z` (a `-` not at the ends).
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let end = cs[i + 2];
            for u in c as u32..=end as u32 {
                chars.push(char::from_u32(u)?);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some(chars)
}

// ---- any<T> -----------------------------------------------------------------

/// Full-range strategy for `T` (see [`any`]).
pub struct AnyOf<T>(PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced values spanning many magnitudes.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * (2f64).powi(e)
    }
}

// ---- prop:: modules ---------------------------------------------------------

/// Submodules mirroring `proptest::prop`'s layout (`prop::collection`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size bounds for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for vectors of `elem` with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use super::super::*;

        /// Uniformly selects one of `items`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from empty list");
            Select { items }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::*;

        /// The uniform boolean strategy (`prop::bool::ANY`).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform `true`/`false`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---- macros -----------------------------------------------------------------

/// Declares property tests. Mirrors upstream `proptest!` syntax:
/// an optional `#![proptest_config(..)]`, then `#[test] fn name(pat in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Property assertion: fails the current case (with the generated inputs
/// reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($l), stringify!($r), l, r
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0..2.0f64).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1i64..=4).sample(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::for_case("vec", 1);
        let s = prop::collection::vec((1usize..5, prop::bool::ANY), 2..6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            for (n, _b) in v {
                assert!((1..5).contains(&n));
            }
        }
    }

    #[test]
    fn regex_class_strategy() {
        let mut rng = TestRng::for_case("re", 2);
        let s = "[ -~\n]{0,300}";
        for _ in 0..50 {
            let text = Strategy::sample(&s, &mut rng);
            assert!(text.len() <= 300);
            assert!(text.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let ident = "[a-z_][a-z0-9_]{0,10}";
        for _ in 0..50 {
            let text = Strategy::sample(&ident, &mut rng);
            assert!(!text.is_empty() && text.len() <= 11);
            let first = text.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Leaf(i64),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> u32 {
            match e {
                E::Leaf(_) => 0,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(E::Leaf);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_case("rec", 3);
        let mut saw_pair = false;
        for _ in 0..200 {
            let e = s.sample(&mut rng);
            assert!(depth(&e) <= 3);
            saw_pair |= matches!(e, E::Pair(..));
        }
        assert!(saw_pair);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..10, 0u32..10), c in 5i64..6,) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, 5);
        }
    }
}
