//! Hermetic, in-tree subset of the `bytes` crate.
//!
//! The SIA workspace builds in offline environments where crates.io is
//! unreachable, so external dependencies are replaced by small local crates
//! exposing exactly the API surface the workspace uses (see `compat/`).
//! This one covers the cursor/builder pair the bytecode wire codec needs:
//! [`Bytes`] (an owned, consumable byte cursor) and [`BytesMut`] (an
//! append-only builder), with the little-endian accessors of the upstream
//! [`Buf`]/[`BufMut`] traits.

use std::ops::Deref;

/// Read side: sequential little-endian extraction from a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Consumes `n` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

/// Write side: sequential little-endian appends.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// An owned byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Builds a buffer by copying `s`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// The unread bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes {
            data: self.take(n).to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// An append-only byte builder, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates a builder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_and_slicing() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
