//! Hermetic, in-tree micro-benchmark harness (see `compat/` rationale in
//! `compat/bytes`).
//!
//! Implements the `criterion` API subset the SIA bench suites use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — with real wall-clock measurement: each
//! benchmark is warmed up, then timed over batches sized to the target
//! sample count, and the per-iteration median/mean plus derived throughput
//! are printed to stdout. There are no HTML reports or statistics beyond
//! that; `cargo bench` output is a plain table.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units the measured time is normalized against when reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration (reported as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as MiB/s).
    Bytes(u64),
}

/// A benchmark's identifier within a group: function name plus an optional
/// parameter rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function parameter sweeps.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state; one per `criterion_group!` runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u32;
        self
    }

    /// Sets the per-iteration work used to derive throughput numbers.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs a parameterized benchmark; `input` is passed through to the
    /// closure as upstream criterion does.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (parity with upstream; settings die with the group).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: find an iteration count that takes a measurable slice of
        // time (~10ms per sample), capped so huge benches still finish.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let t = b.elapsed;
            if t >= Duration::from_millis(10) || iters >= 1 << 20 {
                break t.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let target_sample = Duration::from_millis(10).as_secs_f64();
        let iters_per_sample = ((target_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        // Keep total time bounded regardless of requested sample count.
        let budget = Duration::from_secs(3);
        let start = Instant::now();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
            if start.elapsed() > budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{label:<28} median {:>12}  mean {:>12}{rate}",
            self.name,
            fmt_time(median),
            fmt_time(mean),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into a runner, as upstream's simple form
/// does. Only `criterion_group!(name, fn, ...)` is supported (no custom
/// config closure).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(2u64 + 2));
        });
        group.finish();
        assert!(ran > 0);
    }
}
