//! Quickstart: compile and run the paper's §IV-D contraction on the SIP.
//!
//! The SIAL program computes `R(M,N,I,J) = Σ_{L,S} V(M,N,L,S)·T(L,S,I,J)`
//! where `V` blocks are computed on demand by a registered super instruction
//! and `T` is a distributed array — the exact example the paper walks
//! through, at laptop scale.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sia::Sia;

const PROGRAM: &str = r#"
sial quickstart
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
temp seed(L,S,I,J)
scalar rnorm

# Phase 1: fill the distributed T array.
pardo L, S, I, J
  execute fill_t seed(L,S,I,J)
  put T(L,S,I,J) = seed(L,S,I,J)
endpardo L, S, I, J
sip_barrier

# Phase 2: the paper's contraction (its Section IV-D listing).
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
sip_barrier

# Phase 3: a global diagnostic, ‖R‖².
pardo M, N, I, J
  get R(M,N,I,J)
  rnorm += R(M,N,I,J) * R(M,N,I,J)
endpardo M, N, I, J
sip_barrier
execute sip_allreduce rnorm
print "||R||^2 =", rnorm
endsial
"#;

fn main() {
    // Show the compiled bytecode first — the "assembly" of the SIA.
    let program = sia::compile(PROGRAM).expect("SIAL compiles");
    println!("--- SIA bytecode ---");
    print!("{}", sia::disassemble(&program));
    println!("--------------------\n");

    let out = Sia::builder()
        .workers(3)
        .io_servers(1)
        .segment_size(4)
        .bind("norb", 3)
        .bind("nocc", 2)
        .register("fill_t", |args, _env| {
            let segs: Vec<i64> = args[0].segs()?.to_vec();
            let salt: f64 = segs.iter().map(|&s| s as f64).sum();
            args[0].block_mut()?.fill(0.25 * salt);
            Ok(())
        })
        .register("compute_integrals", |args, _env| {
            let segs: Vec<i64> = args[0].segs()?.to_vec();
            let salt: f64 = segs
                .iter()
                .enumerate()
                .map(|(d, &s)| (d as f64 + 1.0) * s as f64)
                .sum();
            args[0].block_mut()?.fill(1.0 / (1.0 + salt));
            Ok(())
        })
        .run(PROGRAM)
        .expect("run succeeds");

    println!("scalars: {:?}", out.scalars);
    println!(
        "dry-run estimate: {} KiB per worker",
        out.dry_run.per_worker_bytes / 1024
    );
    println!(
        "traffic: {} messages, {} KiB",
        out.traffic.messages,
        out.traffic.bytes / 1024
    );
    println!("\n--- profile (top lines) ---");
    println!("{}", out.profile);
    assert!(out.scalars["rnorm"] > 0.0);
}
