//! Served (disk-backed) arrays and the checkpoint facility.
//!
//! The paper's domain regularly exceeds aggregate RAM: "the rest are used
//! less frequently … and are usually kept on disk". This example exercises
//! both disk paths of the SIP:
//!
//! 1. `prepare`/`request` against a **served** array — blocks stream through
//!    the I/O servers' write-behind caches onto disk files;
//! 2. `blocks_to_list`/`list_to_blocks` — the "rudimentary checkpointing
//!    facility that allows programs to be restarted".
//!
//! ```text
//! cargo run --release --example disk_backed_restart
//! ```

use sia::Sia;

const PROGRAM: &str = r#"
sial disk_backed_restart
aoindex i = 1, n
aoindex j = 1, n
served Big(i,j)
distributed Work(i,j)
temp t(i,j)
temp u(i,j)
temp z(i,j)
scalar check

# Produce blocks and push them to disk through the I/O servers.
pardo i, j
  t(i,j) = 10.0 * i + j
  prepare Big(i,j) = t(i,j)
endpardo i, j
server_barrier

# Read them back, transform, store in a distributed array.
pardo i, j
  request Big(i,j)
  u(i,j) = 2.0 * Big(i,j)
  put Work(i,j) = u(i,j)
endpardo i, j
sip_barrier

# Checkpoint the distributed state …
blocks_to_list Work "converged_amplitudes"

# … clobber it (simulating a failed continuation) …
pardo i, j
  z(i,j) = 0.0
  put Work(i,j) = z(i,j)
endpardo i, j
sip_barrier

# … and restore from the checkpoint.
list_to_blocks Work "converged_amplitudes"
sip_barrier

pardo i, j
  get Work(i,j)
  check += Work(i,j) * Work(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce check
endsial
"#;

fn main() {
    let n = 4i64;
    let seg = 4usize;
    // Keep the run directory so the block files are inspectable.
    let run_dir = std::env::temp_dir().join("sia-disk-backed-example");
    let _ = std::fs::remove_dir_all(&run_dir);

    let config = sia::SipConfig::builder()
        .workers(2)
        .io_servers(2)
        .server_cache_blocks(3) // force spills to disk
        .collect_distributed(true)
        .run_dir(run_dir.clone())
        .segment_size(seg)
        .build()
        .expect("valid config");

    let out = Sia::builder()
        .config(config)
        .bind("n", n)
        .run(PROGRAM)
        .expect("run succeeds");

    // Expected: Σ over all blocks/elements of (2·(10i+j))².
    let mut want = 0.0;
    for i in 1..=n {
        for j in 1..=n {
            let v = 2.0 * (10.0 * i as f64 + j as f64);
            want += (seg * seg) as f64 * v * v;
        }
    }
    let got = out.scalars["check"];
    println!("restored checksum = {got:.3} (expected {want:.3})");
    assert!((got - want).abs() < 1e-6);

    // Show what landed on disk.
    let served = run_dir.join("served");
    let mut block_files: Vec<_> = std::fs::read_dir(&served)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    block_files.sort();
    println!(
        "{} served block files on disk under {} (e.g. {:?})",
        block_files.len(),
        served.display(),
        &block_files[..block_files.len().min(3)]
    );
    let ckpt: Vec<_> = std::fs::read_dir(&run_dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| e.file_name().to_string_lossy().ends_with(".sialck"))
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    println!("checkpoint files: {ckpt:?}");
    assert!(!block_files.is_empty());
    assert!(!ckpt.is_empty());
    println!("disk-backed arrays and checkpoint restart verified ✓");
}
