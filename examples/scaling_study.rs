//! A scaling study at supercomputer scale, without the supercomputer.
//!
//! Demonstrates the trace-driven simulation path: compile a SIAL workload,
//! extract its dry-run trace, and replay it against several historical
//! machine models over a sweep of processor counts — the machinery behind
//! every figure harness in `crates/bench`.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use sia::subsystems::chem::{ccsd_iteration, RDX};
use sia::subsystems::sim::machine::{CRAY_XT4, CRAY_XT5, SUN_OPTERON_IB};
use sia::subsystems::sim::{simulate, SimConfig};

fn main() {
    let workload = ccsd_iteration(&RDX, 20, 1);
    let trace = workload.trace(256, 1).expect("trace");
    println!(
        "trace: {:.2} Tflop total, {:.1} GiB moved, {} phases",
        trace.total_flops() as f64 / 1e12,
        trace.total_bytes() as f64 / (1 << 30) as f64,
        trace.phases.len()
    );

    println!(
        "\n{:<34} {:>7} {:>12} {:>10} {:>8}",
        "machine", "procs", "time", "speedup", "wait"
    );
    for machine in [SUN_OPTERON_IB, CRAY_XT4, CRAY_XT5] {
        let mut base: Option<f64> = None;
        for procs in [256u64, 512, 1024, 2048, 4096] {
            let r = simulate(&trace, &SimConfig::sip(machine, procs));
            let base = *base.get_or_insert(r.total_time);
            println!(
                "{:<34} {:>7} {:>10.1} s {:>9.2}x {:>7.1}%",
                machine.name,
                procs,
                r.total_time,
                base / r.total_time,
                r.wait_fraction * 100.0
            );
        }
        println!();
    }

    // Per-phase breakdown at one configuration: where does the time go?
    let r = simulate(&trace, &SimConfig::sip(CRAY_XT5, 1024));
    println!("phase breakdown on {} at 1024 procs:", CRAY_XT5.name);
    for p in &r.phases {
        if p.time > 1e-4 {
            println!(
                "  {:<16} {:>10.2} s  ({:.1} GiB moved)",
                p.label,
                p.time,
                p.bytes as f64 / (1 << 30) as f64
            );
        }
    }
}
