//! The dry run as a planning tool.
//!
//! §V-B: "the master inspects the SIAL program in 'dry-run' mode … This
//! feature allows the user to avoid wasting valuable supercomputing
//! resources on an infeasible computation. If the … computation is not
//! feasible with the available memory, this is reported to the user along
//! with the number of processors that would be sufficient."
//!
//! This example sizes a CCSD amplitude store for the paper's molecules
//! without running anything, then shows the feasibility gate firing.
//!
//! ```text
//! cargo run --release --example dry_run_planner
//! ```

use sia::subsystems::chem::{ccsd_iteration, molecules};
use sia::subsystems::runtime::dryrun;
use sia::{RuntimeError, SipConfig};

fn main() {
    let seg = 24;
    println!(
        "{:<22} {:>10} {:>14} {:>20}",
        "molecule", "T2 (GiB)", "per-worker@256", "workers for 1 GiB"
    );
    for m in molecules::ALL {
        let workload = ccsd_iteration(m, seg, 1);
        let layout = workload.layout(256, 2).expect("layout");
        let config = SipConfig::builder()
            .workers(256)
            .io_servers(2)
            .cache_blocks(64)
            .build()
            .expect("valid config");
        let est = dryrun::estimate(&layout, &config);
        let sufficient = dryrun::sufficient_workers(&layout, &config, 1 << 30)
            .map(|w| w.to_string())
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<22} {:>10.1} {:>11.1} MiB {:>20}",
            m.name,
            m.t2_bytes() as f64 / (1 << 30) as f64,
            est.per_worker_bytes as f64 / (1 << 20) as f64,
            sufficient
        );
    }

    // The gate in action: ask for a run that cannot fit and get the
    // actionable refusal instead of an OOM hours in.
    println!("\nfeasibility gate:");
    let workload = ccsd_iteration(&molecules::WATER_21, seg, 1);
    let config = SipConfig::builder()
        .workers(8)
        .io_servers(1)
        .memory_budget(512 << 20)
        .segment_size(seg)
        .build()
        .expect("valid config");
    match workload.run_real(config) {
        Err(RuntimeError::Infeasible {
            needed_per_worker,
            budget,
            sufficient_workers,
        }) => {
            println!(
                "  refused before launch: needs {:.1} GiB/worker against a {:.1} GiB budget;\n  \
                 the dry run suggests {} workers would suffice — exactly the report §V-B describes",
                needed_per_worker as f64 / (1 << 30) as f64,
                budget as f64 / (1 << 30) as f64,
                sufficient_workers
            );
        }
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("expected the dry run to refuse this configuration"),
    }
}
