//! A scaled-down RHF CCSD run: the workload behind the paper's Figures 2–4,
//! executed for real on the SIP with synthetic integrals.
//!
//! Runs three CCSD sweeps (particle-particle-ladder contraction, amplitude
//! update with orbital-energy denominators, energy reduction), storing the
//! amplitude history on disk through the I/O servers (`served` arrays), and
//! verifies determinism by re-running with a different worker count: the
//! result of a SIAL program must not depend on scheduling.
//!
//! ```text
//! cargo run --release --example ccsd_energy
//! ```

use sia::subsystems::chem::{ccsd_converged, ccsd_iteration, Molecule};
use sia::SipConfig;

fn main() {
    // A scaled-down closed-shell molecule (the real luciferin needs a
    // cluster; the program and runtime paths are identical).
    let molecule = Molecule {
        name: "mini-luciferin",
        formula: "C11H8O3S2N2 / 24",
        electrons: 8,
        n_occ: 4,
        n_ao: 16,
        open_shell: false,
    };
    let seg = 4;
    let iterations = 3;
    let workload = ccsd_iteration(&molecule, seg, iterations);
    println!("workload: {}", workload.name);

    let mut energies = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = SipConfig::builder()
            .workers(workers)
            .io_servers(1)
            .cache_blocks(128)
            .prefetch_depth(2)
            .build()
            .expect("valid config");
        let out = workload.run_real(config).expect("CCSD run succeeds");
        let e = out.scalars["ecorr"];
        println!(
            "workers={workers}: pseudo-correlation energy = {e:.12}, \
             iterations executed = {}, wait = {:.1}%",
            out.profile.iterations,
            out.profile.wait_fraction() * 100.0
        );
        energies.push(e);
    }
    // Scheduling must not change the numbers (accumulation order inside one
    // block is fixed; across blocks the sums are associative-safe here).
    for w in energies.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-9,
            "energy must be independent of worker count: {energies:?}"
        );
    }
    println!("energy independent of worker count ✓");

    // The production pattern: iterate until the correlation energy stops
    // moving, leaving the sweep loop with SIAL's `exit` — the loop behind
    // Figure 2's "16 iterations to converge".
    let converged = ccsd_converged(&molecule, seg, 25, 1.0e-8);
    let out = converged
        .run_real(
            SipConfig::builder()
                .workers(2)
                .io_servers(0)
                .build()
                .expect("valid config"),
        )
        .expect("converged CCSD runs");
    println!(
        "convergence loop: ecorr = {:.12} after {} sweeps (cap was 25)",
        out.scalars["ecorr"], out.scalars["iters_run"]
    );
    assert!(
        out.scalars["iters_run"] < 25.0,
        "must converge before the cap"
    );
}
