//! `siald` — the long-lived SIAL serving daemon.
//!
//! One SIP process admitting many concurrent SIAL programs over a Unix
//! socket: dry-run admission control against a shared memory budget,
//! fair-share chunk scheduling across jobs, per-tenant metric/trace
//! exports, per-job rank-failure isolation (every job runs on its own
//! fabric world), and a warm block cache shared by jobs referencing the
//! same served arrays.
//!
//! ```text
//! siald --socket /tmp/siald.sock --budget 2147483648 --max-jobs 4 \
//!       --data-dir /tmp/siald-data
//! sial submit prog.sial /tmp/siald.sock tenant=alice bind:n=6
//! sial status /tmp/siald.sock
//! ```
//!
//! ## Wire protocol (one request line per connection)
//!
//! ```text
//! ping                         -> ok pong
//! submit <file> [k=v ...]      -> ok <id>
//!                              |  rejected needed=<b> available=<b> budget=<b>
//!                              |  error <msg>
//! status                       -> job <id> ... (one line per job), then: end
//! status <id>                  -> job <id> ...
//! wait <id> [timeout_ms]       -> job <id> ...  |  error timeout
//! fairness                     -> ok jain=<x>
//! shutdown                     -> ok bye (after all jobs finish)
//! ```
//!
//! Submit options: `tenant=<name>` `priority=<n>` `workers=<n>` `io=<n>`
//! `seg=<n>` `nsub=<n>` `cache=<n>` `bind:<const>=<int>` `threshold=<x>`
//! `density:<array>=<frac>` `chem=1` `export=0` `placement=planned`
//! `fault=<spec>@<seed>` (spec as in `sial run --fault-plan`).

use sia::runtime::serve::{AdmitError, Daemon, DaemonConfig, JobSpec, JobStatus};
use sia::subsystems::chem::register_integrals;
use sia::{ConstBindings, SegmentConfig, SipConfig, SuperRegistry};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: siald [--socket <path>] [--budget <bytes>] [--max-jobs <n>]\n\
         \x20            [--data-dir <dir>] [--warm-blocks <n>]\n\
         defaults: socket ./siald.sock, budget 4 GiB, max-jobs 4,\n\
         data-dir <tmp>/siald-<pid>, warm-blocks 4096"
    );
    ExitCode::from(2)
}

fn job_line(s: &JobStatus) -> String {
    let mut line = format!(
        "job {} tenant={} state={} queued_ms={} run_ms={} granted={} total={} \
         warm_hits={} admitted_bytes={}",
        s.id,
        s.tenant,
        s.state,
        s.queued_ms,
        s.run_ms,
        s.granted,
        s.total,
        s.warm_hits,
        s.admitted_bytes
    );
    if let Some(p) = &s.trace_path {
        line.push_str(&format!(" trace={}", p.display()));
    }
    if let Some(p) = &s.profile_json {
        line.push_str(&format!(" profile={}", p.display()));
    }
    if let sia::runtime::serve::JobState::Failed(e) = &s.state {
        line.push_str(&format!(" error={}", e.replace([' ', '\n'], "_")));
    }
    for (name, value) in &s.scalars {
        line.push_str(&format!(" scalar:{name}={value}"));
    }
    line
}

/// Parses a `submit` request's option tokens into a job spec.
fn parse_submit(file: &str, opts: &[&str]) -> Result<JobSpec, String> {
    let data = std::fs::read(file).map_err(|e| format!("{file}: {e}"))?;
    let program = if data.starts_with(b"SIAB") {
        sia::bytecode::decode_program(&data).map_err(|e| format!("{file}: {e}"))?
    } else {
        let text = String::from_utf8(data).map_err(|_| format!("{file}: not UTF-8"))?;
        sia::compile(&text).map_err(|e| format!("{file}: {e}"))?
    };

    let mut tenant = "default".to_string();
    let mut priority = 1u32;
    let mut chem = false;
    let mut export = true;
    let mut seg = 8usize;
    let mut nsub = 2usize;
    let mut bindings = ConstBindings::new();
    let mut builder = SipConfig::builder();
    for tok in opts {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad option `{tok}`"))?;
        match k {
            "tenant" => tenant = v.to_string(),
            "priority" => priority = v.parse().map_err(|e| format!("priority: {e}"))?,
            "workers" => builder = builder.workers(v.parse().map_err(|e| format!("workers: {e}"))?),
            "io" => builder = builder.io_servers(v.parse().map_err(|e| format!("io: {e}"))?),
            "seg" => seg = v.parse().map_err(|e| format!("seg: {e}"))?,
            "nsub" => nsub = v.parse().map_err(|e| format!("nsub: {e}"))?,
            "cache" => {
                builder = builder.cache_blocks(v.parse().map_err(|e| format!("cache: {e}"))?)
            }
            "threshold" => {
                builder =
                    builder.sparsity_threshold(v.parse().map_err(|e| format!("threshold: {e}"))?)
            }
            "placement" => match v {
                "hash" => builder = builder.placement(sia::Placement::Hash),
                "planned" => builder = builder.placement(sia::Placement::Planned),
                other => return Err(format!("unknown placement `{other}`")),
            },
            "chem" => chem = v != "0",
            "export" => export = v != "0",
            "fault" => {
                let (spec, seed) = v
                    .rsplit_once('@')
                    .ok_or_else(|| format!("fault expects spec@seed, got `{v}`"))?;
                let seed: u64 = seed.parse().map_err(|e| format!("fault seed: {e}"))?;
                let fault = parse_fault_spec(spec, seed)?;
                builder = builder.fault(fault);
            }
            _ if k.starts_with("bind:") => {
                let name = &k["bind:".len()..];
                bindings.insert(
                    name.to_string(),
                    v.parse().map_err(|e| format!("{k}: {e}"))?,
                );
            }
            _ if k.starts_with("density:") => {
                let name = &k["density:".len()..];
                builder =
                    builder.sparsity_density(name, v.parse().map_err(|e| format!("{k}: {e}"))?);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    builder = builder.segments(SegmentConfig {
        default: seg,
        nsub,
        ..Default::default()
    });
    let config = builder.build().map_err(|e| e.to_string())?;
    let mut registry = SuperRegistry::new();
    if chem {
        let n_occ = bindings
            .get("nocc")
            .map(|&o| o as usize * seg)
            .unwrap_or(seg);
        register_integrals(&mut registry, seg, n_occ);
    }
    Ok(JobSpec {
        tenant,
        priority,
        program,
        bindings,
        config,
        registry,
        export,
    })
}

/// The `--fault-plan` spec grammar of `sial run`, shared over the wire:
/// `drop=0.05,dup=0.01,delay=0.02,crash=1@8`.
fn parse_fault_spec(spec: &str, seed: u64) -> Result<sia::FaultConfig, String> {
    let mut plan = sia::FaultPlan::seeded(seed);
    let mut crash = None;
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec expects k=v parts, got `{part}`"))?;
        match k {
            "drop" => plan.drop = v.parse().map_err(|e| format!("fault drop: {e}"))?,
            "dup" | "duplicate" => {
                plan.duplicate = v.parse().map_err(|e| format!("fault dup: {e}"))?
            }
            "delay" => plan.delay = v.parse().map_err(|e| format!("fault delay: {e}"))?,
            "crash" => {
                let (w, i) = v
                    .split_once('@')
                    .ok_or_else(|| format!("crash expects W@I, got `{v}`"))?;
                crash = Some(sia::CrashSchedule {
                    worker: w.parse().map_err(|e| format!("crash worker: {e}"))?,
                    after_iterations: i.parse().map_err(|e| format!("crash iterations: {e}"))?,
                });
            }
            other => return Err(format!("unknown fault key `{other}`")),
        }
    }
    let mut fault = sia::FaultConfig::new(plan);
    fault.crash = crash;
    Ok(fault)
}

fn handle(stream: UnixStream, daemon: &Daemon, stop: &AtomicBool) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let reply = match tokens.as_slice() {
        ["ping"] => "ok pong".to_string(),
        ["submit", file, opts @ ..] => match parse_submit(file, opts) {
            Ok(spec) => match daemon.submit(spec) {
                Ok(id) => format!("ok {id}"),
                Err(AdmitError::OverBudget {
                    needed_bytes,
                    available_bytes,
                    budget_bytes,
                }) => format!(
                    "rejected needed={needed_bytes} available={available_bytes} \
                     budget={budget_bytes}"
                ),
                Err(AdmitError::Invalid(m)) => format!("error {m}"),
            },
            Err(e) => format!("error {e}"),
        },
        ["status"] => {
            let mut buf = String::new();
            for s in daemon.list() {
                buf.push_str(&job_line(&s));
                buf.push('\n');
            }
            buf.push_str("end");
            buf
        }
        ["status", id] => match id.parse().ok().and_then(|id| daemon.status(id)) {
            Some(s) => job_line(&s),
            None => "error unknown job".to_string(),
        },
        ["wait", id, rest @ ..] => {
            let timeout = rest
                .first()
                .and_then(|t| t.parse().ok())
                .unwrap_or(600_000u64);
            match id
                .parse()
                .ok()
                .and_then(|id| daemon.wait(id, Duration::from_millis(timeout)))
            {
                Some(s) => job_line(&s),
                None => "error timeout".to_string(),
            }
        }
        ["fairness"] => format!("ok jain={:.4}", daemon.fairness()),
        ["shutdown"] => {
            stop.store(true, Ordering::SeqCst);
            "ok bye".to_string()
        }
        _ => "error unknown command".to_string(),
    };
    let _ = writeln!(out, "{reply}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = PathBuf::from("siald.sock");
    let mut cfg = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--socket" => socket = PathBuf::from(need("--socket")?),
                "--budget" => {
                    cfg.budget_bytes = need("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?
                }
                "--max-jobs" => {
                    cfg.max_concurrent = need("--max-jobs")?
                        .parse()
                        .map_err(|e| format!("--max-jobs: {e}"))?
                }
                "--data-dir" => cfg.data_dir = PathBuf::from(need("--data-dir")?),
                "--warm-blocks" => {
                    cfg.warm_blocks = need("--warm-blocks")?
                        .parse()
                        .map_err(|e| format!("--warm-blocks: {e}"))?
                }
                other => return Err(format!("unknown option `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return usage();
        }
    }

    let _ = std::fs::remove_file(&socket);
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("siald: bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&cfg.data_dir) {
        eprintln!("siald: create {}: {e}", cfg.data_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "siald: listening on {} (budget {} bytes, max {} concurrent, data {})",
        socket.display(),
        cfg.budget_bytes,
        cfg.max_concurrent,
        cfg.data_dir.display()
    );
    let daemon = Arc::new(Daemon::new(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    // Each connection carries one request; short poll timeouts let the
    // accept loop observe a shutdown request promptly, and a tight accept
    // cadence keeps back-to-back submits from serializing the batch (fair
    // share can only equalize jobs that actually overlap).
    let _ = listener.set_nonblocking(true);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let daemon = Arc::clone(&daemon);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || handle(stream, &daemon, &stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => {
                eprintln!("siald: accept: {e}");
                break;
            }
        }
    }
    daemon.shutdown();
    let _ = std::fs::remove_file(&socket);
    println!("siald: bye");
    ExitCode::SUCCESS
}
