//! `sial` — the SIA command-line driver.
//!
//! ```text
//! sial check   prog.sial                      # compile, report diagnostics
//! sial compile prog.sial -o prog.siab        # emit SIA bytecode
//! sial disasm  prog.sial|prog.siab           # show the bytecode listing
//! sial dryrun  prog.sial --workers 64 --seg 16 --bind norb=20 --bind nocc=4
//! sial run     prog.sial --workers 4 --seg 8 --bind n=6 [--chem]
//! sial simulate prog.sial --workers 4096 --machine xt5 --seg 24 --bind norb=20
//! ```
//!
//! `--chem` registers the synthetic chemistry kernels (`compute_integrals`,
//! `scale_by_denominator`, …) so the programs in `crates/chem` run as-is.

use sia::subsystems::chem::{integral_cost_model, register_integrals};
use sia::subsystems::sim::machine;
use sia::subsystems::sim::{simulate, SimConfig};
use sia::{ConstBindings, SegmentConfig, Sip, SipConfig, SuperRegistry};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sial <check|compile|disasm|dryrun|run|simulate> <file> [options]\n\
         options:\n\
           -o <file>          output path (compile)\n\
           --workers <n>      worker count (default 2)\n\
           --io <n>           I/O server count (default 1)\n\
           --seg <n>          segment size (default 8)\n\
           --nsub <n>         subsegments per segment (default 2)\n\
           --prefetch <n>     prefetch look-ahead depth (default 2)\n\
           --cache <n>        block-cache capacity (default 64)\n\
           --budget <bytes>   per-worker memory budget for the dry-run gate\n\
           --bind k=v         bind a symbolic constant (repeatable)\n\
           --machine <name>   simulate: sun|xt4|xt5|altix|bgp (default xt5)\n\
           --chem             register the synthetic chemistry kernels\n\
           --profile          print the per-instruction profile after a run"
    );
    ExitCode::from(2)
}

struct Opts {
    output: Option<String>,
    config: SipConfig,
    bindings: ConstBindings,
    chem: bool,
    profile: bool,
    seg: usize,
    machine: &'static str,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        output: None,
        config: SipConfig {
            collect_distributed: false,
            ..Default::default()
        },
        bindings: ConstBindings::new(),
        chem: false,
        profile: false,
        seg: 8,
        machine: "xt5",
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" => opts.output = Some(need("-o")?),
            "--workers" => {
                opts.config.workers = need("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--io" => {
                opts.config.io_servers = need("--io")?.parse().map_err(|e| format!("--io: {e}"))?
            }
            "--seg" => opts.seg = need("--seg")?.parse().map_err(|e| format!("--seg: {e}"))?,
            "--nsub" => {
                opts.config.segments.nsub = need("--nsub")?
                    .parse()
                    .map_err(|e| format!("--nsub: {e}"))?
            }
            "--prefetch" => {
                opts.config.prefetch_depth = need("--prefetch")?
                    .parse()
                    .map_err(|e| format!("--prefetch: {e}"))?
            }
            "--cache" => {
                opts.config.cache_blocks = need("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--budget" => {
                opts.config.memory_budget = Some(
                    need("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--bind" => {
                let kv = need("--bind")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects k=v, got `{kv}`"))?;
                let v: i64 = v.parse().map_err(|e| format!("--bind {k}: {e}"))?;
                opts.bindings.insert(k.to_string(), v);
            }
            "--machine" => {
                let name = need("--machine")?;
                opts.machine = match name.as_str() {
                    "sun" => "sun",
                    "xt4" => "xt4",
                    "xt5" => "xt5",
                    "altix" => "altix",
                    "bgp" => "bgp",
                    other => return Err(format!("unknown machine `{other}`")),
                };
            }
            "--chem" => opts.chem = true,
            "--profile" => opts.profile = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    opts.config.segments = SegmentConfig {
        default: opts.seg,
        nsub: opts.config.segments.nsub,
        ..Default::default()
    };
    Ok(opts)
}

fn load_program(path: &str) -> Result<sia::Program, String> {
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if data.starts_with(b"SIAB") {
        sia::bytecode::decode_program(&data).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = String::from_utf8(data).map_err(|_| format!("{path}: not UTF-8"))?;
        sia::compile(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file, rest) = match args.as_slice() {
        [cmd, file, rest @ ..] => (cmd.as_str(), file.as_str(), rest),
        _ => return usage(),
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    match cmd {
        "check" => match load_program(file) {
            Ok(p) => {
                println!(
                    "{}: ok — {} instructions, {} arrays, {} indices, {} constants",
                    file,
                    p.code.len(),
                    p.arrays.len(),
                    p.indices.len(),
                    p.consts.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "compile" => match load_program(file) {
            Ok(p) => {
                let out = opts.output.unwrap_or_else(|| {
                    Path::new(file)
                        .with_extension("siab")
                        .to_string_lossy()
                        .into_owned()
                });
                let bytes = sia::bytecode::encode_program(&p);
                match std::fs::write(&out, &bytes) {
                    Ok(()) => {
                        println!("wrote {out} ({} bytes)", bytes.len());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{out}: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => match load_program(file) {
            Ok(p) => {
                print!("{}", sia::disassemble(&p));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "dryrun" => match load_program(file) {
            Ok(p) => {
                let sip = Sip::new(opts.config.clone());
                match sip.dry_run(p, &opts.bindings) {
                    Ok(est) => {
                        println!(
                            "per-worker estimate: {:.1} MiB ({} workers)",
                            est.per_worker_bytes as f64 / (1 << 20) as f64,
                            opts.config.workers
                        );
                        println!(
                            "per-server estimate: {:.1} MiB; largest block {} KiB; cache {:.1} MiB",
                            est.per_server_bytes as f64 / (1 << 20) as f64,
                            est.largest_block_bytes / 1024,
                            est.cache_bytes as f64 / (1 << 20) as f64
                        );
                        for (name, bytes) in &est.breakdown {
                            println!("  {name:<20} {:.2} MiB", *bytes as f64 / (1 << 20) as f64);
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "run" => match load_program(file) {
            Ok(p) => {
                let mut registry = SuperRegistry::new();
                if opts.chem {
                    // The occupied count for denominators: `nocc` binding ×
                    // segment size when present.
                    let n_occ = opts
                        .bindings
                        .get("nocc")
                        .map(|&o| o as usize * opts.seg)
                        .unwrap_or(opts.seg);
                    register_integrals(&mut registry, opts.seg, n_occ);
                }
                let sip = Sip::new(opts.config).with_registry(registry);
                match sip.run(p, &opts.bindings) {
                    Ok(out) => {
                        for (name, value) in &out.scalars {
                            println!("{name} = {value:.12}");
                        }
                        for w in &out.warnings {
                            eprintln!("warning: {w}");
                        }
                        println!(
                            "iterations: {}, wait: {:.1}%, traffic: {} msgs / {} KiB",
                            out.profile.iterations,
                            out.profile.wait_fraction() * 100.0,
                            out.traffic.messages,
                            out.traffic.bytes / 1024
                        );
                        if opts.profile {
                            println!("\n{}", out.profile);
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "simulate" => match load_program(file) {
            Ok(p) => {
                let layout = sia::runtime::Layout::new(
                    std::sync::Arc::new(p),
                    &opts.bindings,
                    opts.config.segments,
                    sia::runtime::Topology::new(opts.config.workers.max(1), 1),
                );
                let layout = match layout {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let trace = match sia::runtime::trace::generate(&layout, &integral_cost_model()) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let m = match opts.machine {
                    "sun" => machine::SUN_OPTERON_IB,
                    "xt4" => machine::CRAY_XT4,
                    "altix" => machine::SGI_ALTIX,
                    "bgp" => machine::BLUEGENE_P,
                    _ => machine::CRAY_XT5,
                };
                let mut cfg = SimConfig::sip(m, opts.config.workers.max(1) as u64);
                cfg.prefetch_depth = opts.config.prefetch_depth as u32;
                cfg.cache_blocks = opts.config.cache_blocks as u64;
                let r = simulate(&trace, &cfg);
                println!("machine: {}", m.name);
                println!(
                    "simulated time: {:.3} s over {} workers (wait {:.1}%)",
                    r.total_time,
                    opts.config.workers,
                    r.wait_fraction * 100.0
                );
                println!(
                    "work: {:.3} Tflop, {:.2} GiB moved",
                    r.total_flops as f64 / 1e12,
                    r.total_bytes as f64 / (1u64 << 30) as f64
                );
                for ph in &r.phases {
                    if ph.time > 1e-3 * r.total_time {
                        println!("  {:<16} {:>10.3} s", ph.label, ph.time);
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
