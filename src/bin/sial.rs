//! `sial` — the SIA command-line driver.
//!
//! ```text
//! sial check   prog.sial [--json] [--watch]   # compile + static verify:
//!                                             #   structure and pardo races,
//!                                             #   file:line:col diagnostics
//! sial compile prog.sial -o prog.siab        # emit SIA bytecode
//! sial disasm  prog.sial|prog.siab           # show the bytecode listing
//! sial dryrun  prog.sial --workers 64 --seg 16 --bind norb=20 --bind nocc=4
//! sial run     prog.sial --workers 4 --seg 8 --bind n=6 [--chem]
//! sial run     prog.sial --trace out.json --profile-json prof.json
//! sial simulate prog.sial --workers 4096 --machine xt5 --seg 24 --bind norb=20
//! sial trace-lint out.json                   # validate a trace or profile export
//! sial submit  prog.sial siald.sock tenant=alice bind:n=6 [--wait]
//! sial status  siald.sock                    # job table of a running siald
//! ```
//!
//! `--chem` registers the synthetic chemistry kernels (`compute_integrals`,
//! `scale_by_denominator`, …) so the programs in `crates/chem` run as-is.

use sia::subsystems::chem::{integral_cost_model, register_integrals};
use sia::subsystems::sim::machine;
use sia::subsystems::sim::{simulate, SimConfig};
use sia::{
    ConstBindings, CrashSchedule, FaultConfig, FaultPlan, Placement, SegmentConfig, Sip, SipConfig,
    SuperRegistry,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sial <check|compile|disasm|dryrun|run|simulate|trace-lint|submit|status> <file> [options]\n\
         options:\n\
           -o <file>          output path (compile)\n\
           --workers <n>      worker count (default 2)\n\
           --io <n>           I/O server count (default 1)\n\
           --seg <n>          segment size (default 8)\n\
           --nsub <n>         subsegments per segment (default 2)\n\
           --prefetch <n>     prefetch look-ahead depth (default 2)\n\
           --cache <n>        block-cache capacity (default 64)\n\
           --memory-budget <bytes>  per-worker memory ceiling: gates the dry-run\n\
                              estimate up front and is enforced at runtime\n\
                              (eviction pressure, then an OverBudget error);\n\
                              --budget is accepted as an alias\n\
           --run-dir <dir>    served-array / checkpoint directory (enables restart)\n\
           --bind k=v         bind a symbolic constant (repeatable)\n\
           --sparsity-threshold <x>  drop blocks of sparse arrays whose\n\
                              Frobenius norm is below x (0 disables screening)\n\
           --density name=frac  dry-run hint: fraction of a sparse array's\n\
                              blocks expected to be resident (repeatable)\n\
           --fault-seed <n>   enable fault injection with this RNG seed\n\
           --fault-plan <s>   fault spec: drop=0.05,dup=0.01,delay=0.02,crash=1@8\n\
                              (crash=W@I kills worker W after I pardo iterations)\n\
           --machine <name>   simulate: sun|xt4|xt5|altix|bgp (default xt5)\n\
           --placement <p>    distributed-block placement: hash (default) or\n\
                              planned (planner-derived homes + owner-compute\n\
                              chunk affinity + multicast for broadcast reads)\n\
           --chem             register the synthetic chemistry kernels\n\
           --profile          print the per-instruction profile after a run\n\
           --profile-json <file>  write the machine-readable profile (schema\n\
                              sia.profile.v1: overlap, wait causes, metrics)\n\
           --trace <file>     record per-rank events and write the merged\n\
                              Chrome-trace JSON there (load in Perfetto)\n\
           --trace-buffer <n> per-rank trace ring capacity in events\n\
           --check            run: verify the bytecode (as `sial check` does)\n\
                              and refuse to launch the SIP on any finding\n\
           --json             check: emit diagnostics as sia.diag.v1 JSON\n\
           --watch            check: re-check on every file change, reusing\n\
                              the incremental compiler database"
    );
    ExitCode::from(2)
}

/// Parses a `--fault-plan` spec (`drop=0.05,dup=0.01,delay=0.02,crash=1@8`)
/// into a fabric plan plus an optional runtime crash schedule.
fn parse_fault_spec(spec: &str, seed: u64) -> Result<FaultConfig, String> {
    let mut plan = FaultPlan::seeded(seed);
    let mut crash = None;
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("--fault-plan expects k=v parts, got `{part}`"))?;
        match k {
            "drop" => plan.drop = v.parse().map_err(|e| format!("fault drop: {e}"))?,
            "dup" | "duplicate" => {
                plan.duplicate = v.parse().map_err(|e| format!("fault dup: {e}"))?
            }
            "delay" => plan.delay = v.parse().map_err(|e| format!("fault delay: {e}"))?,
            "crash" => {
                let (w, i) = v
                    .split_once('@')
                    .ok_or_else(|| format!("crash expects W@I, got `{v}`"))?;
                crash = Some(CrashSchedule {
                    worker: w.parse().map_err(|e| format!("crash worker: {e}"))?,
                    after_iterations: i.parse().map_err(|e| format!("crash iterations: {e}"))?,
                });
            }
            other => return Err(format!("unknown fault-plan key `{other}`")),
        }
    }
    let mut fault = FaultConfig::new(plan);
    fault.crash = crash;
    Ok(fault)
}

struct Opts {
    output: Option<String>,
    config: SipConfig,
    bindings: ConstBindings,
    chem: bool,
    profile: bool,
    check: bool,
    json: bool,
    watch: bool,
    seg: usize,
    machine: &'static str,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut output = None;
    let mut bindings = ConstBindings::new();
    let mut chem = false;
    let mut profile = false;
    let mut check = false;
    let mut json = false;
    let mut watch = false;
    let mut seg = 8usize;
    let mut nsub = 2usize;
    let mut machine = "xt5";
    let mut fault_seed: Option<u64> = None;
    let mut fault_spec: Option<String> = None;
    let mut builder = SipConfig::builder().collect_distributed(false);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" => output = Some(need("-o")?),
            "--workers" => {
                builder = builder.workers(
                    need("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--io" => {
                builder =
                    builder.io_servers(need("--io")?.parse().map_err(|e| format!("--io: {e}"))?)
            }
            "--seg" => seg = need("--seg")?.parse().map_err(|e| format!("--seg: {e}"))?,
            "--nsub" => {
                nsub = need("--nsub")?
                    .parse()
                    .map_err(|e| format!("--nsub: {e}"))?
            }
            "--prefetch" => {
                builder = builder.prefetch_depth(
                    need("--prefetch")?
                        .parse()
                        .map_err(|e| format!("--prefetch: {e}"))?,
                )
            }
            "--cache" => {
                builder = builder.cache_blocks(
                    need("--cache")?
                        .parse()
                        .map_err(|e| format!("--cache: {e}"))?,
                )
            }
            "--memory-budget" | "--budget" => {
                builder = builder.memory_budget(need(a)?.parse().map_err(|e| format!("{a}: {e}"))?)
            }
            "--run-dir" => builder = builder.run_dir(need("--run-dir")?),
            "--trace" => builder = builder.trace_path(need("--trace")?),
            "--trace-buffer" => {
                builder = builder.trace_buffer_events(
                    need("--trace-buffer")?
                        .parse()
                        .map_err(|e| format!("--trace-buffer: {e}"))?,
                )
            }
            "--profile-json" => builder = builder.profile_json(need("--profile-json")?),
            "--bind" => {
                let kv = need("--bind")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects k=v, got `{kv}`"))?;
                let v: i64 = v.parse().map_err(|e| format!("--bind {k}: {e}"))?;
                bindings.insert(k.to_string(), v);
            }
            "--sparsity-threshold" => {
                builder = builder.sparsity_threshold(
                    need("--sparsity-threshold")?
                        .parse()
                        .map_err(|e| format!("--sparsity-threshold: {e}"))?,
                )
            }
            "--density" => {
                let kv = need("--density")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--density expects name=frac, got `{kv}`"))?;
                let v: f64 = v.parse().map_err(|e| format!("--density {k}: {e}"))?;
                builder = builder.sparsity_density(k, v);
            }
            "--fault-seed" => {
                fault_seed = Some(
                    need("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--fault-plan" => fault_spec = Some(need("--fault-plan")?),
            "--placement" => {
                let name = need("--placement")?;
                builder = builder.placement(match name.as_str() {
                    "hash" => Placement::Hash,
                    "planned" => Placement::Planned,
                    other => {
                        return Err(format!("unknown placement `{other}` (hash|planned)"));
                    }
                });
            }
            "--machine" => {
                let name = need("--machine")?;
                machine = match name.as_str() {
                    "sun" => "sun",
                    "xt4" => "xt4",
                    "xt5" => "xt5",
                    "altix" => "altix",
                    "bgp" => "bgp",
                    other => return Err(format!("unknown machine `{other}`")),
                };
            }
            "--chem" => chem = true,
            "--profile" => profile = true,
            "--check" => check = true,
            "--json" => json = true,
            "--watch" => watch = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    builder = builder.segments(SegmentConfig {
        default: seg,
        nsub,
        ..Default::default()
    });
    if fault_spec.is_some() && fault_seed.is_none() {
        return Err("--fault-plan needs --fault-seed for a reproducible run".into());
    }
    if let Some(seed) = fault_seed {
        let spec = fault_spec.as_deref().unwrap_or("");
        builder = builder.fault(parse_fault_spec(spec, seed)?);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    Ok(Opts {
        output,
        config,
        bindings,
        chem,
        profile,
        check,
        json,
        watch,
        seg,
        machine,
    })
}

/// Runs the static verifier and prints any findings. Returns `true` when
/// the program is clean.
fn verify_program(file: &str, p: &sia::Program) -> bool {
    let diags = sia::runtime::verify::check_program(p);
    if diags.is_empty() {
        return true;
    }
    for d in &diags {
        eprintln!("{file}: {d}");
    }
    let races = diags.iter().filter(|d| d.rule.is_race()).count();
    eprintln!(
        "{file}: check failed — {} finding(s) ({} structural, {races} race)",
        diags.len(),
        diags.len() - races
    );
    false
}

/// Loads `file` (source or `.siab`), compiles/decodes it, and statically
/// verifies the result, collecting every finding as a located,
/// span-carrying diagnostic. The `Err` side is an I/O failure only;
/// compile and verify findings come back in the diagnostic list.
fn check_diagnostics(
    file: &str,
) -> Result<(Option<sia::Program>, Vec<sia::bytecode::diag::Diagnostic>), String> {
    use sia::bytecode::diag::{Diagnostic, Span};
    let data = std::fs::read(file).map_err(|e| format!("{file}: {e}"))?;
    let (program, mut diags) = if data.starts_with(b"SIAB") {
        match sia::bytecode::decode_program(&data) {
            Ok(p) => (Some(p), Vec::new()),
            Err(e) => {
                let mut d = Diagnostic::error("bytecode/decode", Span::new(0, 0), e.to_string());
                d.file = file.to_string();
                (None, vec![d])
            }
        }
    } else {
        let text = String::from_utf8(data).map_err(|_| format!("{file}: not UTF-8"))?;
        match sia::subsystems::frontend::compile_file(file, &text) {
            Ok(p) => (Some(p), Vec::new()),
            Err(e) => (None, e.diagnostics),
        }
    };
    if let Some(p) = &program {
        diags.extend(sia::runtime::verify::check_program(p).iter().map(|d| {
            let mut s = d.to_diagnostic();
            if s.file.is_empty() {
                s.file = file.to_string();
            }
            s
        }));
    }
    Ok((program, diags))
}

/// `sial check [--json] [--watch]`: compile + static verify with located
/// multi-error diagnostics (`file:line:col: error[code]: message`).
fn cmd_check(file: &str, opts: &Opts) -> ExitCode {
    if opts.watch {
        return cmd_check_watch(file, opts);
    }
    let (program, diags) = match check_diagnostics(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", sia::bytecode::diag::diagnostics_to_json(file, &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if !diags.is_empty() {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("{file}: check failed — {} finding(s)", diags.len());
        return ExitCode::FAILURE;
    }
    let p = program.expect("no diagnostics means the program loaded");
    if opts.config.sparsity_threshold > 0.0 && !p.arrays.iter().any(|a| a.sparse) {
        eprintln!(
            "{file}: --sparsity-threshold {} has no effect — no array is \
             declared sparse; add `sparse` to a distributed/served \
             declaration or drop the flag",
            opts.config.sparsity_threshold
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{}: ok — {} instructions, {} arrays, {} indices, {} constants",
        file,
        p.code.len(),
        p.arrays.len(),
        p.indices.len(),
        p.consts.len()
    );
    ExitCode::SUCCESS
}

/// `sial check --watch`: re-checks the file whenever its mtime changes,
/// reusing one incremental [`CompilerDb`](sia::subsystems::frontend::CompilerDb)
/// so an unchanged declaration section re-runs only the queries the edit
/// actually invalidated. Prints the memo-table summary after each pass.
fn cmd_check_watch(file: &str, opts: &Opts) -> ExitCode {
    use sia::subsystems::frontend::CompilerDb;
    let mut db: Option<CompilerDb> = None;
    let mut last: Option<std::time::SystemTime> = None;
    loop {
        let mtime = std::fs::metadata(file).and_then(|m| m.modified()).ok();
        if mtime.is_some() && mtime != last {
            last = mtime;
            let text = match std::fs::read_to_string(file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let db = match &mut db {
                Some(db) => {
                    db.set_source(text);
                    db
                }
                None => db.insert(CompilerDb::new(file, text)),
            };
            let mut diags = db.diagnostics();
            if let Some(p) = db.program() {
                diags.extend(sia::runtime::verify::check_program(&p).iter().map(|d| {
                    let mut s = d.to_diagnostic();
                    if s.file.is_empty() {
                        s.file = file.to_string();
                    }
                    s
                }));
            }
            if opts.json {
                println!("{}", sia::bytecode::diag::diagnostics_to_json(file, &diags));
            } else if diags.is_empty() {
                println!("{file}: ok (revision {})", db.revision());
            } else {
                for d in &diags {
                    eprintln!("{d}");
                }
                eprintln!(
                    "{file}: {} finding(s) (revision {})",
                    diags.len(),
                    db.revision()
                );
            }
            if !opts.json {
                println!("  queries: {}", db.stats().summary());
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

fn load_program(path: &str) -> Result<sia::Program, String> {
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if data.starts_with(b"SIAB") {
        sia::bytecode::decode_program(&data).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = String::from_utf8(data).map_err(|_| format!("{path}: not UTF-8"))?;
        sia::subsystems::frontend::compile_file(path, &text).map_err(|e| e.to_string())
    }
}

/// One request/reply exchange with a running `siald` (its line protocol;
/// see `src/bin/siald.rs`). Returns every reply line.
fn siald_request(socket: &str, request: &str) -> Result<Vec<String>, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| format!("connect {socket}: {e}"))?;
    writeln!(stream, "{request}").map_err(|e| format!("send: {e}"))?;
    let reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for line in reader.lines() {
        lines.push(line.map_err(|e| format!("recv: {e}"))?);
    }
    if lines.is_empty() {
        return Err("daemon closed the connection without replying".into());
    }
    Ok(lines)
}

/// `sial submit <file> <socket> [k=v ...] [--wait]`: submits a program to a
/// running `siald` and prints the assigned job id (or the rejection).
fn cmd_submit(file: &str, rest: &[String]) -> ExitCode {
    let Some(socket) = rest.first() else {
        eprintln!("usage: sial submit <file> <socket> [k=v ...] [--wait]");
        return ExitCode::from(2);
    };
    let wait = rest.iter().any(|a| a == "--wait");
    let opts: Vec<&str> = rest[1..]
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--wait")
        .collect();
    let request = format!("submit {file} {}", opts.join(" "));
    match siald_request(socket, request.trim_end()) {
        Ok(lines) => {
            let reply = &lines[0];
            println!("{reply}");
            let Some(id) = reply.strip_prefix("ok ") else {
                return ExitCode::FAILURE;
            };
            if wait {
                match siald_request(socket, &format!("wait {id}")) {
                    Ok(lines) => {
                        for l in &lines {
                            println!("{l}");
                        }
                        if lines.iter().any(|l| l.contains("state=done")) {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `sial status <socket> [id]`: prints a running `siald`'s job table.
fn cmd_status(socket: &str, rest: &[String]) -> ExitCode {
    let request = match rest.first() {
        Some(id) => format!("status {id}"),
        None => "status".to_string(),
    };
    match siald_request(socket, &request) {
        Ok(lines) => {
            for l in lines.iter().filter(|l| *l != "end") {
                println!("{l}");
            }
            if lines.iter().any(|l| l.starts_with("error")) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file, rest) = match args.as_slice() {
        [cmd, file, rest @ ..] => (cmd.as_str(), file.as_str(), rest),
        _ => return usage(),
    };
    // The daemon-client commands speak the siald line protocol and take no
    // SipConfig options; handle them before the option parser.
    match cmd {
        "submit" => return cmd_submit(file, rest),
        "status" => return cmd_status(file, rest),
        "shutdown" => {
            return match siald_request(file, "shutdown") {
                Ok(lines) => {
                    println!("{}", lines[0]);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    match cmd {
        "trace-lint" => {
            let text = match std::fs::read_to_string(file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Auto-detect the export kind: a Chrome trace carries a
            // top-level `traceEvents` array, the profile a schema marker.
            let doc = match sia::runtime::events::parse_json(&text) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{file}: not valid JSON: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if doc.get("traceEvents").is_some() {
                match sia::runtime::lint_chrome_trace(&text) {
                    Ok(lint) => {
                        println!("{file}: ok — {} trace events", lint.events);
                        for (pid, r) in &lint.ranks {
                            let cats: Vec<&str> = r.cats.iter().map(String::as_str).collect();
                            println!(
                                "  rank {pid} ({}): {} spans, {} flights, {} multicasts [{}]",
                                if r.label.is_empty() { "?" } else { &r.label },
                                r.spans,
                                r.flights,
                                r.multicasts,
                                cats.join(", ")
                            );
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{file}: trace lint failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                match sia::runtime::lint_profile_json(&text) {
                    Ok(()) => {
                        println!("{file}: ok — sia.profile.v1");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{file}: profile lint failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "check" => cmd_check(file, &opts),
        "compile" => match load_program(file) {
            Ok(p) => {
                let out = opts.output.unwrap_or_else(|| {
                    Path::new(file)
                        .with_extension("siab")
                        .to_string_lossy()
                        .into_owned()
                });
                let bytes = sia::bytecode::encode_program(&p);
                match std::fs::write(&out, &bytes) {
                    Ok(()) => {
                        println!("wrote {out} ({} bytes)", bytes.len());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{out}: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => match load_program(file) {
            Ok(p) => {
                print!("{}", sia::disassemble(&p));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "dryrun" => match load_program(file) {
            Ok(p) => {
                let sip = Sip::new(opts.config.clone());
                match sip.plan(p, &opts.bindings) {
                    Ok((est, plan)) => {
                        println!(
                            "per-worker estimate: {:.1} MiB ({} bytes, {} workers)",
                            est.per_worker_bytes as f64 / (1 << 20) as f64,
                            est.per_worker_bytes,
                            opts.config.workers
                        );
                        if est.dense_per_worker_bytes != est.per_worker_bytes {
                            let pct = est.per_worker_bytes as f64 * 100.0
                                / est.dense_per_worker_bytes.max(1) as f64;
                            println!(
                                "  realized (sparse): {} bytes = {pct:.1}% of dense \
                                 ({} bytes)",
                                est.per_worker_bytes, est.dense_per_worker_bytes
                            );
                        }
                        println!(
                            "per-server estimate: {:.1} MiB; largest block {} KiB; cache {:.1} MiB",
                            est.per_server_bytes as f64 / (1 << 20) as f64,
                            est.largest_block_bytes / 1024,
                            est.cache_bytes as f64 / (1 << 20) as f64
                        );
                        for (name, bytes) in &est.breakdown {
                            println!("  {name:<20} {:.2} MiB", *bytes as f64 / (1 << 20) as f64);
                        }
                        print!("{}", plan.volume_table());
                        if plan.summary.broadcast_blocks > 0 {
                            println!(
                                "  broadcast-shaped: {} blocks / {} bytes \
                                 (multicast under --placement planned)",
                                plan.summary.broadcast_blocks, plan.summary.broadcast_bytes
                            );
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "run" => match load_program(file) {
            Ok(p) => {
                if opts.check && !verify_program(file, &p) {
                    eprintln!("{file}: refusing to run (--check)");
                    return ExitCode::FAILURE;
                }
                let mut registry = SuperRegistry::new();
                if opts.chem {
                    // The occupied count for denominators: `nocc` binding ×
                    // segment size when present.
                    let n_occ = opts
                        .bindings
                        .get("nocc")
                        .map(|&o| o as usize * opts.seg)
                        .unwrap_or(opts.seg);
                    register_integrals(&mut registry, opts.seg, n_occ);
                }
                let sip = Sip::new(opts.config).with_registry(registry);
                match sip.run(p, &opts.bindings) {
                    Ok(out) => {
                        for (name, value) in &out.scalars {
                            println!("{name} = {value:.12}");
                        }
                        for w in &out.warnings {
                            eprintln!("warning: {w}");
                        }
                        println!(
                            "iterations: {}, wait: {:.1}%, traffic: {} msgs / {} KiB",
                            out.profile.iterations,
                            out.profile.wait_fraction() * 100.0,
                            out.traffic.messages,
                            out.traffic.bytes / 1024
                        );
                        if opts.profile {
                            println!("\n{}", out.profile);
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "simulate" => match load_program(file) {
            Ok(p) => {
                let layout = sia::runtime::Layout::new(
                    std::sync::Arc::new(p),
                    &opts.bindings,
                    opts.config.segments,
                    sia::runtime::Topology {
                        workers: opts.config.workers.max(1),
                        io_servers: 1,
                        placement: opts.config.placement,
                    },
                );
                let layout = match layout {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let trace = match sia::runtime::trace::generate(&layout, &integral_cost_model()) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let m = match opts.machine {
                    "sun" => machine::SUN_OPTERON_IB,
                    "xt4" => machine::CRAY_XT4,
                    "altix" => machine::SGI_ALTIX,
                    "bgp" => machine::BLUEGENE_P,
                    _ => machine::CRAY_XT5,
                };
                let mut cfg = SimConfig::sip(m, opts.config.workers.max(1) as u64);
                cfg.prefetch_depth = opts.config.prefetch_depth as u32;
                cfg.cache_blocks = opts.config.cache_blocks as u64;
                let r = simulate(&trace, &cfg);
                println!("machine: {}", m.name);
                println!(
                    "simulated time: {:.3} s over {} workers (wait {:.1}%)",
                    r.total_time,
                    opts.config.workers,
                    r.wait_fraction * 100.0
                );
                println!(
                    "work: {:.3} Tflop, {:.2} GiB moved",
                    r.total_flops as f64 / 1e12,
                    r.total_bytes as f64 / (1u64 << 30) as f64
                );
                for ph in &r.phases {
                    if ph.time > 1e-3 * r.total_time {
                        println!("  {:<16} {:>10.3} s", ph.label, ph.time);
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
