//! `sial_loadgen` — serving load generator and benchmark for `siald`.
//!
//! Submits a mixed batch of SIAL jobs (dense contraction, screened-sparse
//! reduction, served-array pipeline — all sized to comparable iteration
//! spaces so fair-share has something to equalize) to a running daemon,
//! waits for completion, and reports throughput (jobs/s), latency
//! percentiles (p50/p99 of submit→done), and the batch's Jain fairness
//! index over per-job normalized service rates (the daemon's lifetime
//! figure is recorded alongside as `jain_daemon`).
//!
//! ```text
//! siald --socket /tmp/siald.sock --data-dir /tmp/siald-data &
//! sial_loadgen --socket /tmp/siald.sock --jobs 3 --out BENCH_serving.json --assert
//! ```
//!
//! `--assert` exits nonzero when any job fails or the fairness index falls
//! under 0.8 — the CI serving smoke gate.

use sia_runtime::jain_index;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Dense: distributed put/get contraction over an n×n block space.
const DENSE_SRC: &str = r#"
sial loadgen_dense
aoindex i = 1, n
aoindex j = 1, n
distributed A(i,j)
temp t(i,j)
scalar total
pardo i, j
  t(i,j) = 0.5 * i + j
  put A(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get A(i,j)
  total += A(i,j) * A(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
"#;

/// Sparse: the same block space, but the payload decays with |i-j| and the
/// array is screened — most off-diagonal blocks drop at the put.
const SPARSE_SRC: &str = r#"
sial loadgen_sparse
aoindex i = 1, n
aoindex j = 1, n
sparse distributed S(i,j)
temp t(i,j)
scalar total
pardo i, j
  t(i,j) = 1.0 / (1.0 + 1000.0 * (i - j) * (i - j))
  put S(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get S(i,j)
  total += S(i,j) * S(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
"#;

/// Served: the same block space through the I/O-server tier (prepare, a
/// server barrier, then request) — exercises the shared warm cache.
const SERVED_SRC: &str = r#"
sial loadgen_served
aoindex i = 1, n
aoindex j = 1, n
served B(i,j)
temp t(i,j)
scalar total
pardo i, j
  t(i,j) = 2.0 * i - j
  prepare B(i,j) = t(i,j)
endpardo i, j
server_barrier
pardo i, j
  request B(i,j)
  total += B(i,j) * B(i,j)
endpardo i, j
sip_barrier
execute sip_allreduce total
endsial
"#;

fn request(socket: &str, line: &str) -> Result<Vec<String>, String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    writeln!(stream, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut lines = Vec::new();
    for l in BufReader::new(stream).lines() {
        lines.push(l.map_err(|e| format!("recv: {e}"))?);
    }
    if lines.is_empty() {
        return Err("daemon closed the connection without replying".into());
    }
    Ok(lines)
}

/// Parses `k=v` fields of a `job ...` status line.
fn fields(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|t| t.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sial_loadgen --socket <path> [--jobs <n>] [--n <blocks>]\n\
         \x20                  [--out <file>] [--assert]\n\
         submits a mixed dense/sparse/served batch to a running siald and\n\
         writes a BENCH_serving.json report"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = String::new();
    let mut jobs = 3usize;
    let mut n = 40u64;
    let mut out = PathBuf::from("BENCH_serving.json");
    let mut assert_gates = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().cloned().unwrap_or_default(),
            "--jobs" => jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or(3),
            "--n" => n = it.next().and_then(|v| v.parse().ok()).unwrap_or(8),
            "--out" => out = PathBuf::from(it.next().cloned().unwrap_or_default()),
            "--assert" => assert_gates = true,
            _ => return usage(),
        }
    }
    if socket.is_empty() {
        return usage();
    }

    // Materialize the workload sources next to the report so the daemon can
    // read them by path.
    let dir = std::env::temp_dir().join(format!("sial-loadgen-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("loadgen: create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mix: [(&str, &str, &str); 3] = [
        ("dense", DENSE_SRC, "threshold=0"),
        ("sparse", SPARSE_SRC, "threshold=0.01"),
        ("served", SERVED_SRC, "threshold=0"),
    ];
    let mut specs = Vec::new();
    for i in 0..jobs {
        let (kind, src, extra) = mix[i % mix.len()];
        let path = dir.join(format!("{kind}.sial"));
        if let Err(e) = std::fs::write(&path, src) {
            eprintln!("loadgen: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        specs.push((
            format!("tenant-{kind}"),
            path,
            // seg 4 over n=40 gives a 10x10 block space per pardo — enough
            // grants per job for the arbiter's chunk pacing to equalize
            // normalized service rates across the mixed batch.
            format!("tenant=tenant-{kind} bind:n={n} workers=2 io=1 seg=4 {extra}"),
        ));
    }

    // Submit everything at once from parallel connections — fair share can
    // only equalize jobs that actually overlap, so the batch must not be
    // serialized by submit round-trips. Per-job latency is submit→done.
    let t0 = Instant::now();
    let handles: Vec<_> = specs
        .iter()
        .map(|(tenant, path, opts)| {
            let socket = socket.clone();
            let tenant = tenant.clone();
            let line = format!("submit {} {}", path.display(), opts);
            std::thread::spawn(move || {
                let submitted = Instant::now();
                match request(&socket, &line) {
                    Ok(lines) if lines[0].starts_with("ok ") => {
                        let id: u64 = lines[0][3..].trim().parse().unwrap_or(0);
                        Ok((tenant, id, submitted))
                    }
                    Ok(lines) => Err(format!("submit {tenant}: {}", lines[0])),
                    Err(e) => Err(format!("submit {tenant}: {e}")),
                }
            })
        })
        .collect();
    let mut ids: Vec<(String, u64, Instant)> = Vec::new();
    for h in handles {
        match h.join().expect("submit thread") {
            Ok(entry) => ids.push(entry),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut done = Vec::new();
    let mut failed = 0usize;
    for (tenant, id, submitted) in &ids {
        match request(&socket, &format!("wait {id}")) {
            Ok(lines) => {
                let f = fields(&lines[0]);
                let state = f.get("state").cloned().unwrap_or_default();
                if state != "done" {
                    eprintln!("loadgen: job {id} ({tenant}): state={state}");
                    failed += 1;
                }
                done.push((tenant.clone(), *id, submitted.elapsed().as_secs_f64(), f));
            }
            Err(e) => {
                eprintln!("loadgen: wait {id}: {e}");
                failed += 1;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // Fairness of THIS batch: Jain over each job's normalized service rate
    // (fraction of its own iteration space per second of runtime), from the
    // final status fields. The daemon's `fairness` figure spans every job
    // it ever ran, so a shared daemon would mix batches into the gate.
    let rates: Vec<f64> = done
        .iter()
        .filter_map(|(_, _, _, f)| {
            let granted: f64 = f.get("granted")?.parse().ok()?;
            let total: f64 = f.get("total")?.parse().ok()?;
            let run_ms: f64 = f.get("run_ms")?.parse().ok()?;
            (total > 0.0).then(|| (granted / total) / (run_ms / 1000.0).max(1e-6))
        })
        .collect();
    let jain = jain_index(&rates);
    let daemon_jain: f64 = request(&socket, "fairness")
        .ok()
        .and_then(|l| l[0].strip_prefix("ok jain=").and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);

    let mut latencies: Vec<f64> = done.iter().map(|(_, _, l, _)| *l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);
    let jobs_per_s = done.len() as f64 / elapsed.max(1e-9);
    let warm_hits: u64 = done
        .iter()
        .filter_map(|(_, _, _, f)| f.get("warm_hits").and_then(|v| v.parse::<u64>().ok()))
        .sum();

    // Hand-rolled report (the workspace is dependency-free by design).
    let mut per_job = String::new();
    for (i, (tenant, id, lat, f)) in done.iter().enumerate() {
        if i > 0 {
            per_job.push(',');
        }
        per_job.push_str(&format!(
            "\n    {{\"id\": {id}, \"tenant\": \"{tenant}\", \"latency_s\": {lat:.4}, \
             \"state\": \"{}\", \"granted\": {}, \"total\": {}, \"warm_hits\": {}}}",
            f.get("state").map(String::as_str).unwrap_or("?"),
            f.get("granted").map(String::as_str).unwrap_or("0"),
            f.get("total").map(String::as_str).unwrap_or("0"),
            f.get("warm_hits").map(String::as_str).unwrap_or("0"),
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"sia.serving.v1\",\n  \"jobs\": {},\n  \"failed\": {failed},\n  \
         \"elapsed_s\": {elapsed:.4},\n  \"jobs_per_s\": {jobs_per_s:.4},\n  \
         \"latency_p50_s\": {p50:.4},\n  \"latency_p99_s\": {p99:.4},\n  \
         \"jain_fairness\": {jain:.4},\n  \"jain_daemon\": {daemon_jain:.4},\n  \
         \"warm_hits\": {warm_hits},\n  \
         \"per_job\": [{per_job}\n  ]\n}}\n",
        done.len()
    );
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("loadgen: write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "loadgen: {} jobs in {elapsed:.2}s ({jobs_per_s:.2} jobs/s), p50 {p50:.2}s, \
         p99 {p99:.2}s, jain {jain:.3}, warm hits {warm_hits} -> {}",
        done.len(),
        out.display()
    );
    let _ = std::fs::remove_dir_all(&dir);

    if assert_gates {
        if failed > 0 {
            eprintln!("loadgen: ASSERT FAILED — {failed} job(s) did not complete");
            return ExitCode::FAILURE;
        }
        if jain < 0.8 {
            eprintln!("loadgen: ASSERT FAILED — jain {jain:.3} < 0.8");
            return ExitCode::FAILURE;
        }
        println!("loadgen: asserts passed (all jobs done, jain {jain:.3} >= 0.8)");
    }
    ExitCode::SUCCESS
}
