//! Umbrella crate for the Super Instruction Architecture (SIA) workspace.
//!
//! Re-exports the public facade from [`sia_core`] so that examples and
//! downstream users can depend on a single crate. See the `README.md` for a
//! tour and `DESIGN.md` for the system inventory.

pub use sia_core::*;

/// Convenience re-exports of the individual subsystem crates.
pub mod subsystems {
    pub use sia_blocks as blocks;
    pub use sia_bytecode as bytecode;
    pub use sia_chem as chem;
    pub use sia_fabric as fabric;
    pub use sia_runtime as runtime;
    pub use sia_sim as sim;
    pub use sial_frontend as frontend;
}
