//! Property tests for the fabric: no message loss, per-pair ordering, and
//! byte accounting under randomized multi-rank traffic.

use proptest::prelude::*;
use sia_fabric::{build, Message, Rank};
use std::time::Duration;

#[derive(Debug, Clone, PartialEq)]
struct Tagged {
    from: usize,
    seq: u64,
    payload: Vec<u8>,
}

impl Message for Tagged {
    fn approx_bytes(&self) -> usize {
        16 + self.payload.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every message sent is received exactly once, and messages from one
    /// sender arrive in send order, across threads.
    #[test]
    fn delivery_exact_and_ordered(
        senders in 1usize..5,
        msgs_per_sender in 1u64..50,
        payload_len in 0usize..64,
    ) {
        let world = senders + 1;
        let (mut eps, stats) = build::<Tagged>(world);
        let receiver = eps.remove(senders); // last rank receives
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                std::thread::spawn(move || {
                    for seq in 0..msgs_per_sender {
                        ep.send(
                            Rank(senders),
                            Tagged {
                                from: i,
                                seq,
                                payload: vec![i as u8; payload_len],
                            },
                        )
                        .unwrap();
                    }
                })
            })
            .collect();

        let total = senders as u64 * msgs_per_sender;
        let mut next_seq = vec![0u64; senders];
        let mut received = 0u64;
        while received < total {
            let env = receiver
                .recv_timeout(Duration::from_secs(10))
                .expect("no message lost");
            prop_assert_eq!(env.src.0, env.msg.from);
            prop_assert_eq!(env.msg.seq, next_seq[env.msg.from], "per-sender FIFO");
            next_seq[env.msg.from] += 1;
            prop_assert_eq!(env.msg.payload.len(), payload_len);
            received += 1;
        }
        prop_assert!(receiver.try_recv().is_none(), "no extra messages");
        for h in handles {
            h.join().unwrap();
        }
        // Byte accounting: total sent == total received.
        let sent: u64 = (0..senders).map(|r| stats.counters_of(Rank(r)).bytes_sent()).sum();
        let recv = stats.counters_of(Rank(senders)).bytes_received();
        prop_assert_eq!(sent, recv);
        prop_assert_eq!(stats.total_messages_sent(), total);
    }

    /// Bidirectional ping-pong never deadlocks and echoes values intact.
    #[test]
    fn ping_pong_roundtrips(rounds in 1u64..100) {
        let (mut eps, _stats) = build::<Tagged>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let echo = std::thread::spawn(move || {
            for _ in 0..rounds {
                let env = b.recv_timeout(Duration::from_secs(10)).unwrap();
                b.send(env.src, Tagged { seq: env.msg.seq + 1, ..env.msg }).unwrap();
            }
        });
        for seq in 0..rounds {
            a.send(Rank(1), Tagged { from: 0, seq, payload: vec![] }).unwrap();
            let back = a.recv_timeout(Duration::from_secs(10)).unwrap();
            prop_assert_eq!(back.msg.seq, seq + 1);
        }
        echo.join().unwrap();
    }
}
