//! Deterministic fault injection for the fabric.
//!
//! Real SIP deployments run over interconnects that drop, reorder, and
//! duplicate traffic, and over nodes that die mid-campaign. To exercise the
//! runtime's recovery paths reproducibly, the fabric can be built with a
//! seeded [`FaultPlan`]: every send of a *faultable* message rolls a
//! per-endpoint deterministic RNG and may be dropped, duplicated, or held
//! back for a few operations (which breaks cross-pair ordering the same way
//! adaptive routing does). Ranks can also be scheduled to crash after a
//! fixed number of fabric operations.
//!
//! Determinism contract: for a fixed `(seed, rank)` pair the decision
//! sequence is a pure function of that endpoint's send order, so a
//! single-threaded replay of the same program sees the same faults.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A scheduled rank crash: after `after_ops` fabric operations (sends +
/// receives) by `rank`, the endpoint is killed — subsequent sends fail and
/// receives return nothing, as if the process vanished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The fabric rank to crash.
    pub rank: usize,
    /// Fabric operation count at which the crash fires.
    pub after_ops: u64,
}

/// A seeded, deterministic description of the faults to inject.
///
/// Probabilities apply per *faultable* message (see
/// [`Message::faultable`](crate::Message::faultable)); control-plane traffic
/// is never perturbed, mirroring the common deployment where the control
/// network is reliable but the data network is best-effort.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed. The same seed reproduces the same fault sequence.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back and delivered late.
    pub delay: f64,
    /// Maximum number of fabric operations a delayed message is held for.
    pub max_delay_ops: u64,
    /// Scheduled rank crashes (fabric-operation based; the runtime usually
    /// prefers its own iteration-boundary crash schedule).
    pub crashes: Vec<CrashSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; set fields to taste.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ops: 8,
            crashes: Vec::new(),
        }
    }

    /// True when the plan can actually perturb traffic.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay > 0.0 || !self.crashes.is_empty()
    }

    /// Validates probabilities and crash targets against a world size.
    pub fn validate(&self, world: usize) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault {name} probability {p} outside [0, 1]"));
            }
        }
        if self.drop + self.duplicate + self.delay > 1.0 {
            return Err("fault probabilities sum past 1.0".into());
        }
        for c in &self.crashes {
            if c.rank >= world {
                return Err(format!("crash rank {} outside world of {world}", c.rank));
            }
        }
        Ok(())
    }
}

/// splitmix64: tiny, seedable, and plenty for fault decisions.
#[derive(Debug)]
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What the injector decided to do with one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    Deliver,
    Drop,
    Duplicate,
    /// Hold back for this many fabric operations.
    Delay(u64),
}

/// Per-rank fault counters (lock-free; written by the rank's own thread).
#[derive(Debug, Default)]
pub struct FaultCounters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    crashed: AtomicBool,
}

impl FaultCounters {
    /// Messages silently dropped on send.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Messages held back and delivered late.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// True once this rank's endpoint was killed.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_crashed(&self) {
        self.crashed.store(true, Ordering::Relaxed);
    }
}

/// A plain-data snapshot of one rank's fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Messages silently dropped on send.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back and delivered late.
    pub delayed: u64,
    /// Whether the rank's endpoint was killed.
    pub crashed: bool,
}

impl FaultSnapshot {
    /// Total perturbed messages.
    pub fn perturbed(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed
    }

    /// Accumulates another snapshot into this one.
    pub fn absorb(&mut self, other: &FaultSnapshot) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.crashed |= other.crashed;
    }
}

impl FaultCounters {
    /// Copies the counters out.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            dropped: self.dropped(),
            duplicated: self.duplicated(),
            delayed: self.delayed(),
            crashed: self.crashed(),
        }
    }
}

/// Per-endpoint injector state. One per rank, owned via the endpoint, so the
/// mutex is uncontended; it exists only to keep `Endpoint: Sync`-compatible
/// interior mutability.
pub(crate) struct Injector<E> {
    plan: FaultPlan,
    rng: Mutex<Rng>,
    /// Fabric operations performed by this rank (sends + receive attempts);
    /// the clock that releases delayed messages and fires crash schedules.
    ops: AtomicU64,
    /// Held-back messages: `(release_at_ops, destination rank, envelope)`.
    holdback: Mutex<VecDeque<(u64, usize, E)>>,
}

impl<E> Injector<E> {
    pub(crate) fn new(plan: FaultPlan, rank: usize) -> Self {
        // Mix the rank into the seed so each endpoint draws an independent
        // but reproducible stream.
        let seed = plan.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Injector {
            plan,
            rng: Mutex::new(Rng::new(seed)),
            ops: AtomicU64::new(0),
            holdback: Mutex::new(VecDeque::new()),
        }
    }

    /// Advances the op clock; returns the new count.
    pub(crate) fn tick(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether a scheduled crash for `rank` has fired at op count `ops`.
    pub(crate) fn crash_due(&self, rank: usize, ops: u64) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.rank == rank && ops >= c.after_ops)
    }

    /// Rolls the dice for one faultable send.
    pub(crate) fn verdict(&self, counters: &FaultCounters) -> Verdict {
        let mut rng = self.rng.lock().unwrap();
        let roll = rng.next_f64();
        if roll < self.plan.drop {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            Verdict::Drop
        } else if roll < self.plan.drop + self.plan.duplicate {
            counters.duplicated.fetch_add(1, Ordering::Relaxed);
            Verdict::Duplicate
        } else if roll < self.plan.drop + self.plan.duplicate + self.plan.delay {
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            let span = self.plan.max_delay_ops.max(1);
            Verdict::Delay(1 + rng.next_u64() % span)
        } else {
            Verdict::Deliver
        }
    }

    /// Stashes a delayed envelope.
    pub(crate) fn hold(&self, release_at: u64, to: usize, env: E) {
        self.holdback
            .lock()
            .unwrap()
            .push_back((release_at, to, env));
    }

    /// Pops every held envelope whose release op has passed.
    pub(crate) fn due(&self, now: u64) -> Vec<(usize, E)> {
        let mut held = self.holdback.lock().unwrap();
        let mut out = Vec::new();
        let mut i = 0;
        while i < held.len() {
            if held[i].0 <= now {
                let (_, to, env) = held.remove(i).unwrap();
                out.push((to, env));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Drains everything still held (used when the endpoint is dropped so
    /// delayed messages are not lost forever at shutdown).
    pub(crate) fn drain_all(&self) -> Vec<(usize, E)> {
        self.holdback
            .lock()
            .unwrap()
            .drain(..)
            .map(|(_, to, env)| (to, env))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn plan_validation() {
        let mut p = FaultPlan::seeded(1);
        p.drop = 0.05;
        assert!(p.validate(4).is_ok());
        p.drop = 1.5;
        assert!(p.validate(4).is_err());
        p.drop = 0.4;
        p.duplicate = 0.4;
        p.delay = 0.4;
        assert!(p.validate(4).is_err());
        let mut p = FaultPlan::seeded(1);
        p.crashes.push(CrashSpec {
            rank: 9,
            after_ops: 10,
        });
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn verdict_rates_roughly_match() {
        let mut plan = FaultPlan::seeded(123);
        plan.drop = 0.2;
        plan.duplicate = 0.1;
        let inj: Injector<()> = Injector::new(plan, 0);
        let counters = FaultCounters::default();
        let n = 20_000;
        for _ in 0..n {
            let _ = inj.verdict(&counters);
        }
        let drop_rate = counters.dropped() as f64 / n as f64;
        let dup_rate = counters.duplicated() as f64 / n as f64;
        assert!((drop_rate - 0.2).abs() < 0.02, "drop rate {drop_rate}");
        assert!((dup_rate - 0.1).abs() < 0.02, "dup rate {dup_rate}");
        assert_eq!(counters.delayed(), 0);
    }

    #[test]
    fn holdback_releases_in_op_order() {
        let inj: Injector<u32> = Injector::new(FaultPlan::seeded(0), 0);
        inj.hold(5, 1, 100);
        inj.hold(3, 2, 200);
        assert!(inj.due(2).is_empty());
        let due = inj.due(4);
        assert_eq!(due, vec![(2, 200)]);
        let due = inj.due(10);
        assert_eq!(due, vec![(1, 100)]);
        assert!(inj.due(100).is_empty());
    }
}
