//! Traffic counters.
//!
//! The SIP collects detailed performance metrics "without an impact on
//! performance" because every basic operation is block-sized. The fabric
//! keeps per-rank atomic counters of messages and bytes in each direction,
//! plus per-peer message counts, which the runtime's profile report folds
//! into its wait-time/overlap analysis.

use crate::Rank;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rank traffic counters (all atomics; safe to read from other threads).
pub struct TrafficCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    msgs_coalesced: AtomicU64,
    per_peer_sent: Vec<AtomicU64>,
}

impl TrafficCounters {
    pub(crate) fn new(world: usize) -> Self {
        TrafficCounters {
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            msgs_recv: AtomicU64::new(0),
            bytes_recv: AtomicU64::new(0),
            msgs_coalesced: AtomicU64::new(0),
            per_peer_sent: (0..world).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record_coalesced(&self, n: u64) {
        self.msgs_coalesced.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_send(&self, to: Rank, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.per_peer_sent[to.0].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, _from: Rank, bytes: usize) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages this rank has sent.
    pub fn messages_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Bytes this rank has sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages this rank has received.
    pub fn messages_received(&self) -> u64 {
        self.msgs_recv.load(Ordering::Relaxed)
    }

    /// Bytes this rank has received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_recv.load(Ordering::Relaxed)
    }

    /// Messages sent to a specific peer.
    pub fn sent_to(&self, peer: Rank) -> u64 {
        self.per_peer_sent[peer.0].load(Ordering::Relaxed)
    }

    /// Messages coalesced away by envelope batching (n staged messages
    /// shipped as one envelope count n−1 here and 1 in
    /// [`messages_sent`](Self::messages_sent)).
    pub fn messages_coalesced(&self) -> u64 {
        self.msgs_coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = TrafficCounters::new(3);
        c.record_send(Rank(1), 10);
        c.record_send(Rank(1), 20);
        c.record_send(Rank(2), 5);
        c.record_recv(Rank(0), 7);
        assert_eq!(c.messages_sent(), 3);
        assert_eq!(c.bytes_sent(), 35);
        assert_eq!(c.messages_received(), 1);
        assert_eq!(c.bytes_received(), 7);
        assert_eq!(c.sent_to(Rank(1)), 2);
        assert_eq!(c.sent_to(Rank(2)), 1);
        assert_eq!(c.sent_to(Rank(0)), 0);
    }
}
