//! # sia-fabric — the SIA's communication substrate
//!
//! The original SIP runs its master, workers, and I/O servers as MPI
//! processes and insists that "all message passing is asynchronous". This
//! crate provides the same contract without MPI: a set of *ranks* (threads in
//! one process) exchanging typed messages through nonblocking endpoints.
//!
//! Semantics mirror the MPI subset the SIP uses:
//!
//! * [`Endpoint::send`] is `mpi_isend`-like: it never blocks the sender and
//!   returns a [`SendHandle`] that reports completion (delivery into the
//!   receiver's queue).
//! * [`Endpoint::try_recv`] / [`Endpoint::recv_timeout`] are the
//!   `mpi_iprobe`/`mpi_recv` pair the SIP's progress loop uses: workers
//!   "periodically check for messages and process them".
//! * Per-(sender, receiver) FIFO ordering is guaranteed, as in MPI.
//!
//! The fabric is generic over the message type; `sia-runtime` instantiates it
//! with the SIP protocol messages. Message sizes (for the traffic counters
//! the profiler reports) come from the [`Message`] trait.

pub mod fault;
pub mod stats;

pub use fault::{CrashSpec, FaultCounters, FaultPlan, FaultSnapshot};
pub use stats::TrafficCounters;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use fault::{Injector, Verdict};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A rank: the identity of one participant (master, worker, or I/O server).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub usize);

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Messages carried by the fabric report an approximate payload size so the
/// runtime can keep the traffic counters the paper's profiler exposes.
pub trait Message: Send + 'static {
    /// Approximate wire size in bytes (payload only).
    fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Whether a [`FaultPlan`] may perturb this message. Defaults to `true`;
    /// runtimes return `false` for control-plane traffic (barriers, chunk
    /// scheduling, shutdown) that is assumed reliable.
    fn faultable(&self) -> bool {
        true
    }

    /// A copy for duplicate injection. Defaults to `None`, which downgrades
    /// a duplicate verdict to a single delivery; clonable protocols return
    /// `Some(self.clone())`. Messages that carry block payloads behind an
    /// `Arc` (the runtime's `BlockHandle`) make both delivery and
    /// duplication zero-copy: the envelope moves the sender's allocation to
    /// the receiver, and a duplicate is another share of it, never a deep
    /// copy of the data plane.
    fn dup(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Coalesces several messages bound for one destination into a single
    /// envelope ([`Endpoint::stage`] / [`Endpoint::flush`]). The default
    /// returns the input unchanged, meaning the protocol does not batch;
    /// protocols that do return a container message whose
    /// [`unbatch`](Self::unbatch) restores the originals in order. A
    /// protocol may refuse a particular mix (e.g. control-plane traffic
    /// mixed into a data batch) by returning `Err` — the fabric then ships
    /// the messages individually.
    fn batch(msgs: Vec<Self>) -> Result<Self, Vec<Self>>
    where
        Self: Sized,
    {
        Err(msgs)
    }

    /// Splits a batched envelope back into its parts, in the order they
    /// were staged. `Err(self)` (the default) marks an ordinary message.
    fn unbatch(self) -> Result<Vec<Self>, Self>
    where
        Self: Sized,
    {
        Err(self)
    }
}

/// Correlates a request with its reply so in-flight operations can be
/// matched, deduplicated, and retried idempotently. Allocated by
/// [`Endpoint::next_req_id`]; the issuing rank lives in the high bits, so
/// ids are unique fabric-wide without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl ReqId {
    /// The "no request" sentinel (useful for unsolicited replies).
    pub const NONE: ReqId = ReqId(0);

    /// The rank that allocated this id.
    pub fn origin(&self) -> Rank {
        Rank((self.0 >> 48) as usize)
    }
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{:x}", self.0)
    }
}

/// A delivered message with its sender and a per-link sequence number.
#[derive(Debug)]
pub struct Envelope<M> {
    /// The sending rank.
    pub src: Rank,
    /// Position in the sender→receiver stream (1-based). A duplicated
    /// message carries the same number as its original, so receivers can
    /// recognise fabric-level duplicates.
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

/// Completion handle returned by [`Endpoint::send`] (the analogue of the
/// `MPI_Request` from `mpi_isend`).
///
/// Delivery into the receiver's queue is immediate in-process, so the handle
/// is complete as soon as `send` returns unless the receiver disappeared; it
/// exists so runtime code keeps the request-based structure of the original
/// and so tests can assert on delivery.
#[derive(Debug)]
pub struct SendHandle {
    delivered: bool,
}

impl SendHandle {
    /// True when the message reached the receiver's queue.
    pub fn is_complete(&self) -> bool {
        self.delivered
    }
}

/// Why a send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendErrorKind {
    /// The destination endpoint has been dropped.
    PeerGone,
    /// The fabric-wide shutdown flag was raised before the send.
    Shutdown,
    /// This endpoint was killed by [`Endpoint::kill`] or a scheduled crash.
    Crashed,
}

/// Typed error from [`Endpoint::send`]. Unlike the earlier fabric, sends
/// after shutdown fail loudly instead of silently succeeding into a queue
/// nobody will drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError {
    /// The intended destination.
    pub to: Rank,
    /// What went wrong.
    pub kind: SendErrorKind,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SendErrorKind::PeerGone => write!(f, "peer {} has shut down", self.to),
            SendErrorKind::Shutdown => write!(f, "send to {} after fabric shutdown", self.to),
            SendErrorKind::Crashed => write!(f, "send to {} from a crashed rank", self.to),
        }
    }
}

impl std::error::Error for SendError {}

struct Shared {
    stats: Vec<TrafficCounters>,
    faults: Vec<FaultCounters>,
    crashed: Vec<AtomicBool>,
    shutdown: AtomicBool,
    epoch: AtomicU64,
    /// World tag: every envelope of this fabric belongs to the job the tag
    /// names. 0 for untagged (single-job) worlds. Multi-tenant runtimes
    /// give each job its own fabric world, so the tag attributes all of a
    /// world's traffic to one job without per-message overhead.
    tag: u64,
}

/// One rank's connection to the fabric. Owned by the rank's thread.
pub struct Endpoint<M: Message> {
    rank: Rank,
    inbox: Receiver<Envelope<M>>,
    peers: Vec<Sender<Envelope<M>>>,
    shared: Arc<Shared>,
    /// Next sequence number per destination link.
    link_seq: Vec<AtomicU64>,
    /// Next request-id counter (rank-prefixed in [`next_req_id`](Self::next_req_id)).
    req_seq: AtomicU64,
    /// Fault injector; `None` on a perfect fabric.
    injector: Option<Injector<Envelope<M>>>,
    /// Per-destination staging buffers for envelope batching. `RefCell`
    /// because an endpoint is owned by exactly one thread (the fabric's
    /// contract); the endpoint stays `Send` without becoming `Sync`.
    staged: RefCell<Vec<Vec<M>>>,
    /// Arrivals unpacked from a batched envelope, drained ahead of the
    /// inbox so per-link FIFO order survives coalescing.
    unpacked: RefCell<VecDeque<Envelope<M>>>,
}

impl<M: Message> Endpoint<M> {
    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of ranks in the fabric.
    pub fn world_size(&self) -> usize {
        self.peers.len()
    }

    /// The world's job tag (0 when the fabric was built untagged). Every
    /// envelope sent through this endpoint belongs to the job it names.
    pub fn world_tag(&self) -> u64 {
        self.shared.tag
    }

    /// Nonblocking send (the `mpi_isend` analogue).
    ///
    /// Under a [`FaultPlan`], a faultable message may be silently dropped
    /// (the handle still reports completion — exactly the failure mode a
    /// lossy network presents to `mpi_isend`), duplicated, or delayed.
    ///
    /// # Errors
    /// A typed [`SendError`]: [`PeerGone`](SendErrorKind::PeerGone) if the
    /// destination endpoint was dropped, [`Shutdown`](SendErrorKind::Shutdown)
    /// if the fabric-wide shutdown flag is up, and
    /// [`Crashed`](SendErrorKind::Crashed) if this rank was killed.
    pub fn send(&self, to: Rank, msg: M) -> Result<SendHandle, SendError> {
        // Per-link FIFO: anything staged for this destination goes first.
        self.flush_to(to)?;
        self.send_now(to, msg)
    }

    /// Stages a message for `to` without sending it; [`flush`](Self::flush)
    /// (or a later [`send`](Self::send) to the same destination) ships the
    /// buffer, coalescing multiple staged messages into one envelope when
    /// the protocol's [`Message::batch`] accepts them. Used by bounded
    /// fan-out windows (prefetch bursts, multicast pushes, service-loop
    /// drains) where many small block messages share a (src, dst) pair.
    pub fn stage(&self, to: Rank, msg: M) -> Result<(), SendError> {
        if self.is_crashed() {
            return Err(SendError {
                to,
                kind: SendErrorKind::Crashed,
            });
        }
        if self.shutdown_raised() {
            return Err(SendError {
                to,
                kind: SendErrorKind::Shutdown,
            });
        }
        self.staged.borrow_mut()[to.0].push(msg);
        Ok(())
    }

    /// Ships every staged message (all destinations). Buffers of more than
    /// one message are offered to [`Message::batch`]; a batch travels as
    /// one envelope (one traffic-counter message, one fault verdict) and
    /// the receiver's [`Message::unbatch`] restores the parts in order.
    pub fn flush(&self) -> Result<(), SendError> {
        for r in 0..self.peers.len() {
            self.flush_to(Rank(r))?;
        }
        Ok(())
    }

    /// Ships the staging buffer of one destination.
    fn flush_to(&self, to: Rank) -> Result<(), SendError> {
        let msgs = {
            let mut staged = self.staged.borrow_mut();
            if staged[to.0].is_empty() {
                return Ok(());
            }
            std::mem::take(&mut staged[to.0])
        };
        if msgs.len() == 1 {
            let mut msgs = msgs;
            self.send_now(to, msgs.pop().unwrap())?;
            return Ok(());
        }
        let n = msgs.len() as u64;
        match M::batch(msgs) {
            Ok(batched) => {
                // n messages leave as one envelope: n−1 coalesced away.
                self.shared.stats[self.rank.0].record_coalesced(n - 1);
                self.send_now(to, batched)?;
            }
            Err(msgs) => {
                for m in msgs {
                    self.send_now(to, m)?;
                }
            }
        }
        Ok(())
    }

    /// The unconditional send path (staging already flushed).
    fn send_now(&self, to: Rank, msg: M) -> Result<SendHandle, SendError> {
        if self.is_crashed() {
            return Err(SendError {
                to,
                kind: SendErrorKind::Crashed,
            });
        }
        if self.shutdown_raised() {
            return Err(SendError {
                to,
                kind: SendErrorKind::Shutdown,
            });
        }
        let now = self.tick();
        let bytes = msg.approx_bytes();
        let faultable = msg.faultable();
        let env = Envelope {
            src: self.rank,
            seq: self.link_seq[to.0].fetch_add(1, Ordering::Relaxed) + 1,
            msg,
        };
        let verdict = match &self.injector {
            Some(inj) if faultable => inj.verdict(&self.shared.faults[self.rank.0]),
            _ => Verdict::Deliver,
        };
        // Whatever the verdict, the sender sees a completed isend: traffic
        // counters record the attempt, and loss is only observable through
        // the missing reply.
        self.shared.stats[self.rank.0].record_send(to, bytes);
        match verdict {
            Verdict::Drop => Ok(SendHandle { delivered: true }),
            Verdict::Delay(span) => {
                let inj = self.injector.as_ref().unwrap();
                inj.hold(now + span, to.0, env);
                Ok(SendHandle { delivered: true })
            }
            Verdict::Deliver | Verdict::Duplicate => {
                let dup = if verdict == Verdict::Duplicate {
                    env.msg.dup().map(|m| Envelope {
                        src: env.src,
                        seq: env.seq,
                        msg: m,
                    })
                } else {
                    None
                };
                match self.peers[to.0].send(env) {
                    Ok(()) => {
                        if let Some(d) = dup {
                            let _ = self.peers[to.0].send(d);
                        }
                        Ok(SendHandle { delivered: true })
                    }
                    Err(_) => Err(SendError {
                        to,
                        kind: SendErrorKind::PeerGone,
                    }),
                }
            }
        }
    }

    /// Nonblocking receive (the `mpi_iprobe` + `mpi_recv` analogue).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        if self.is_crashed() {
            return None;
        }
        if let Some(env) = self.unpacked.borrow_mut().pop_front() {
            return Some(env);
        }
        let now = self.tick();
        self.release_due(now);
        match self.inbox.try_recv() {
            Ok(env) => Some(self.deliver(env)),
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a timeout, for progress loops that have nothing
    /// to compute and must wait for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        if self.is_crashed() {
            return None;
        }
        if let Some(env) = self.unpacked.borrow_mut().pop_front() {
            return Some(env);
        }
        let now = self.tick();
        self.release_due(now);
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Some(self.deliver(env)),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Books an arrival and unpacks batched envelopes. The parts of a batch
    /// share the envelope's sequence number (the OpId/ReqId layer inside the
    /// messages does per-operation dedup; the shared seq marks them as one
    /// wire transfer).
    fn deliver(&self, env: Envelope<M>) -> Envelope<M> {
        self.shared.stats[self.rank.0].record_recv(env.src, env.msg.approx_bytes());
        let Envelope { src, seq, msg } = env;
        match msg.unbatch() {
            Ok(parts) => {
                let mut q = self.unpacked.borrow_mut();
                for m in parts {
                    q.push_back(Envelope { src, seq, msg: m });
                }
                q.pop_front().expect("unbatch returned no messages")
            }
            Err(msg) => Envelope { src, seq, msg },
        }
    }

    /// Advances the fault clock (no-op on a perfect fabric) and fires any
    /// scheduled crash for this rank.
    fn tick(&self) -> u64 {
        match &self.injector {
            Some(inj) => {
                let now = inj.tick();
                if inj.crash_due(self.rank.0, now) {
                    self.kill();
                }
                now
            }
            None => 0,
        }
    }

    /// Delivers held-back messages whose release op has passed.
    fn release_due(&self, now: u64) {
        if let Some(inj) = &self.injector {
            for (to, env) in inj.due(now) {
                let _ = self.peers[to].send(env);
            }
        }
    }

    /// Kills this endpoint: subsequent sends fail with
    /// [`SendErrorKind::Crashed`] and receives return nothing. Used by the
    /// runtime's deterministic crash schedule; irreversible.
    pub fn kill(&self) {
        self.shared.crashed[self.rank.0].store(true, Ordering::SeqCst);
        self.shared.faults[self.rank.0].mark_crashed();
    }

    /// True once this rank was killed.
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed[self.rank.0].load(Ordering::SeqCst)
    }

    /// True once `rank` was killed (visible fabric-wide, like a failure
    /// detector's verdict).
    pub fn peer_crashed(&self, rank: Rank) -> bool {
        self.shared.crashed[rank.0].load(Ordering::SeqCst)
    }

    /// Allocates a fabric-unique request id for request/reply correlation.
    pub fn next_req_id(&self) -> ReqId {
        let n = self.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
        ReqId(((self.rank.0 as u64) << 48) | (n & 0xffff_ffff_ffff))
    }

    /// This rank's fault counters (all zero on a perfect fabric).
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        self.shared.faults[self.rank.0].snapshot()
    }

    /// Number of messages waiting in this rank's queue (including parts
    /// unpacked from a batched envelope but not yet received).
    pub fn pending(&self) -> usize {
        self.inbox.len() + self.unpacked.borrow().len()
    }

    /// Raises the fabric-wide shutdown flag (any rank may call this; e.g. the
    /// master after `halt`).
    pub fn raise_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once any rank raised shutdown.
    pub fn shutdown_raised(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Traffic counters of this rank.
    pub fn counters(&self) -> &TrafficCounters {
        &self.shared.stats[self.rank.0]
    }

    /// Bumps and returns a fabric-wide epoch counter (used by the runtime to
    /// number barrier generations).
    pub fn next_epoch(&self) -> u64 {
        self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl<M: Message> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({}, world={})", self.rank, self.peers.len())
    }
}

impl<M: Message> Drop for Endpoint<M> {
    fn drop(&mut self) {
        // Staged-but-unflushed messages still ship (a forgotten flush is a
        // latency bug, not a loss bug).
        if !self.is_crashed() {
            let _ = self.flush();
        }
        // Flush held-back messages so a delay near the end of a run behaves
        // like a late delivery, not a drop (drops are counted separately).
        if let Some(inj) = &self.injector {
            if !self.is_crashed() {
                for (to, env) in inj.drain_all() {
                    let _ = self.peers[to].send(env);
                }
            }
        }
    }
}

/// Builds a perfect-delivery fabric of `n` ranks, returning one [`Endpoint`]
/// per rank plus a [`FabricStats`] handle for post-run inspection.
pub fn build<M: Message>(n: usize) -> (Vec<Endpoint<M>>, FabricStats) {
    build_with_faults(n, None)
}

/// Builds a fabric of `n` ranks, optionally injecting faults from a seeded
/// [`FaultPlan`]. The plan must pass [`FaultPlan::validate`].
pub fn build_with_faults<M: Message>(
    n: usize,
    plan: Option<FaultPlan>,
) -> (Vec<Endpoint<M>>, FabricStats) {
    build_tagged(n, plan, 0)
}

/// [`build_with_faults`] with a job tag: the whole world (and therefore
/// every envelope it carries) is attributed to the job `tag` names. A
/// multi-tenant runtime builds one tagged world per admitted job.
pub fn build_tagged<M: Message>(
    n: usize,
    plan: Option<FaultPlan>,
    tag: u64,
) -> (Vec<Endpoint<M>>, FabricStats) {
    assert!(n > 0, "fabric needs at least one rank");
    if let Some(p) = &plan {
        if let Err(e) = p.validate(n) {
            panic!("invalid fault plan: {e}");
        }
    }
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        stats: (0..n).map(|_| TrafficCounters::new(n)).collect(),
        faults: (0..n).map(|_| FaultCounters::default()).collect(),
        crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        shutdown: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
        tag,
    });
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| Endpoint {
            rank: Rank(i),
            inbox,
            peers: senders.clone(),
            shared: Arc::clone(&shared),
            link_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            req_seq: AtomicU64::new(0),
            injector: plan.clone().map(|p| Injector::new(p, i)),
            staged: RefCell::new((0..n).map(|_| Vec::new()).collect()),
            unpacked: RefCell::new(VecDeque::new()),
        })
        .collect();
    let stats = FabricStats {
        shared: Arc::clone(&shared),
    };
    (endpoints, stats)
}

/// Read-only view over all ranks' traffic counters, usable after the rank
/// threads have finished.
pub struct FabricStats {
    shared: Arc<Shared>,
}

impl FabricStats {
    /// Number of ranks in the fabric.
    pub fn world_size(&self) -> usize {
        self.shared.stats.len()
    }

    /// The world's job tag (see [`build_tagged`]); 0 when untagged.
    pub fn world_tag(&self) -> u64 {
        self.shared.tag
    }

    /// Traffic counters of one rank.
    pub fn counters_of(&self, rank: Rank) -> &TrafficCounters {
        &self.shared.stats[rank.0]
    }

    /// Total bytes sent across the whole fabric.
    pub fn total_bytes_sent(&self) -> u64 {
        self.shared.stats.iter().map(|c| c.bytes_sent()).sum()
    }

    /// Total messages sent across the whole fabric.
    pub fn total_messages_sent(&self) -> u64 {
        self.shared.stats.iter().map(|c| c.messages_sent()).sum()
    }

    /// Total messages coalesced away by envelope batching across the whole
    /// fabric (each batch of n staged messages counts n−1).
    pub fn total_messages_coalesced(&self) -> u64 {
        self.shared
            .stats
            .iter()
            .map(|c| c.messages_coalesced())
            .sum()
    }

    /// Fault counters of one rank (all zero on a perfect fabric).
    pub fn fault_snapshot_of(&self, rank: Rank) -> FaultSnapshot {
        self.shared.faults[rank.0].snapshot()
    }

    /// Fault counters summed over all ranks.
    pub fn total_faults(&self) -> FaultSnapshot {
        let mut total = FaultSnapshot::default();
        for f in &self.shared.faults {
            total.absorb(&f.snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64, Vec<u8>);

    impl Message for Ping {
        fn approx_bytes(&self) -> usize {
            8 + self.1.len()
        }

        fn dup(&self) -> Option<Self> {
            Some(self.clone())
        }
    }

    #[test]
    fn send_and_receive() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(7, vec![1, 2, 3])).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, Rank(0));
        assert_eq!(env.msg, Ping(7, vec![1, 2, 3]));
    }

    /// A message shaped like the runtime's block traffic: the data plane
    /// lives behind an `Arc`, so clones share the allocation.
    #[derive(Debug, Clone)]
    struct BlockMsg(Arc<Vec<f64>>);

    impl Message for BlockMsg {
        fn approx_bytes(&self) -> usize {
            self.0.len() * 8
        }

        fn dup(&self) -> Option<Self> {
            Some(self.clone())
        }
    }

    #[test]
    fn in_process_delivery_shares_payload_allocation() {
        // The envelope moves the sender's Arc to the receiver: same
        // allocation on both sides, no data-plane copy. Duplicate injection
        // is another O(1) share of it.
        let retained = Arc::new(vec![1.5f64; 1024]);
        let (mut eps, _stats) = build::<BlockMsg>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), BlockMsg(Arc::clone(&retained))).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(
            Arc::ptr_eq(&env.msg.0, &retained),
            "delivery must share the sender's allocation"
        );
        let dup = env.msg.dup().unwrap();
        assert!(Arc::ptr_eq(&dup.0, &retained));
        assert_eq!(Arc::strong_count(&retained), 3);
    }

    #[test]
    fn fifo_per_pair() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(Rank(1), Ping(i, vec![])).unwrap();
        }
        for i in 0..100 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.msg.0, i);
        }
    }

    #[test]
    fn self_send_allowed() {
        let (eps, _stats) = build::<Ping>(1);
        let a = &eps[0];
        a.send(Rank(0), Ping(1, vec![])).unwrap();
        assert_eq!(a.pending(), 1);
        assert!(a.try_recv().is_some());
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn cross_thread_exchange() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            // Echo server: return each ping to its sender with value + 1.
            for _ in 0..10 {
                let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
                b.send(env.src, Ping(env.msg.0 + 1, vec![])).unwrap();
            }
        });
        for i in 0..10 {
            a.send(Rank(1), Ping(i, vec![])).unwrap();
            let back = a.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(back.msg.0, i + 1);
        }
        h.join().unwrap();
    }

    #[test]
    fn peer_gone_reported() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b);
        // The channel also holds senders inside `a`, so sending still works
        // until all clones drop; dropping `b` drops only the receiver.
        let err = a.send(Rank(1), Ping(0, vec![])).unwrap_err();
        assert_eq!(
            err,
            SendError {
                to: Rank(1),
                kind: SendErrorKind::PeerGone
            }
        );
    }

    #[test]
    fn send_after_shutdown_fails() {
        let (eps, _stats) = build::<Ping>(2);
        eps[0].send(Rank(1), Ping(1, vec![])).unwrap();
        eps[1].raise_shutdown();
        let err = eps[0].send(Rank(1), Ping(2, vec![])).unwrap_err();
        assert_eq!(err.kind, SendErrorKind::Shutdown);
        // The pre-shutdown message is still deliverable.
        assert!(eps[1].try_recv().is_some());
    }

    #[test]
    fn sequence_numbers_per_link() {
        let (mut eps, _stats) = build::<Ping>(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(0, vec![])).unwrap();
        a.send(Rank(2), Ping(1, vec![])).unwrap();
        a.send(Rank(1), Ping(2, vec![])).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().seq, 1);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().seq, 2);
        assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().seq, 1);
    }

    #[test]
    fn req_ids_unique_and_rank_tagged() {
        let (eps, _stats) = build::<Ping>(3);
        let r1 = eps[2].next_req_id();
        let r2 = eps[2].next_req_id();
        assert_ne!(r1, r2);
        assert_eq!(r1.origin(), Rank(2));
        assert_ne!(r1, ReqId::NONE);
    }

    #[test]
    fn killed_endpoint_goes_dark() {
        let (mut eps, stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(1, vec![])).unwrap();
        b.kill();
        assert!(b.recv_timeout(Duration::from_millis(5)).is_none());
        let err = b.send(Rank(0), Ping(2, vec![])).unwrap_err();
        assert_eq!(err.kind, SendErrorKind::Crashed);
        assert!(a.peer_crashed(Rank(1)));
        assert!(stats.fault_snapshot_of(Rank(1)).crashed);
    }

    #[test]
    fn fault_plan_drops_deterministically() {
        let sent_and_got = |seed| {
            let mut plan = FaultPlan::seeded(seed);
            plan.drop = 0.3;
            let (mut eps, stats) = build_with_faults::<Ping>(2, Some(plan));
            let b = eps.pop().unwrap();
            let a = eps.pop().unwrap();
            for i in 0..200 {
                a.send(Rank(1), Ping(i, vec![])).unwrap();
            }
            let mut got = Vec::new();
            while let Some(env) = b.try_recv() {
                got.push(env.msg.0);
            }
            (got, stats.fault_snapshot_of(Rank(0)).dropped)
        };
        let (got1, dropped1) = sent_and_got(42);
        let (got2, dropped2) = sent_and_got(42);
        assert_eq!(got1, got2, "same seed must lose the same messages");
        assert_eq!(dropped1, dropped2);
        assert!(dropped1 > 20, "~30% of 200 should drop, got {dropped1}");
        assert_eq!(got1.len() as u64, 200 - dropped1);
        let (got3, _) = sent_and_got(43);
        assert_ne!(got1, got3, "different seeds should differ");
    }

    #[test]
    fn fault_plan_duplicates_carry_same_seq() {
        let mut plan = FaultPlan::seeded(7);
        plan.duplicate = 1.0;
        let (mut eps, stats) = build_with_faults::<Ping>(2, Some(plan));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(5, vec![])).unwrap();
        let first = b.recv_timeout(Duration::from_secs(1)).unwrap();
        let second = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first.msg, second.msg);
        assert_eq!(first.seq, second.seq);
        assert_eq!(stats.fault_snapshot_of(Rank(0)).duplicated, 1);
    }

    #[test]
    fn delayed_messages_eventually_arrive() {
        let mut plan = FaultPlan::seeded(11);
        plan.delay = 1.0;
        plan.max_delay_ops = 4;
        let (mut eps, stats) = build_with_faults::<Ping>(2, Some(plan));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..20 {
            a.send(Rank(1), Ping(i, vec![])).unwrap();
        }
        drop(a); // flushes anything still held back
        let mut got = Vec::new();
        while let Some(env) = b.try_recv() {
            got.push(env.msg.0);
        }
        assert_eq!(got.len(), 20, "no delayed message may be lost");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_eq!(stats.fault_snapshot_of(Rank(0)).delayed, 20);
    }

    #[test]
    fn scheduled_crash_fires_on_op_count() {
        let mut plan = FaultPlan::seeded(3);
        plan.crashes.push(CrashSpec {
            rank: 0,
            after_ops: 5,
        });
        let (mut eps, _stats) = build_with_faults::<Ping>(2, Some(plan));
        let _b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mut ok = 0;
        for i in 0..10 {
            if a.send(Rank(1), Ping(i, vec![])).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 5, "sends past the crash op must fail");
        assert!(a.is_crashed());
    }

    #[test]
    fn non_faultable_messages_pass_unperturbed() {
        #[derive(Debug)]
        struct Ctl(u64);
        impl Message for Ctl {
            fn faultable(&self) -> bool {
                false
            }
        }
        let mut plan = FaultPlan::seeded(9);
        plan.drop = 1.0;
        let (mut eps, stats) = build_with_faults::<Ctl>(2, Some(plan));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..50 {
            a.send(Rank(1), Ctl(i)).unwrap();
        }
        for i in 0..50 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg.0, i);
        }
        assert_eq!(stats.fault_snapshot_of(Rank(0)).dropped, 0);
    }

    #[test]
    fn shutdown_flag_visible_to_all() {
        let (eps, _stats) = build::<Ping>(3);
        assert!(!eps[2].shutdown_raised());
        eps[0].raise_shutdown();
        assert!(eps[1].shutdown_raised());
        assert!(eps[2].shutdown_raised());
    }

    #[test]
    fn counters_track_traffic() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(0, vec![0; 100])).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(a.counters().messages_sent(), 1);
        assert_eq!(a.counters().bytes_sent(), 108);
        assert_eq!(b.counters().messages_received(), 1);
        assert_eq!(b.counters().bytes_received(), 108);
    }

    #[test]
    fn epoch_monotone() {
        let (eps, _stats) = build::<Ping>(2);
        let e1 = eps[0].next_epoch();
        let e2 = eps[1].next_epoch();
        assert!(e2 > e1);
    }

    /// A protocol with a batch container, shaped like the runtime's
    /// `SipMsg::Batch`.
    #[derive(Debug, Clone, PartialEq)]
    enum Pkt {
        One(u64),
        Many(Vec<Pkt>),
    }

    impl Message for Pkt {
        fn approx_bytes(&self) -> usize {
            match self {
                Pkt::One(_) => 8,
                Pkt::Many(v) => v.iter().map(|m| m.approx_bytes()).sum(),
            }
        }

        fn batch(msgs: Vec<Self>) -> Result<Self, Vec<Self>> {
            Ok(Pkt::Many(msgs))
        }

        fn unbatch(self) -> Result<Vec<Self>, Self> {
            match self {
                Pkt::Many(v) => Ok(v),
                one => Err(one),
            }
        }
    }

    #[test]
    fn staged_messages_coalesce_into_one_envelope() {
        let (mut eps, stats) = build::<Pkt>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..5 {
            a.stage(Rank(1), Pkt::One(i)).unwrap();
        }
        a.flush().unwrap();
        // One wire message, four coalesced away; the receiver sees all
        // five parts, in order, sharing the envelope's sequence number.
        assert_eq!(a.counters().messages_sent(), 1);
        assert_eq!(a.counters().messages_coalesced(), 4);
        assert_eq!(stats.total_messages_coalesced(), 4);
        for i in 0..5 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.msg, Pkt::One(i));
            assert_eq!(env.seq, 1);
            assert_eq!(env.src, Rank(0));
        }
        assert!(b.try_recv().is_none());
        assert_eq!(b.counters().messages_received(), 1);
    }

    #[test]
    fn send_flushes_staged_first_for_fifo() {
        let (mut eps, _stats) = build::<Pkt>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.stage(Rank(1), Pkt::One(0)).unwrap();
        a.stage(Rank(1), Pkt::One(1)).unwrap();
        a.send(Rank(1), Pkt::One(2)).unwrap();
        for i in 0..3 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.msg, Pkt::One(i), "staged traffic must stay FIFO");
        }
    }

    #[test]
    fn single_staged_message_ships_plain() {
        let (mut eps, _stats) = build::<Pkt>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.stage(Rank(1), Pkt::One(9)).unwrap();
        a.flush().unwrap();
        assert_eq!(a.counters().messages_coalesced(), 0);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().msg,
            Pkt::One(9)
        );
    }

    #[test]
    fn non_batching_protocol_falls_back_to_individual_sends() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..3 {
            a.stage(Rank(1), Ping(i, vec![])).unwrap();
        }
        a.flush().unwrap();
        assert_eq!(a.counters().messages_sent(), 3);
        assert_eq!(a.counters().messages_coalesced(), 0);
        for i in 0..3 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg.0, i);
        }
    }

    #[test]
    fn dropping_endpoint_flushes_staged() {
        let (mut eps, _stats) = build::<Pkt>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.stage(Rank(1), Pkt::One(1)).unwrap();
        a.stage(Rank(1), Pkt::One(2)).unwrap();
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().msg,
            Pkt::One(1)
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().msg,
            Pkt::One(2)
        );
    }

    #[test]
    fn dropped_batch_loses_all_parts_once() {
        // A whole-envelope fault verdict applies to the batch: one drop
        // loses every part (each is retried by the protocol layer above).
        let mut plan = FaultPlan::seeded(5);
        plan.drop = 1.0;
        let (mut eps, stats) = build_with_faults::<Pkt>(2, Some(plan));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..4 {
            a.stage(Rank(1), Pkt::One(i)).unwrap();
        }
        a.flush().unwrap();
        assert!(b.recv_timeout(Duration::from_millis(10)).is_none());
        assert_eq!(stats.fault_snapshot_of(Rank(0)).dropped, 1);
    }

    #[test]
    fn recv_timeout_expires() {
        let (eps, _stats) = build::<Ping>(1);
        let t0 = std::time::Instant::now();
        assert!(eps[0].recv_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
