//! # sia-fabric — the SIA's communication substrate
//!
//! The original SIP runs its master, workers, and I/O servers as MPI
//! processes and insists that "all message passing is asynchronous". This
//! crate provides the same contract without MPI: a set of *ranks* (threads in
//! one process) exchanging typed messages through nonblocking endpoints.
//!
//! Semantics mirror the MPI subset the SIP uses:
//!
//! * [`Endpoint::send`] is `mpi_isend`-like: it never blocks the sender and
//!   returns a [`SendHandle`] that reports completion (delivery into the
//!   receiver's queue).
//! * [`Endpoint::try_recv`] / [`Endpoint::recv_timeout`] are the
//!   `mpi_iprobe`/`mpi_recv` pair the SIP's progress loop uses: workers
//!   "periodically check for messages and process them".
//! * Per-(sender, receiver) FIFO ordering is guaranteed, as in MPI.
//!
//! The fabric is generic over the message type; `sia-runtime` instantiates it
//! with the SIP protocol messages. Message sizes (for the traffic counters
//! the profiler reports) come from the [`Message`] trait.

pub mod stats;

pub use stats::TrafficCounters;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A rank: the identity of one participant (master, worker, or I/O server).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub usize);

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Messages carried by the fabric report an approximate payload size so the
/// runtime can keep the traffic counters the paper's profiler exposes.
pub trait Message: Send + 'static {
    /// Approximate wire size in bytes (payload only).
    fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// A delivered message with its sender.
#[derive(Debug)]
pub struct Envelope<M> {
    /// The sending rank.
    pub src: Rank,
    /// The payload.
    pub msg: M,
}

/// Completion handle returned by [`Endpoint::send`] (the analogue of the
/// `MPI_Request` from `mpi_isend`).
///
/// Delivery into the receiver's queue is immediate in-process, so the handle
/// is complete as soon as `send` returns unless the receiver disappeared; it
/// exists so runtime code keeps the request-based structure of the original
/// and so tests can assert on delivery.
#[derive(Debug)]
pub struct SendHandle {
    delivered: bool,
}

impl SendHandle {
    /// True when the message reached the receiver's queue.
    pub fn is_complete(&self) -> bool {
        self.delivered
    }
}

/// Error sending to a rank whose endpoint was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerGone(pub Rank);

impl fmt::Display for PeerGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer {} has shut down", self.0)
    }
}

impl std::error::Error for PeerGone {}

struct Shared {
    stats: Vec<TrafficCounters>,
    shutdown: AtomicBool,
    epoch: AtomicU64,
}

/// One rank's connection to the fabric. Owned by the rank's thread.
pub struct Endpoint<M: Message> {
    rank: Rank,
    inbox: Receiver<Envelope<M>>,
    peers: Vec<Sender<Envelope<M>>>,
    shared: Arc<Shared>,
}

impl<M: Message> Endpoint<M> {
    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of ranks in the fabric.
    pub fn world_size(&self) -> usize {
        self.peers.len()
    }

    /// Nonblocking send (the `mpi_isend` analogue).
    ///
    /// # Errors
    /// [`PeerGone`] if the destination endpoint has been dropped.
    pub fn send(&self, to: Rank, msg: M) -> Result<SendHandle, PeerGone> {
        let bytes = msg.approx_bytes();
        let env = Envelope {
            src: self.rank,
            msg,
        };
        match self.peers[to.0].send(env) {
            Ok(()) => {
                self.shared.stats[self.rank.0].record_send(to, bytes);
                Ok(SendHandle { delivered: true })
            }
            Err(_) => Err(PeerGone(to)),
        }
    }

    /// Nonblocking receive (the `mpi_iprobe` + `mpi_recv` analogue).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.inbox.try_recv() {
            Ok(env) => {
                self.shared.stats[self.rank.0].record_recv(env.src, env.msg.approx_bytes());
                Some(env)
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a timeout, for progress loops that have nothing
    /// to compute and must wait for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => {
                self.shared.stats[self.rank.0].record_recv(env.src, env.msg.approx_bytes());
                Some(env)
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Number of messages waiting in this rank's queue.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }

    /// Raises the fabric-wide shutdown flag (any rank may call this; e.g. the
    /// master after `halt`).
    pub fn raise_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once any rank raised shutdown.
    pub fn shutdown_raised(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Traffic counters of this rank.
    pub fn counters(&self) -> &TrafficCounters {
        &self.shared.stats[self.rank.0]
    }

    /// Bumps and returns a fabric-wide epoch counter (used by the runtime to
    /// number barrier generations).
    pub fn next_epoch(&self) -> u64 {
        self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }
}

impl<M: Message> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({}, world={})", self.rank, self.peers.len())
    }
}

/// Builds a fabric of `n` ranks, returning one [`Endpoint`] per rank plus a
/// [`FabricStats`] handle for post-run inspection.
pub fn build<M: Message>(n: usize) -> (Vec<Endpoint<M>>, FabricStats) {
    assert!(n > 0, "fabric needs at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        stats: (0..n).map(|_| TrafficCounters::new(n)).collect(),
        shutdown: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
    });
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| Endpoint {
            rank: Rank(i),
            inbox,
            peers: senders.clone(),
            shared: Arc::clone(&shared),
        })
        .collect();
    let stats = FabricStats {
        shared: Arc::clone(&shared),
    };
    (endpoints, stats)
}

/// Read-only view over all ranks' traffic counters, usable after the rank
/// threads have finished.
pub struct FabricStats {
    shared: Arc<Shared>,
}

impl FabricStats {
    /// Number of ranks in the fabric.
    pub fn world_size(&self) -> usize {
        self.shared.stats.len()
    }

    /// Traffic counters of one rank.
    pub fn counters_of(&self, rank: Rank) -> &TrafficCounters {
        &self.shared.stats[rank.0]
    }

    /// Total bytes sent across the whole fabric.
    pub fn total_bytes_sent(&self) -> u64 {
        self.shared.stats.iter().map(|c| c.bytes_sent()).sum()
    }

    /// Total messages sent across the whole fabric.
    pub fn total_messages_sent(&self) -> u64 {
        self.shared.stats.iter().map(|c| c.messages_sent()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[derive(Debug, PartialEq)]
    struct Ping(u64, Vec<u8>);

    impl Message for Ping {
        fn approx_bytes(&self) -> usize {
            8 + self.1.len()
        }
    }

    #[test]
    fn send_and_receive() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(7, vec![1, 2, 3])).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, Rank(0));
        assert_eq!(env.msg, Ping(7, vec![1, 2, 3]));
    }

    #[test]
    fn fifo_per_pair() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(Rank(1), Ping(i, vec![])).unwrap();
        }
        for i in 0..100 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.msg.0, i);
        }
    }

    #[test]
    fn self_send_allowed() {
        let (eps, _stats) = build::<Ping>(1);
        let a = &eps[0];
        a.send(Rank(0), Ping(1, vec![])).unwrap();
        assert_eq!(a.pending(), 1);
        assert!(a.try_recv().is_some());
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn cross_thread_exchange() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            // Echo server: return each ping to its sender with value + 1.
            for _ in 0..10 {
                let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
                b.send(env.src, Ping(env.msg.0 + 1, vec![])).unwrap();
            }
        });
        for i in 0..10 {
            a.send(Rank(1), Ping(i, vec![])).unwrap();
            let back = a.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(back.msg.0, i + 1);
        }
        h.join().unwrap();
    }

    #[test]
    fn peer_gone_reported() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b);
        // The channel also holds senders inside `a`, so sending still works
        // until all clones drop; dropping `b` drops only the receiver.
        let err = a.send(Rank(1), Ping(0, vec![])).unwrap_err();
        assert_eq!(err, PeerGone(Rank(1)));
    }

    #[test]
    fn shutdown_flag_visible_to_all() {
        let (eps, _stats) = build::<Ping>(3);
        assert!(!eps[2].shutdown_raised());
        eps[0].raise_shutdown();
        assert!(eps[1].shutdown_raised());
        assert!(eps[2].shutdown_raised());
    }

    #[test]
    fn counters_track_traffic() {
        let (mut eps, _stats) = build::<Ping>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(Rank(1), Ping(0, vec![0; 100])).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(a.counters().messages_sent(), 1);
        assert_eq!(a.counters().bytes_sent(), 108);
        assert_eq!(b.counters().messages_received(), 1);
        assert_eq!(b.counters().bytes_received(), 108);
    }

    #[test]
    fn epoch_monotone() {
        let (eps, _stats) = build::<Ping>(2);
        let e1 = eps[0].next_epoch();
        let e2 = eps[1].next_epoch();
        assert!(e2 > e1);
    }

    #[test]
    fn recv_timeout_expires() {
        let (eps, _stats) = build::<Ping>(1);
        let t0 = std::time::Instant::now();
        assert!(eps[0].recv_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
