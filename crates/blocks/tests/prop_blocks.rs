//! Property tests for the block substrate: the contraction engine against
//! the naive reference, permutation/slice algebra, GEMM, and pool
//! invariants.

use proptest::prelude::*;
use sia_blocks::{
    contract, contract_into_ctx, dgemm, extract_slice, insert_slice, invert_permutation,
    naive_contract, permute, Block, BlockPool, ContractCtx, ContractionPlan, GemmLayout,
    PoolConfig, Shape, SliceSpec,
};

/// Splitmix-style step used to derive deterministic shuffles/data from a seed.
fn next_rand(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s
}

/// A random contraction: a plan over shuffled labels plus matching operand
/// blocks. Covers 0–2 contracted labels and 0–2 free labels per operand, so
/// it hits outer products, dot products, matrix multiplies, and rank-4
/// tensor contractions, with every operand/output label order.
fn arb_contraction() -> impl Strategy<Value = (ContractionPlan, Block, Block, f64)> {
    arb_contraction_dims(5)
}

/// [`arb_contraction`] with a configurable per-label dimension bound, so the
/// bitwise fold/materialize property can reach MR/NR edge remainders while
/// the 256-case suite stays fast.
fn arb_contraction_dims(
    max_dim: usize,
) -> impl Strategy<Value = (ContractionPlan, Block, Block, f64)> {
    (
        0usize..3,                                 // contracted labels
        0usize..3,                                 // labels free in A
        0usize..3,                                 // labels free in B
        prop::collection::vec(1usize..max_dim, 6), // dimension per label
        any::<u64>(),                              // shuffle + data seed
        -2.0..2.0f64,                              // alpha_c
    )
        .prop_map(|(n_c, mut a_f, mut b_f, dims, seed, alpha_c)| {
            // Keep both operands at rank >= 1.
            if n_c + a_f == 0 {
                a_f = 1;
            }
            if n_c + b_f == 0 {
                b_f = 1;
            }
            let mut s = seed;
            let mut shuffled = |mut labels: Vec<u32>| {
                for i in (1..labels.len()).rev() {
                    let j = (next_rand(&mut s) % (i as u64 + 1)) as usize;
                    labels.swap(i, j);
                }
                labels
            };
            // Labels: contracted = 0..n_c, A-free = n_c.., B-free after that.
            let a_labels = shuffled((0..(n_c + a_f) as u32).collect());
            let b_labels = shuffled(
                (0..n_c as u32)
                    .chain((n_c + a_f) as u32..(n_c + a_f + b_f) as u32)
                    .collect(),
            );
            let c_labels = shuffled((n_c as u32..(n_c + a_f + b_f) as u32).collect());
            let plan = ContractionPlan::infer(&c_labels, &a_labels, &b_labels)
                .expect("generated labels form a valid contraction");
            let shape_of = |labels: &[u32]| {
                let d: Vec<usize> = labels.iter().map(|&l| dims[l as usize]).collect();
                if d.is_empty() {
                    Shape::scalar()
                } else {
                    Shape::new(&d)
                }
            };
            let mut val = move || (next_rand(&mut s) % 9) as f64 - 4.0;
            let a = Block::from_fn(shape_of(&a_labels), |_| val());
            let b = Block::from_fn(shape_of(&b_labels), |_| val());
            (plan, a, b, alpha_c)
        })
}

fn arb_block(max_rank: usize, max_dim: usize) -> impl Strategy<Value = Block> {
    prop::collection::vec(1..=max_dim, 1..=max_rank).prop_flat_map(|dims| {
        let shape = Shape::new(&dims);
        prop::collection::vec(-4.0..4.0f64, shape.len())
            .prop_map(move |data| Block::from_data(shape, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// permute(permute(b, p), p⁻¹) == b for every permutation.
    #[test]
    fn permute_roundtrips(b in arb_block(4, 5), seed in 0u64..1000) {
        let rank = b.shape().rank();
        // Derive a permutation from the seed.
        let mut perm: Vec<usize> = (0..rank).collect();
        let mut s = seed;
        for i in (1..rank).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let inv = invert_permutation(&perm);
        let round = permute(&permute(&b, &perm), &inv);
        prop_assert_eq!(b, round);
    }

    /// Permutation preserves the multiset of values (sum/norm invariant).
    #[test]
    fn permute_preserves_values(b in arb_block(4, 5)) {
        let rank = b.shape().rank();
        let perm: Vec<usize> = (0..rank).rev().collect();
        let p = permute(&b, &perm);
        prop_assert!((b.sum() - p.sum()).abs() < 1e-9);
        prop_assert!((b.norm() - p.norm()).abs() < 1e-9);
    }

    /// The fast contraction (permute→GEMM→permute) equals the naive
    /// index-sum reference for arbitrary matrix-multiply-like label splits.
    #[test]
    fn contract_matches_naive_mmul(
        m in 1usize..5, n in 1usize..5, k in 1usize..5,
        a_data in prop::collection::vec(-2.0..2.0f64, 0..1),
    ) {
        let _ = a_data;
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        let a = Block::from_fn(Shape::new(&[m, k]), |i| (i[0] * 7 + i[1] * 3) as f64 % 5.0 - 2.0);
        let b = Block::from_fn(Shape::new(&[k, n]), |i| (i[0] * 5 + i[1] * 11) as f64 % 7.0 - 3.0);
        let fast = contract(&plan, &a, &b);
        let slow = naive_contract(&plan, &a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-9));
    }

    /// Rank-4 tensor contraction with permuted output matches naive.
    #[test]
    fn contract_matches_naive_rank4(
        d1 in 1usize..4, d2 in 1usize..4, d3 in 1usize..4,
        d4 in 1usize..4, d5 in 1usize..4, d6 in 1usize..4,
    ) {
        // C(0,1,4,5) = A(0,2,1,3) * B(4,2,5,3): contracted {2,3}, output
        // interleaved from both operands.
        let plan = ContractionPlan::infer(
            &[0, 1, 4, 5],
            &[0, 2, 1, 3],
            &[4, 2, 5, 3],
        ).unwrap();
        let a = Block::from_fn(
            Shape::new(&[d1, d3, d2, d4]),
            |i| ((i[0] * 3 + i[1] * 5 + i[2] * 7 + i[3] * 11) % 9) as f64 - 4.0,
        );
        let b = Block::from_fn(
            Shape::new(&[d5, d3, d6, d4]),
            |i| ((i[0] * 13 + i[1] * 3 + i[2] * 5 + i[3] * 2) % 11) as f64 - 5.0,
        );
        let fast = contract(&plan, &a, &b);
        let slow = naive_contract(&plan, &a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-9));
    }

    /// dgemm with all transpose combinations against the naive triple loop.
    #[test]
    fn gemm_matches_reference(
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
        ta in prop::bool::ANY, tb in prop::bool::ANY,
        alpha in -2.0..2.0f64, beta in -2.0..2.0f64,
    ) {
        let la = if ta { GemmLayout::Trans } else { GemmLayout::NoTrans };
        let lb = if tb { GemmLayout::Trans } else { GemmLayout::NoTrans };
        let gen = |len: usize, salt: usize| -> Vec<f64> {
            (0..len).map(|i| ((i * 31 + salt) % 13) as f64 - 6.0).collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let mut c1 = gen(m * n, 3);
        let mut c2 = c1.clone();
        dgemm(m, n, k, alpha, &a, la, &b, lb, beta, &mut c1);
        sia_blocks::gemm::naive_gemm(m, n, k, alpha, &a, la, &b, lb, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// Slice-then-insert at the same window is the identity on the block.
    #[test]
    fn slice_insert_identity(b in arb_block(3, 6), seed in 0u64..1000) {
        let rank = b.shape().rank();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99991);
            s
        };
        let mut offsets = Vec::new();
        let mut extents = Vec::new();
        for d in 0..rank {
            let dim = b.shape().dim(d);
            let ext = (next() % dim as u64) as usize + 1;
            let off = (next() % (dim - ext + 1) as u64) as usize;
            offsets.push(off);
            extents.push(ext);
        }
        let spec = SliceSpec::new(&offsets, &extents);
        let mut copy = b.clone();
        let slice = extract_slice(&b, &spec).unwrap();
        insert_slice(&mut copy, &spec, &slice).unwrap();
        prop_assert_eq!(b, copy);
    }

    /// Inserting a modified slice changes exactly the window.
    #[test]
    fn insert_touches_only_window(dims in prop::collection::vec(2usize..5, 2..4)) {
        let shape = Shape::new(&dims);
        let b = Block::filled(shape, 1.0);
        let mut target = b.clone();
        let extents: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
        let offsets = vec![1usize; dims.len()];
        let spec = SliceSpec::new(&offsets, &extents);
        let patch = Block::filled(spec.slice_shape(), 9.0);
        insert_slice(&mut target, &spec, &patch).unwrap();
        let mut in_window = 0;
        for idx in shape.indices() {
            let idx = &idx[..shape.rank()];
            let inside = idx.iter().zip(&offsets).zip(&extents)
                .all(|((&i, &o), &e)| i >= o && i < o + e);
            if inside {
                prop_assert_eq!(target.get(idx), 9.0);
                in_window += 1;
            } else {
                prop_assert_eq!(target.get(idx), 1.0);
            }
        }
        prop_assert_eq!(in_window, spec.slice_shape().len());
    }

    /// Pool: acquire/release of random sequences keeps accounting exact and
    /// recycled blocks are always zeroed.
    #[test]
    fn pool_accounting_balanced(ops in prop::collection::vec((1usize..64, prop::bool::ANY), 1..60)) {
        let pool = BlockPool::new(PoolConfig { max_bytes: 1 << 20 });
        let mut live: Vec<Block> = Vec::new();
        for (elems, release_one) in ops {
            if release_one && !live.is_empty() {
                pool.release(live.pop().unwrap());
            } else if let Ok(b) = pool.acquire_raw(Shape::new(&[elems])) {
                prop_assert!(b.data().iter().all(|&x| x == 0.0), "recycled block not zeroed");
                live.push(b);
            }
        }
        let st = pool.stats();
        prop_assert_eq!(st.live_blocks, live.len());
        let live_bytes: usize = live.iter().map(|b| b.len() * 8).sum();
        prop_assert_eq!(st.live_bytes, live_bytes);
        prop_assert!(st.live_bytes + st.free_bytes <= 1 << 20);
    }

    /// Scalar block ops: fill+scale+axpy compose as on scalars.
    #[test]
    fn block_ops_match_scalar_algebra(
        f in -3.0..3.0f64, s in -3.0..3.0f64, alpha in -3.0..3.0f64, o in -3.0..3.0f64,
        dims in prop::collection::vec(1usize..5, 1..4),
    ) {
        let shape = Shape::new(&dims);
        let mut b = Block::zeros(shape);
        b.fill(f);
        b.scale(s);
        let other = Block::filled(shape, o);
        b.axpy(alpha, &other);
        let want = f * s + alpha * o;
        prop_assert!(b.data().iter().all(|&x| (x - want).abs() < 1e-12));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pooled, folding contraction context matches the naive reference
    /// (`C = alpha_c*C + A*B`) for random shapes, label orders, and alpha_c
    /// — with transpose folding both enabled and ablated.
    #[test]
    fn ctx_contraction_matches_naive((plan, a, b, alpha_c) in arb_contraction()) {
        let out_shape = plan.output_shape(a.shape(), b.shape());
        let c0 = Block::from_fn(out_shape, |i| {
            (i.iter().enumerate().map(|(d, &x)| (d + 2) * x).sum::<usize>() % 7) as f64 - 3.0
        });
        let naive = naive_contract(&plan, &a, &b);
        let expect = Block::from_data(
            out_shape,
            c0.data()
                .iter()
                .zip(naive.data())
                .map(|(&c, &ab)| alpha_c * c + ab)
                .collect(),
        );
        let pool = BlockPool::new(PoolConfig { max_bytes: 1 << 20 });
        let mut results = Vec::new();
        for fold in [true, false] {
            let mut ctx = ContractCtx::with_pool(pool.clone()).fold_transposes(fold);
            let mut c = c0.clone();
            contract_into_ctx(&mut ctx, &plan, &a, &b, alpha_c, &mut c);
            prop_assert!(c.approx_eq(&expect, 1e-9), "fold={fold}");
            let st = ctx.take_stats();
            let pk = ctx.take_pack_stats();
            prop_assert_eq!(st.contractions, 1);
            if fold {
                // Folding on: nothing is ever materialized — reorders ride
                // the pack traversal or the layout flag.
                prop_assert_eq!(st.permutes_performed, 0);
                prop_assert_eq!(pk.permutes_materialized, 0);
                prop_assert_eq!(st.permutes_avoided + pk.permutes_folded, 2);
            } else {
                // Ablated: every operand must have been materialized.
                prop_assert_eq!(st.permutes_avoided, 0);
                prop_assert_eq!(st.permutes_performed, 2);
                prop_assert_eq!(pk.permutes_materialized, 2);
                prop_assert_eq!(pk.permutes_folded, 0);
            }
            results.push(c);
        }
        // Permute-on-pack feeds the microkernel the same packed panels as
        // packing a materialized permute: identical arithmetic, identical
        // bits.
        prop_assert_eq!(results[0].data(), results[1].data());
        // Pool discipline: all scratch was returned.
        prop_assert_eq!(pool.stats().live_blocks, 0);
    }

    /// Permute-on-pack equals permute-then-pack *bitwise* on larger shapes:
    /// random label orders (covering both transpose flags and general
    /// permutations), dimensions spanning size-1 segments through MR/NR edge
    /// remainders.
    #[test]
    fn permute_on_pack_matches_materialized_bitwise(
        (plan, a, b, alpha_c) in arb_contraction_dims(13)
    ) {
        let out_shape = plan.output_shape(a.shape(), b.shape());
        let c0 = Block::from_fn(out_shape, |i| {
            (i.iter().enumerate().map(|(d, &x)| (d + 3) * x).sum::<usize>() % 5) as f64 - 2.0
        });
        let mut folded = c0.clone();
        let mut ctx = ContractCtx::new();
        contract_into_ctx(&mut ctx, &plan, &a, &b, alpha_c, &mut folded);
        let mut materialized = c0.clone();
        let mut ctx = ContractCtx::new().fold_transposes(false);
        contract_into_ctx(&mut ctx, &plan, &a, &b, alpha_c, &mut materialized);
        prop_assert_eq!(folded.data(), materialized.data());
    }
}

/// Regression: the canonical rank-2 contraction `C(M,N) = Σ_L A(L,M)*B(L,N)`
/// (and its mirror with B holding the transpose) must run with ZERO permute
/// materializations — A's transpose folds into the GEMM layout flag, B (resp.
/// A) is already in GEMM order, and the identity output order lets the GEMM
/// write straight into C.
#[test]
fn rank2_transpose_contractions_avoid_all_permutes() {
    let l = 6;
    let m = 5;
    let n = 4;
    let a_val = |i: &[usize]| ((i[0] * 3 + i[1] * 7) % 11) as f64 - 5.0;
    let b_val = |i: &[usize]| ((i[0] * 5 + i[1] * 2) % 13) as f64 - 6.0;

    // C(M,N) = A(L,M) * B(L,N): labels L=0 (contracted), M=1, N=2.
    let folded_a = (
        ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap(),
        Block::from_fn(Shape::new(&[l, m]), a_val),
        Block::from_fn(Shape::new(&[l, n]), b_val),
    );
    // C(M,N) = A(M,L) * B(N,L): same contraction, transposes on the other side.
    let folded_b = (
        ContractionPlan::infer(&[1, 2], &[1, 0], &[2, 0]).unwrap(),
        Block::from_fn(Shape::new(&[m, l]), a_val),
        Block::from_fn(Shape::new(&[n, l]), b_val),
    );

    let pool = BlockPool::new(PoolConfig { max_bytes: 1 << 20 });
    let mut ctx = ContractCtx::with_pool(pool.clone());
    for (plan, a, b) in [folded_a, folded_b] {
        let mut c = Block::zeros(plan.output_shape(a.shape(), b.shape()));
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&naive_contract(&plan, &a, &b), 1e-12));
        let st = ctx.take_stats();
        assert_eq!(st.permutes_performed, 0, "no permute copies allowed");
        assert_eq!(st.permutes_avoided, 2, "both operands fold");
        assert_eq!(
            st.scratch_pool_hits + st.scratch_pool_misses,
            0,
            "hot path must not allocate scratch at all"
        );
        assert_eq!(st.bytes_not_copied, ((a.len() + b.len()) * 8) as u64);
    }
    // The only pool traffic is the GEMM's two pack panels per contraction
    // (same m/n/k both times, so the second pair is recycled), and
    // everything was returned.
    let ps = pool.stats();
    let pk = ctx.take_pack_stats();
    assert_eq!(pk.pack_pool_misses, 2, "first contraction allocates panels");
    assert_eq!(pk.pack_pool_hits, 2, "second contraction recycles them");
    assert_eq!(ps.hits + ps.misses, 4);
    assert_eq!(ps.live_blocks, 0);
}
