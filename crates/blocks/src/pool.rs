//! The worker block pool: "stacks of preallocated blocks … of various sizes".
//!
//! Per the paper (§V-B), each SIP worker divides its memory into stacks of
//! preallocated blocks per size class, with the number of blocks of each size
//! determined by the dry-run analysis. [`BlockPool`] reproduces this: storage
//! is recycled by element-count class, a configurable byte budget bounds
//! total residency, and [`PoolStats`] exposes the counters the dry run and
//! profiler need (peak residency validates the dry-run estimate in tests).
//!
//! The pool is deliberately single-threaded: each worker owns its own pool,
//! exactly as each MPI process owned its own stacks in the original SIP.

use crate::block::Block;
use crate::shape::Shape;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Hard ceiling on bytes of block storage live at once (handed out plus
    /// cached in free stacks). Mirrors the per-worker memory the dry run
    /// budgets against.
    pub max_bytes: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        // 256 MiB default worker budget; the dry run overrides this.
        PoolConfig {
            max_bytes: 256 << 20,
        }
    }
}

/// Counters describing pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions satisfied from a free stack.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh storage.
    pub misses: u64,
    /// Blocks currently handed out.
    pub live_blocks: usize,
    /// Bytes currently handed out.
    pub live_bytes: usize,
    /// Peak of `live_bytes` over the pool's lifetime.
    pub peak_bytes: usize,
    /// Bytes parked in free stacks.
    pub free_bytes: usize,
}

/// Error when the byte budget would be exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Bytes the failed acquisition needed.
    pub requested: usize,
    /// Bytes that were available under the budget.
    pub available: usize,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block pool exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for PoolExhausted {}

struct PoolInner {
    config: PoolConfig,
    /// Free stacks keyed by element count (the size class).
    stacks: BTreeMap<usize, Vec<Vec<f64>>>,
    stats: PoolStats,
}

impl PoolInner {
    fn acquire(&mut self, shape: Shape) -> Result<Block, PoolExhausted> {
        self.acquire_with(shape, true)
    }

    fn acquire_with(&mut self, shape: Shape, zero: bool) -> Result<Block, PoolExhausted> {
        let elems = shape.len();
        let bytes = elems * std::mem::size_of::<f64>();
        if let Some(stack) = self.stacks.get_mut(&elems) {
            if let Some(mut data) = stack.pop() {
                if zero {
                    data.fill(0.0);
                }
                self.stats.hits += 1;
                self.stats.live_blocks += 1;
                self.stats.live_bytes += bytes;
                self.stats.free_bytes -= bytes;
                self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
                return Ok(Block::from_data(shape, data));
            }
        }
        let total = self.stats.live_bytes + self.stats.free_bytes;
        if total + bytes > self.config.max_bytes {
            // Try reclaiming free storage of other classes before failing,
            // largest classes first (they free the most per eviction).
            let mut freed = 0usize;
            let classes: Vec<usize> = self.stacks.keys().rev().copied().collect();
            for class in classes {
                if total + bytes - freed <= self.config.max_bytes {
                    break;
                }
                if let Some(stack) = self.stacks.get_mut(&class) {
                    while let Some(v) = stack.pop() {
                        freed += v.len() * std::mem::size_of::<f64>();
                        drop(v);
                        if total + bytes - freed <= self.config.max_bytes {
                            break;
                        }
                    }
                }
            }
            self.stats.free_bytes -= freed;
            if self.stats.live_bytes + self.stats.free_bytes + bytes > self.config.max_bytes {
                return Err(PoolExhausted {
                    requested: bytes,
                    available: self.config.max_bytes
                        - (self.stats.live_bytes + self.stats.free_bytes),
                });
            }
        }
        self.stats.misses += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        Ok(Block::zeros(shape))
    }

    /// Parks a block's storage on its size-class stack. Blocks that were not
    /// acquired from this pool are *adopted*: their storage becomes reusable
    /// and the live counters saturate rather than underflow (the SIP hands
    /// freshly computed blocks to the pool when a temp dies).
    fn release(&mut self, block: Block) {
        let bytes = block.len() * std::mem::size_of::<f64>();
        let elems = block.len();
        if self.stats.live_blocks > 0 {
            self.stats.live_blocks -= 1;
            self.stats.live_bytes = self.stats.live_bytes.saturating_sub(bytes);
        }
        self.stats.free_bytes += bytes;
        self.stacks
            .entry(elems)
            .or_default()
            .push(block.into_data());
    }
}

/// A size-classed recycling allocator for blocks, shared cheaply via `Rc`.
#[derive(Clone)]
pub struct BlockPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl BlockPool {
    /// Creates a pool with the given configuration.
    pub fn new(config: PoolConfig) -> Self {
        BlockPool {
            inner: Rc::new(RefCell::new(PoolInner {
                config,
                stacks: BTreeMap::new(),
                stats: PoolStats::default(),
            })),
        }
    }

    /// Acquires a zeroed block of `shape`, recycling storage when a block of
    /// the same size class was released earlier.
    pub fn acquire(&self, shape: Shape) -> Result<PooledBlock, PoolExhausted> {
        let block = self.inner.borrow_mut().acquire(shape)?;
        Ok(PooledBlock {
            block: Some(block),
            pool: Rc::clone(&self.inner),
        })
    }

    /// Acquires a raw [`Block`] the caller must eventually [`release`].
    ///
    /// [`release`]: BlockPool::release
    pub fn acquire_raw(&self, shape: Shape) -> Result<Block, PoolExhausted> {
        self.inner.borrow_mut().acquire(shape)
    }

    /// Like [`acquire_raw`], but recycled storage keeps its stale contents
    /// instead of being zero-filled. For scratch every element of which the
    /// caller overwrites before reading — e.g. GEMM pack panels, which
    /// explicitly write or zero-pad the entire region the microkernel
    /// consumes. Fresh allocations are still zeroed (there is nothing to
    /// recycle).
    ///
    /// [`acquire_raw`]: BlockPool::acquire_raw
    pub fn acquire_scratch(&self, shape: Shape) -> Result<Block, PoolExhausted> {
        self.inner.borrow_mut().acquire_with(shape, false)
    }

    /// Returns a raw block's storage to its size-class stack.
    pub fn release(&self, block: Block) {
        self.inner.borrow_mut().release(block);
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Number of distinct size classes with parked storage.
    pub fn size_classes(&self) -> usize {
        self.inner.borrow().stacks.len()
    }

    /// Drops all parked free storage (e.g. between SIAL programs).
    pub fn trim(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.stacks.clear();
        inner.stats.free_bytes = 0;
    }
}

impl fmt::Debug for BlockPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockPool({:?})", self.stats())
    }
}

/// RAII handle to a pooled block; returns storage to the pool on drop.
pub struct PooledBlock {
    block: Option<Block>,
    pool: Rc<RefCell<PoolInner>>,
}

impl PooledBlock {
    /// Detaches the block from the pool (the storage will not be recycled;
    /// the live-byte accounting is reduced as if released).
    pub fn into_block(mut self) -> Block {
        let block = self.block.take().expect("block already taken");
        let mut inner = self.pool.borrow_mut();
        let bytes = block.len() * std::mem::size_of::<f64>();
        inner.stats.live_blocks -= 1;
        inner.stats.live_bytes -= bytes;
        block
    }
}

impl Deref for PooledBlock {
    type Target = Block;
    fn deref(&self) -> &Block {
        self.block.as_ref().expect("block taken")
    }
}

impl DerefMut for PooledBlock {
    fn deref_mut(&mut self) -> &mut Block {
        self.block.as_mut().expect("block taken")
    }
}

impl Drop for PooledBlock {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            self.pool.borrow_mut().release(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(bytes: usize) -> BlockPool {
        BlockPool::new(PoolConfig { max_bytes: bytes })
    }

    #[test]
    fn recycles_same_size_class() {
        let p = pool(1 << 20);
        let s = Shape::new(&[8, 8]);
        {
            let _b = p.acquire(s).unwrap();
        }
        let _b2 = p.acquire(s).unwrap();
        let st = p.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, 1);
    }

    #[test]
    fn recycled_blocks_are_zeroed() {
        let p = pool(1 << 20);
        let s = Shape::new(&[4]);
        {
            let mut b = p.acquire(s).unwrap();
            b.fill(9.0);
        }
        let b2 = p.acquire(s).unwrap();
        assert!(b2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scratch_skips_zero_fill() {
        let p = pool(1 << 20);
        let s = Shape::new(&[4]);
        {
            let mut b = p.acquire(s).unwrap();
            b.fill(9.0);
        }
        let b2 = p.acquire_scratch(s).unwrap();
        assert!(
            b2.data().iter().all(|&x| x == 9.0),
            "recycled scratch keeps stale contents"
        );
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn budget_enforced() {
        let p = pool(1024); // room for 128 doubles
        let a = p.acquire(Shape::new(&[100])).unwrap();
        let err = p.acquire_raw(Shape::new(&[100])).unwrap_err();
        assert_eq!(err.requested, 800);
        drop(a);
        // After release the storage is parked but reclaimable.
        assert!(p.acquire(Shape::new(&[100])).is_ok());
    }

    #[test]
    fn reclaims_other_classes_under_pressure() {
        let p = pool(1600); // 200 doubles
        {
            let _a = p.acquire(Shape::new(&[100])).unwrap();
        }
        // 800 bytes parked in class 100; a class-150 request needs 1200 and
        // must evict the parked storage to fit.
        let b = p.acquire(Shape::new(&[150]));
        assert!(b.is_ok());
        assert_eq!(p.stats().free_bytes, 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let p = pool(1 << 20);
        let a = p.acquire(Shape::new(&[64])).unwrap();
        let b = p.acquire(Shape::new(&[64])).unwrap();
        drop(a);
        drop(b);
        assert_eq!(p.stats().peak_bytes, 2 * 64 * 8);
        assert_eq!(p.stats().live_bytes, 0);
    }

    #[test]
    fn into_block_detaches() {
        let p = pool(1 << 20);
        let b = p.acquire(Shape::new(&[16])).unwrap();
        let owned = b.into_block();
        assert_eq!(owned.len(), 16);
        let st = p.stats();
        assert_eq!(st.live_blocks, 0);
        assert_eq!(st.free_bytes, 0);
    }

    #[test]
    fn trim_drops_parked_storage() {
        let p = pool(1 << 20);
        {
            let _ = p.acquire(Shape::new(&[32])).unwrap();
        }
        assert!(p.stats().free_bytes > 0);
        p.trim();
        assert_eq!(p.stats().free_bytes, 0);
        assert_eq!(p.size_classes(), 0);
    }

    #[test]
    fn distinct_classes_tracked() {
        let p = pool(1 << 20);
        {
            let _a = p.acquire(Shape::new(&[8])).unwrap();
            let _b = p.acquire(Shape::new(&[16])).unwrap();
        }
        assert_eq!(p.size_classes(), 2);
    }
}
