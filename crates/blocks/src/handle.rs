//! Shared, copy-on-write block handles.
//!
//! The SIP data plane moves the same block through many holders — the home
//! store that owns it, the cache entry on a remote rank, the fault-tolerance
//! journal, an epoch checkpoint, and the in-process fabric envelope carrying
//! it between ranks. A [`BlockHandle`] lets all of those holders share one
//! allocation: cloning a handle bumps a reference count instead of copying
//! the payload, and mutation goes through [`BlockHandle::make_mut`], which
//! copies only when the block is actually shared (copy-on-write).

use crate::block::Block;
use crate::shape::Shape;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted, copy-on-write handle to a [`Block`].
///
/// `Clone` is O(1) (an `Arc` increment). Reads go through `Deref<Target =
/// Block>`. Writes go through [`make_mut`](BlockHandle::make_mut), which
/// deep-copies the payload only if another holder still shares it.
#[derive(Clone, PartialEq)]
pub struct BlockHandle(Arc<Block>);

impl BlockHandle {
    /// Wraps a block in a fresh (unshared) handle.
    pub fn new(block: Block) -> Self {
        BlockHandle(Arc::new(block))
    }

    /// A zero-filled block of the given shape, behind a fresh handle.
    pub fn zeros(shape: Shape) -> Self {
        Self::new(Block::zeros(shape))
    }

    /// Mutable access, copy-on-write: if the handle is unique this is free;
    /// if it is shared, the payload is cloned first so no other holder
    /// observes the mutation.
    pub fn make_mut(&mut self) -> &mut Block {
        Arc::make_mut(&mut self.0)
    }

    /// Unwraps into an owned [`Block`]; deep-copies only if still shared.
    pub fn into_block(self) -> Block {
        match Arc::try_unwrap(self.0) {
            Ok(b) => b,
            Err(arc) => (*arc).clone(),
        }
    }

    /// Do two handles share the same allocation?
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Number of live holders of this allocation.
    pub fn holders(&self) -> usize {
        Arc::strong_count(&self.0)
    }

    /// Is at least one other holder sharing this allocation?
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }

    /// Payload heap bytes (the `f64` data; the fixed header is negligible).
    pub fn heap_bytes(&self) -> u64 {
        self.0.len() as u64 * 8
    }
}

impl Deref for BlockHandle {
    type Target = Block;
    fn deref(&self) -> &Block {
        &self.0
    }
}

impl std::borrow::Borrow<Block> for BlockHandle {
    fn borrow(&self) -> &Block {
        &self.0
    }
}

impl From<Block> for BlockHandle {
    fn from(block: Block) -> Self {
        BlockHandle::new(block)
    }
}

impl std::fmt::Debug for BlockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockHandle({:?}, holders={})", &*self.0, self.holders())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn block(v: f64) -> Block {
        Block::filled(Shape::new(&[4]), v)
    }

    #[test]
    fn clone_shares_allocation() {
        let a = BlockHandle::new(block(1.0));
        let b = a.clone();
        assert!(BlockHandle::ptr_eq(&a, &b));
        assert_eq!(a.holders(), 2);
        assert!(a.is_shared());
    }

    #[test]
    fn cow_mutation_never_aliases_another_holder() {
        // The satellite CoW property: across a sweep of holder counts and
        // mutation orders, a mutated handle never changes what any other
        // holder reads, and the mutated handle no longer shares storage.
        for holders in 1..5usize {
            let mut a = BlockHandle::new(block(1.0));
            let others: Vec<BlockHandle> = (0..holders).map(|_| a.clone()).collect();
            a.make_mut().fill(9.0);
            for o in &others {
                assert_eq!(o.data()[0], 1.0, "holder observed a CoW mutation");
                assert!(!BlockHandle::ptr_eq(&a, o));
            }
            assert_eq!(a.data()[0], 9.0);
        }
    }

    #[test]
    fn unique_mutation_is_in_place() {
        let mut a = BlockHandle::new(block(1.0));
        let before = a.data().as_ptr();
        a.make_mut().fill(2.0);
        assert_eq!(a.data().as_ptr(), before, "unique make_mut must not copy");
    }

    #[test]
    fn into_block_unwraps() {
        let a = BlockHandle::new(block(3.0));
        let b = a.clone().into_block(); // shared: copies
        assert_eq!(b.data()[0], 3.0);
        let c = a.into_block(); // unique: moves
        assert_eq!(c.data()[0], 3.0);
    }

    #[test]
    fn deref_reads_and_bytes() {
        let a = BlockHandle::zeros(Shape::new(&[2, 3]));
        assert_eq!(a.len(), 6);
        assert_eq!(a.heap_bytes(), 48);
        assert_eq!(a.sum(), 0.0);
    }
}
