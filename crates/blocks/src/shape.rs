//! Block shapes: the dimensions of a single tile of a segmented array.
//!
//! SIAL arrays have at most [`MAX_RANK`] dimensions. Segment sizes in the
//! paper's domain are typically 10–50, so a rank-4 block holds `seg^4`
//! (10^4 .. 6.25·10^6) doubles. Blocks are stored row-major (last index
//! fastest), matching the C side of the original SIP.

use std::fmt;

/// Maximum rank of a block. The paper notes that intermediates of rank > 4
/// occasionally arise (handled with subindices); 8 gives generous headroom
/// while keeping shapes inline (no heap allocation per shape).
pub const MAX_RANK: usize = 8;

/// The shape of a dense block: an inline list of up to [`MAX_RANK`] extents.
///
/// A rank-0 shape is a scalar block with exactly one element.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [u32; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from the given extents.
    ///
    /// # Panics
    /// Panics if `dims.len() > MAX_RANK` or any extent is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        let mut d = [0u32; MAX_RANK];
        for (i, &x) in dims.iter().enumerate() {
            assert!(x > 0, "zero extent in dimension {i}");
            assert!(x <= u32::MAX as usize, "extent too large");
            d[i] = x as u32;
        }
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape {
            dims: [0; MAX_RANK],
            rank: 0,
        }
    }

    /// A rank-`r` shape with every extent equal to `seg` — the common case
    /// for SIA blocks where one segment size applies to all indices of a
    /// given type.
    pub fn cube(rank: usize, seg: usize) -> Self {
        assert!(rank <= MAX_RANK);
        let dims: Vec<usize> = std::iter::repeat_n(seg, rank).collect();
        Shape::new(&dims)
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The extents as a slice of length `rank()`.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims[..self.rank as usize]
    }

    /// Extent of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        debug_assert!(d < self.rank());
        self.dims[d] as usize
    }

    /// Total number of elements (1 for a scalar shape).
    #[inline]
    pub fn len(&self) -> usize {
        self.dims().iter().map(|&d| d as usize).product()
    }

    /// Shapes are never empty; provided for clippy-completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major strides (last dimension has stride 1).
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [0usize; MAX_RANK];
        let r = self.rank();
        if r == 0 {
            return s;
        }
        s[r - 1] = 1;
        for d in (0..r - 1).rev() {
            s[d] = s[d + 1] * self.dims[d + 1] as usize;
        }
        s
    }

    /// Linear (row-major) offset of the multi-index `idx`.
    ///
    /// # Panics
    /// Debug-asserts that `idx` is within bounds and has the right rank.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let strides = self.strides();
        let mut off = 0;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[d] as usize, "index out of bounds");
            off += i * strides[d];
        }
        off
    }

    /// Iterates over all multi-indices of the shape in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: *self,
            next: Some([0; MAX_RANK]),
        }
    }

    /// The shape obtained by permuting dimensions: `result.dim(i) ==
    /// self.dim(perm[i])`.
    pub fn permuted(&self, perm: &[usize]) -> Shape {
        assert_eq!(perm.len(), self.rank());
        let dims: Vec<usize> = perm.iter().map(|&p| self.dim(p)).collect();
        Shape::new(&dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", strs.join("x"))
    }
}

/// Row-major iterator over the multi-indices of a [`Shape`].
pub struct IndexIter {
    shape: Shape,
    next: Option<[usize; MAX_RANK]>,
}

impl Iterator for IndexIter {
    type Item = [usize; MAX_RANK];

    fn next(&mut self) -> Option<Self::Item> {
        let cur = self.next?;
        let r = self.shape.rank();
        // Advance like an odometer, last dimension fastest.
        let mut nxt = cur;
        let mut d = r;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            nxt[d] += 1;
            if nxt[d] < self.shape.dim(d) {
                self.next = Some(nxt);
                break;
            }
            nxt[d] = 0;
        }
        if r == 0 {
            self.next = None;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.indices().count(), 1);
    }

    #[test]
    fn cube_shape() {
        let s = Shape::cube(4, 12);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.len(), 12 * 12 * 12 * 12);
        assert_eq!(s.dims(), &[12, 12, 12, 12]);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        let st = s.strides();
        assert_eq!(&st[..3], &[12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn index_iter_covers_all_in_order() {
        let s = Shape::new(&[2, 3]);
        let idxs: Vec<_> = s.indices().map(|i| (i[0], i[1])).collect();
        assert_eq!(idxs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn index_iter_offsets_are_sequential() {
        let s = Shape::new(&[3, 2, 4]);
        for (n, idx) in s.indices().enumerate() {
            assert_eq!(s.offset(&idx[..s.rank()]), n);
        }
    }

    #[test]
    fn permuted_shape() {
        let s = Shape::new(&[2, 3, 4]);
        let p = s.permuted(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_extent_panics() {
        let _ = Shape::new(&[2, 0, 4]);
    }

    #[test]
    #[should_panic]
    fn too_many_dims_panics() {
        let _ = Shape::new(&[1; MAX_RANK + 1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
