//! Block contraction — the SIA's central super instruction.
//!
//! A SIAL statement `C(M,N,I,J) = A(M,N,L,S) * B(L,S,I,J)` contracts two
//! blocks over their shared index variables. Per the paper (§III, footnote 3),
//! the contraction sums over indices common to `A` and `B` wherever they
//! appear, and is "typically implemented by permuting one of the arrays and
//! then applying a DGEMM" — exactly what [`contract`] does.
//!
//! Index variables are identified by opaque `u32` labels (the compiler uses
//! its index-table ids). [`ContractionPlan::infer`] classifies each label as
//! a left-free, right-free, or contracted index and precomputes the operand
//! permutations, so the plan can be cached per static occurrence of a `*` in
//! the bytecode and reused for every block the loop touches.

use crate::block::Block;
use crate::gemm::{dgemm_view, pack_buf_elems, GemmConfig, GemmLayout, PackBufs};
use crate::permute::{is_identity_permutation, permute_into};
use crate::pool::BlockPool;
use crate::shape::Shape;
use crate::view::MatView;
use std::fmt;

/// Errors from planning a contraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// A label occurs more than once within a single operand (traces are not
    /// SIAL contractions; ACES III uses a dedicated super instruction).
    RepeatedLabel { label: u32 },
    /// An output label does not occur in either input.
    UnboundOutput { label: u32 },
    /// A label occurs in both inputs *and* the output (a batch index, which
    /// SIAL's `*` does not define).
    BatchLabel { label: u32 },
    /// An input label that is not contracted is missing from the output.
    DanglingInput { label: u32 },
    /// Operand rank exceeds [`crate::MAX_RANK`].
    RankTooLarge,
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::RepeatedLabel { label } => {
                write!(f, "index label {label} repeated within one operand")
            }
            ContractError::UnboundOutput { label } => {
                write!(
                    f,
                    "output index label {label} not present in either operand"
                )
            }
            ContractError::BatchLabel { label } => write!(
                f,
                "index label {label} appears in both operands and the output"
            ),
            ContractError::DanglingInput { label } => write!(
                f,
                "operand index label {label} neither contracted nor in the output"
            ),
            ContractError::RankTooLarge => write!(f, "operand rank exceeds MAX_RANK"),
        }
    }
}

impl std::error::Error for ContractError {}

/// How an operand reaches GEMM form. Since permute-on-pack, *every* variant
/// reads the operand in place; the classification now only picks the view
/// construction (and feeds the fold counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandFold {
    /// Stored order is already the GEMM order — use the data in place with
    /// `GemmLayout::NoTrans`.
    Identity,
    /// Stored order is the GEMM order with the free/contracted groups
    /// swapped — the stored matrix is the transpose of the wanted one, so
    /// use the data in place with `GemmLayout::Trans`.
    FoldedTranspose,
    /// General reordering — read through a permuted [`MatView`], folding the
    /// reorder into the GEMM pack traversal (a materialized copy is made
    /// only in `no_fold` ablation runs).
    Permute,
}

/// A precomputed contraction: which axes of each operand are free or
/// contracted, and the permutations bringing the operands into GEMM form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionPlan {
    /// Labels of the output, in output order.
    pub c_labels: Vec<u32>,
    /// Labels of operand A, in A's storage order.
    pub a_labels: Vec<u32>,
    /// Labels of operand B, in B's storage order.
    pub b_labels: Vec<u32>,
    /// Permutation bringing A to `[free_a.., contracted..]` order.
    pub a_perm: Vec<usize>,
    /// Permutation bringing B to `[contracted.., free_b..]` order.
    pub b_perm: Vec<usize>,
    /// Permutation applied to the raw GEMM result `[free_a.., free_b..]` to
    /// reach output label order (`out[d] = raw[out_perm[d]]`).
    pub out_perm: Vec<usize>,
    /// Number of contracted axes.
    pub n_contracted: usize,
    /// How A reaches its `[free_a.., contracted..]` GEMM form.
    pub a_fold: OperandFold,
    /// How B reaches its `[contracted.., free_b..]` GEMM form.
    pub b_fold: OperandFold,
}

/// Classifies a GEMM-form permutation: identity, a pure swap of the two
/// flattened groups (stored = target rotated left by `split`), or general.
fn classify_fold(perm: &[usize], split: usize) -> OperandFold {
    if is_identity_permutation(perm) {
        OperandFold::Identity
    } else if perm
        .iter()
        .enumerate()
        .all(|(d, &p)| p == (d + split) % perm.len())
    {
        OperandFold::FoldedTranspose
    } else {
        OperandFold::Permute
    }
}

impl ContractionPlan {
    /// Infers a plan from the label lists of `C = A * B`.
    ///
    /// Contracted labels are those shared by `A` and `B` and absent from `C`.
    /// Every output label must come from exactly one operand; every
    /// non-contracted input label must appear in the output.
    pub fn infer(
        c_labels: &[u32],
        a_labels: &[u32],
        b_labels: &[u32],
    ) -> Result<Self, ContractError> {
        use crate::shape::MAX_RANK;
        if a_labels.len() > MAX_RANK || b_labels.len() > MAX_RANK || c_labels.len() > MAX_RANK {
            return Err(ContractError::RankTooLarge);
        }
        for labels in [a_labels, b_labels, c_labels] {
            for (i, &l) in labels.iter().enumerate() {
                if labels[..i].contains(&l) {
                    return Err(ContractError::RepeatedLabel { label: l });
                }
            }
        }

        let in_a = |l: u32| a_labels.contains(&l);
        let in_b = |l: u32| b_labels.contains(&l);
        let in_c = |l: u32| c_labels.contains(&l);

        for &l in c_labels {
            if in_a(l) && in_b(l) {
                return Err(ContractError::BatchLabel { label: l });
            }
            if !in_a(l) && !in_b(l) {
                return Err(ContractError::UnboundOutput { label: l });
            }
        }
        // Contracted labels in A's order of appearance (canonical).
        let contracted: Vec<u32> = a_labels
            .iter()
            .copied()
            .filter(|&l| in_b(l) && !in_c(l))
            .collect();
        for &l in a_labels {
            if !in_c(l) && !contracted.contains(&l) {
                return Err(ContractError::DanglingInput { label: l });
            }
        }
        for &l in b_labels {
            if !in_c(l) && !contracted.contains(&l) {
                return Err(ContractError::DanglingInput { label: l });
            }
        }

        // Free labels ordered as they appear in the output, so that the raw
        // GEMM result needs no further permutation when the output is already
        // in (free_a, free_b) order.
        let free_a: Vec<u32> = c_labels.iter().copied().filter(|&l| in_a(l)).collect();
        let free_b: Vec<u32> = c_labels.iter().copied().filter(|&l| in_b(l)).collect();

        let pos = |labels: &[u32], l: u32| labels.iter().position(|&x| x == l).unwrap();

        let a_perm: Vec<usize> = free_a
            .iter()
            .chain(contracted.iter())
            .map(|&l| pos(a_labels, l))
            .collect();
        let b_perm: Vec<usize> = contracted
            .iter()
            .chain(free_b.iter())
            .map(|&l| pos(b_labels, l))
            .collect();

        // Raw result label order is free_a ++ free_b; out_perm maps it to
        // c_labels order.
        let raw: Vec<u32> = free_a.iter().chain(free_b.iter()).copied().collect();
        let out_perm: Vec<usize> = c_labels.iter().map(|&l| pos(&raw, l)).collect();

        let n_contracted = contracted.len();
        let a_fold = classify_fold(&a_perm, n_contracted);
        let b_fold = classify_fold(&b_perm, b_labels.len() - n_contracted);
        Ok(ContractionPlan {
            c_labels: c_labels.to_vec(),
            a_labels: a_labels.to_vec(),
            b_labels: b_labels.to_vec(),
            a_perm,
            b_perm,
            out_perm,
            n_contracted,
            a_fold,
            b_fold,
        })
    }

    /// The shape the output block will have for the given operand shapes.
    pub fn output_shape(&self, a: &Shape, b: &Shape) -> Shape {
        let dim_of = |l: u32| -> usize {
            if let Some(p) = self.a_labels.iter().position(|&x| x == l) {
                a.dim(p)
            } else {
                let p = self.b_labels.iter().position(|&x| x == l).unwrap();
                b.dim(p)
            }
        };
        let dims: Vec<usize> = self.c_labels.iter().map(|&l| dim_of(l)).collect();
        if dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&dims)
        }
    }

    /// Floating-point operations performed by this contraction on blocks of
    /// the given shapes (2·m·n·k, the figure used by the SIP's profiler and
    /// by the trace-driven simulator).
    pub fn flops(&self, a: &Shape, b: &Shape) -> u64 {
        let k: u64 = self.a_perm[self.a_perm.len() - self.n_contracted..]
            .iter()
            .map(|&p| a.dim(p) as u64)
            .product();
        let m: u64 = self.a_perm[..self.a_perm.len() - self.n_contracted]
            .iter()
            .map(|&p| a.dim(p) as u64)
            .product();
        let n: u64 = self.b_perm[self.n_contracted..]
            .iter()
            .map(|&p| b.dim(p) as u64)
            .product();
        2 * m * n * k
    }
}

/// Counters describing how the contraction hot path behaved: copies folded
/// away, copies materialized, and where the scratch for the latter came
/// from. Aggregated per worker into the runtime's unified `Metrics`
/// model (whose `Merge` impl delegates to [`ContractStats::merge`]) and
/// surfaced as the `contract:` section of `--profile`/`--profile-json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContractStats {
    /// Contractions executed.
    pub contractions: u64,
    /// Operand permutes skipped by using the data in place (identity or
    /// transpose-folded into the GEMM layout).
    pub permutes_avoided: u64,
    /// Operand permutes that had to materialize a reordered copy.
    pub permutes_performed: u64,
    /// Scratch buffers served from the block pool's recycled storage.
    pub scratch_pool_hits: u64,
    /// Scratch buffers that required a fresh allocation.
    pub scratch_pool_misses: u64,
    /// Bytes of operand data that were never copied thanks to folding.
    pub bytes_not_copied: u64,
}

impl ContractStats {
    /// Accumulates another worker's counters into this one.
    pub fn merge(&mut self, other: &ContractStats) {
        self.contractions += other.contractions;
        self.permutes_avoided += other.permutes_avoided;
        self.permutes_performed += other.permutes_performed;
        self.scratch_pool_hits += other.scratch_pool_hits;
        self.scratch_pool_misses += other.scratch_pool_misses;
        self.bytes_not_copied += other.bytes_not_copied;
    }
}

/// Counters for the permute-on-pack GEMM stage: how operand reorders were
/// handled and where the packing scratch came from. Surfaced as the `pack:`
/// section of `--profile`/`--profile-json` alongside [`ContractStats`]'s
/// `contract:` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Operand permutations folded into the pack traversal (no copy).
    pub permutes_folded: u64,
    /// Operand permutations materialized as a reordered copy before the
    /// GEMM (only the `no_fold` ablation path does this now).
    pub permutes_materialized: u64,
    /// Logical operand bytes routed through the pack stage: `(m·k + k·n) ·
    /// 8` per contraction, independent of cache-block repacking.
    pub packed_bytes: u64,
    /// Pack panels served from the block pool's recycled storage.
    pub pack_pool_hits: u64,
    /// Pack panels that required a fresh allocation (pool cold or absent).
    pub pack_pool_misses: u64,
}

impl PackStats {
    /// Accumulates another worker's counters into this one.
    pub fn merge(&mut self, other: &PackStats) {
        self.permutes_folded += other.permutes_folded;
        self.permutes_materialized += other.permutes_materialized;
        self.packed_bytes += other.packed_bytes;
        self.pack_pool_hits += other.pack_pool_hits;
        self.pack_pool_misses += other.pack_pool_misses;
    }
}

/// Execution context for contractions: where scratch comes from, how the
/// GEMM runs, and whether layout folding is enabled. One lives per SIP
/// worker (sharing the worker's block pool); a default context gives the
/// standalone `contract`/`contract_into` entry points sane behavior.
#[derive(Debug, Clone, Default)]
pub struct ContractCtx {
    pool: Option<BlockPool>,
    /// GEMM tuning (thread count) used for every contraction in this ctx.
    pub gemm: GemmConfig,
    /// When false, operands are always materialized in GEMM order — the
    /// pre-folding behavior, kept for ablation runs.
    pub no_fold: bool,
    /// Running counters; reset with [`ContractCtx::take_stats`].
    pub stats: ContractStats,
    /// Permute-on-pack counters; reset with [`ContractCtx::take_pack_stats`].
    pub pack: PackStats,
}

impl ContractCtx {
    /// A context with no pool (scratch is plainly allocated) and folding on.
    pub fn new() -> Self {
        ContractCtx::default()
    }

    /// A context drawing scratch from `pool`.
    pub fn with_pool(pool: BlockPool) -> Self {
        ContractCtx {
            pool: Some(pool),
            ..ContractCtx::default()
        }
    }

    /// Sets the GEMM tuning (builder style).
    pub fn gemm(mut self, cfg: GemmConfig) -> Self {
        self.gemm = cfg;
        self
    }

    /// Disables transpose folding (builder style, for ablations).
    pub fn fold_transposes(mut self, on: bool) -> Self {
        self.no_fold = !on;
        self
    }

    /// Returns the counters accumulated so far and resets them.
    pub fn take_stats(&mut self) -> ContractStats {
        std::mem::take(&mut self.stats)
    }

    /// Returns the pack counters accumulated so far and resets them.
    pub fn take_pack_stats(&mut self) -> PackStats {
        std::mem::take(&mut self.pack)
    }

    /// Acquires zeroed scratch of `shape`, recycled from the pool when one
    /// is attached and has parked storage of that size class.
    fn scratch(&mut self, shape: Shape) -> Block {
        if let Some(pool) = &self.pool {
            let hits_before = pool.stats().hits;
            if let Ok(blk) = pool.acquire_raw(shape) {
                if pool.stats().hits > hits_before {
                    self.stats.scratch_pool_hits += 1;
                } else {
                    self.stats.scratch_pool_misses += 1;
                }
                return blk;
            }
            // Pool budget exhausted: fall through to a plain allocation
            // rather than failing the contraction.
        }
        self.stats.scratch_pool_misses += 1;
        Block::zeros(shape)
    }

    /// Returns scratch storage for reuse by later contractions.
    fn free(&mut self, blk: Block) {
        if let Some(pool) = &self.pool {
            pool.release(blk);
        }
    }

    /// Draws the two GEMM pack panels from the pool (stale contents allowed:
    /// packing overwrites or zero-pads everything the kernel reads). `None`
    /// when no pool is attached or its budget is exhausted — the GEMM then
    /// falls back to local allocations.
    fn acquire_pack_bufs(&mut self, a_elems: usize, b_elems: usize) -> Option<(Block, Block)> {
        let pool = self.pool.clone()?;
        let get = |pack: &mut PackStats, elems: usize| -> Option<Block> {
            let hits_before = pool.stats().hits;
            match pool.acquire_scratch(Shape::new(&[elems])) {
                Ok(blk) => {
                    if pool.stats().hits > hits_before {
                        pack.pack_pool_hits += 1;
                    } else {
                        pack.pack_pool_misses += 1;
                    }
                    Some(blk)
                }
                Err(_) => {
                    pack.pack_pool_misses += 1;
                    None
                }
            }
        };
        let a = get(&mut self.pack, a_elems)?;
        match get(&mut self.pack, b_elems) {
            Some(b) => Some((a, b)),
            None => {
                pool.release(a);
                None
            }
        }
    }
}

/// `C = A * B` under `plan`. Allocates the output block.
pub fn contract(plan: &ContractionPlan, a: &Block, b: &Block) -> Block {
    let mut c = Block::zeros(plan.output_shape(a.shape(), b.shape()));
    contract_into(plan, a, b, 0.0, &mut c);
    c
}

/// `C = alpha_c * C + A * B` under `plan` with a throwaway default context
/// (folding on, no pool, single-threaded GEMM). See [`contract_into_ctx`].
pub fn contract_into(plan: &ContractionPlan, a: &Block, b: &Block, alpha_c: f64, c: &mut Block) {
    contract_into_ctx(&mut ContractCtx::new(), plan, a, b, alpha_c, c);
}

/// `C = alpha_c * C + A * B` under `plan` (`alpha_c = 1.0` implements the
/// fused contraction-accumulate of SIAL's `+=`).
///
/// The hot path: each operand is classified (see [`OperandFold`]) and read
/// *in place* through a [`MatView`] — plain for `Identity`, transposed for
/// `FoldedTranspose`, and a strided permuted view for `Permute`, whose
/// reorder then folds into the GEMM's pack traversal instead of
/// materializing a reordered copy (only `no_fold` ablation contexts still
/// materialize). The GEMM's pack panels are drawn from the context's block
/// pool when one is attached. When the output needs no reordering the GEMM
/// writes straight into `C` (including the `alpha_c` accumulate, via GEMM's
/// beta).
///
/// # Panics
/// Panics if block shapes are inconsistent with the plan.
pub fn contract_into_ctx(
    ctx: &mut ContractCtx,
    plan: &ContractionPlan,
    a: &Block,
    b: &Block,
    alpha_c: f64,
    c: &mut Block,
) {
    assert_eq!(a.shape().rank(), plan.a_labels.len(), "A rank mismatch");
    assert_eq!(b.shape().rank(), plan.b_labels.len(), "B rank mismatch");
    let expect = plan.output_shape(a.shape(), b.shape());
    assert_eq!(*c.shape(), expect, "C shape mismatch");
    ctx.stats.contractions += 1;

    let nc = plan.n_contracted;
    let nf_a = plan.a_perm.len() - nc;
    let m: usize = plan.a_perm[..nf_a]
        .iter()
        .map(|&p| a.shape().dim(p))
        .product();
    let k: usize = plan.a_perm[nf_a..]
        .iter()
        .map(|&p| a.shape().dim(p))
        .product();
    let n: usize = plan.b_perm[nc..]
        .iter()
        .map(|&p| b.shape().dim(p))
        .product();

    // Bring each operand into GEMM form. `prepare_operand` materializes a
    // permuted copy only in `no_fold` ablation mode; otherwise the operand
    // is read in place and any reorder is carried by the view below.
    let a_scratch = prepare_operand(ctx, a, &plan.a_perm, plan.a_fold);
    let b_scratch = prepare_operand(ctx, b, &plan.b_perm, plan.b_fold);
    let (a_eff, a_fold) = match &a_scratch {
        Some(s) => (s, OperandFold::Identity),
        None => (a, plan.a_fold),
    };
    let (b_eff, b_fold) = match &b_scratch {
        Some(s) => (s, OperandFold::Identity),
        None => (b, plan.b_fold),
    };
    let a_view = match a_fold {
        OperandFold::Identity => MatView::from_matrix(a_eff.data(), m, k, GemmLayout::NoTrans),
        OperandFold::FoldedTranspose => MatView::from_matrix(a_eff.data(), m, k, GemmLayout::Trans),
        OperandFold::Permute => MatView::permuted(a_eff.data(), a_eff.shape(), &plan.a_perm, nf_a),
    };
    let b_view = match b_fold {
        OperandFold::Identity => MatView::from_matrix(b_eff.data(), k, n, GemmLayout::NoTrans),
        OperandFold::FoldedTranspose => MatView::from_matrix(b_eff.data(), k, n, GemmLayout::Trans),
        OperandFold::Permute => MatView::permuted(b_eff.data(), b_eff.shape(), &plan.b_perm, nc),
    };

    // Route the GEMM's pack panels through the pool so steady-state
    // contractions allocate nothing.
    ctx.pack.packed_bytes += ((m * k + k * n) * std::mem::size_of::<f64>()) as u64;
    let (a_elems, b_elems) = pack_buf_elems(&ctx.gemm, m, n, k);
    let mut pack_bufs = ctx.acquire_pack_bufs(a_elems, b_elems);
    let bufs = pack_bufs.as_mut().map(|(ab, bb)| PackBufs {
        apack: ab.data_mut(),
        bpack: bb.data_mut(),
    });

    if is_identity_permutation(&plan.out_perm) {
        // GEMM straight into C's storage.
        dgemm_view(ctx.gemm, 1.0, &a_view, &b_view, alpha_c, c.data_mut(), bufs);
    } else {
        // GEMM to a raw (free_a, free_b) scratch buffer, permute into place.
        let raw_dims: Vec<usize> = plan.a_perm[..nf_a]
            .iter()
            .map(|&p| a.shape().dim(p))
            .chain(plan.b_perm[nc..].iter().map(|&p| b.shape().dim(p)))
            .collect();
        let raw_shape = if raw_dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&raw_dims)
        };
        let mut raw = ctx.scratch(raw_shape);
        dgemm_view(ctx.gemm, 1.0, &a_view, &b_view, 0.0, raw.data_mut(), bufs);
        if alpha_c == 0.0 {
            permute_into(&raw, &plan.out_perm, c.data_mut());
        } else {
            let mut permuted = ctx.scratch(*c.shape());
            permute_into(&raw, &plan.out_perm, permuted.data_mut());
            if alpha_c != 1.0 {
                c.scale(alpha_c);
            }
            c.accumulate(&permuted);
            ctx.free(permuted);
        }
        ctx.free(raw);
    }

    if let Some((ab, bb)) = pack_bufs {
        ctx.free(ab);
        ctx.free(bb);
    }
    if let Some(s) = a_scratch {
        ctx.free(s);
    }
    if let Some(s) = b_scratch {
        ctx.free(s);
    }
}

/// Accounts one operand's fold and, in `no_fold` ablation mode only,
/// materializes the permuted copy the seed runtime used to make.
fn prepare_operand(
    ctx: &mut ContractCtx,
    op: &Block,
    perm: &[usize],
    fold: OperandFold,
) -> Option<Block> {
    if !ctx.no_fold {
        match fold {
            OperandFold::Identity | OperandFold::FoldedTranspose => {
                ctx.stats.permutes_avoided += 1;
                ctx.stats.bytes_not_copied += (op.len() * std::mem::size_of::<f64>()) as u64;
            }
            OperandFold::Permute => {
                // The reorder rides along with the pack traversal: no copy,
                // no scratch, no extra memory sweep.
                ctx.pack.permutes_folded += 1;
            }
        }
        return None;
    }
    ctx.stats.permutes_performed += 1;
    ctx.pack.permutes_materialized += 1;
    let mut scratch = ctx.scratch(op.shape().permuted(perm));
    permute_into(op, perm, scratch.data_mut());
    Some(scratch)
}

/// Reference contraction by explicit index summation. O(output · contracted)
/// per element — used to validate [`contract`] in unit and property tests.
pub fn naive_contract(plan: &ContractionPlan, a: &Block, b: &Block) -> Block {
    let out_shape = plan.output_shape(a.shape(), b.shape());
    let contracted: Vec<u32> = plan.a_perm[plan.a_perm.len() - plan.n_contracted..]
        .iter()
        .map(|&p| plan.a_labels[p])
        .collect();
    let contracted_dims: Vec<usize> = contracted
        .iter()
        .map(|&l| {
            let p = plan.a_labels.iter().position(|&x| x == l).unwrap();
            a.shape().dim(p)
        })
        .collect();
    let sum_shape = if contracted_dims.is_empty() {
        Shape::scalar()
    } else {
        Shape::new(&contracted_dims)
    };

    let value_of = |labels: &[u32], blk: &Block, env: &dyn Fn(u32) -> usize| -> f64 {
        let idx: Vec<usize> = labels.iter().map(|&l| env(l)).collect();
        blk.get(&idx)
    };

    Block::from_fn(out_shape, |out_idx| {
        let mut total = 0.0;
        for s_idx in sum_shape.indices() {
            let env = |l: u32| -> usize {
                if let Some(p) = plan.c_labels.iter().position(|&x| x == l) {
                    out_idx[p]
                } else {
                    let p = contracted.iter().position(|&x| x == l).unwrap();
                    s_idx[p]
                }
            };
            total += value_of(&plan.a_labels, a, &env) * value_of(&plan.b_labels, b, &env);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(shape: Shape, salt: f64) -> Block {
        let mut v = salt;
        Block::from_fn(shape, |_| {
            v = (v * 1.3 + 0.7) % 5.0 - 2.0;
            v
        })
    }

    fn check(c: &[u32], al: &[u32], bl: &[u32], ash: &[usize], bsh: &[usize]) {
        let plan = ContractionPlan::infer(c, al, bl).unwrap();
        let a = ramp(Shape::new(ash), 0.3);
        let b = ramp(Shape::new(bsh), 1.1);
        let fast = contract(&plan, &a, &b);
        let slow = naive_contract(&plan, &a, &b);
        assert!(
            fast.approx_eq(&slow, 1e-9),
            "mismatch for c={c:?} a={al:?} b={bl:?}"
        );
    }

    #[test]
    fn matrix_multiply() {
        check(&[0, 2], &[0, 1], &[1, 2], &[4, 5], &[5, 3]);
    }

    #[test]
    fn paper_equation_2() {
        // R(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J); labels: M=0 N=1 I=2 J=3 L=4 S=5
        check(
            &[0, 1, 2, 3],
            &[0, 1, 4, 5],
            &[4, 5, 2, 3],
            &[3, 4, 2, 3],
            &[2, 3, 3, 2],
        );
    }

    #[test]
    fn contraction_needing_output_permute() {
        // C(I,M) = A(M,L) * B(L,I): output order interleaves the operands.
        check(&[2, 0], &[0, 1], &[1, 2], &[4, 5], &[5, 3]);
    }

    #[test]
    fn inner_indices_scattered() {
        // Contraction indices not adjacent in either operand.
        check(&[0, 3], &[0, 1, 2], &[2, 3, 1], &[3, 4, 5], &[5, 2, 4]);
    }

    #[test]
    fn full_contraction_to_scalar() {
        let plan = ContractionPlan::infer(&[], &[0, 1], &[0, 1]).unwrap();
        let a = ramp(Shape::new(&[3, 4]), 0.2);
        let b = ramp(Shape::new(&[3, 4]), 0.9);
        let c = contract(&plan, &a, &b);
        assert!((c.as_scalar() - a.dot(&b)).abs() < 1e-9);
    }

    #[test]
    fn outer_product() {
        check(&[0, 1], &[0], &[1], &[4], &[3]);
    }

    #[test]
    fn matvec() {
        check(&[0], &[0, 1], &[1], &[4, 6], &[6]);
    }

    #[test]
    fn six_dim_intermediate() {
        // A(a,b,c,k) * B(k,l,m) -> C(a,b,c,l,m): the paper's §IV-E scenario.
        check(
            &[0, 1, 2, 5, 6],
            &[0, 1, 2, 4],
            &[4, 5, 6],
            &[2, 3, 2, 4],
            &[4, 3, 2],
        );
    }

    #[test]
    fn accumulate_into_existing() {
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        let a = ramp(Shape::new(&[3, 4]), 0.5);
        let b = ramp(Shape::new(&[4, 2]), 1.5);
        let mut c = Block::filled(Shape::new(&[3, 2]), 2.0);
        contract_into(&plan, &a, &b, 1.0, &mut c);
        let mut expect = contract(&plan, &a, &b);
        expect.accumulate(&Block::filled(Shape::new(&[3, 2]), 2.0));
        assert!(c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn flops_formula() {
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        assert_eq!(
            plan.flops(&Shape::new(&[4, 5]), &Shape::new(&[5, 3])),
            2 * 4 * 3 * 5
        );
    }

    #[test]
    fn fold_classification() {
        // C(M,N) = A(L,M) * B(L,N): A is stored [contracted, free] → folded
        // transpose; B is stored [contracted, free] → identity for B's form.
        let plan = ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap();
        assert_eq!(plan.a_fold, OperandFold::FoldedTranspose);
        assert_eq!(plan.b_fold, OperandFold::Identity);

        // C(M,N) = A(M,L) * B(L,N): both already in GEMM order.
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        assert_eq!(plan.a_fold, OperandFold::Identity);
        assert_eq!(plan.b_fold, OperandFold::Identity);

        // C(M,N) = A(M,L) * B(N,L): B stored [free, contracted] → folded.
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[2, 1]).unwrap();
        assert_eq!(plan.a_fold, OperandFold::Identity);
        assert_eq!(plan.b_fold, OperandFold::FoldedTranspose);

        // Rank-4 group swap: A(L,S,M,N) with C(M,N,..) contracting L,S.
        let plan = ContractionPlan::infer(&[2, 3, 4], &[0, 1, 2, 3], &[0, 1, 4]).unwrap();
        assert_eq!(plan.a_fold, OperandFold::FoldedTranspose);

        // Interleaved axes can't fold: B stores the contracted label in the
        // middle of its free labels.
        let plan = ContractionPlan::infer(&[1, 2, 3], &[0, 1], &[2, 0, 3]).unwrap();
        assert_eq!(plan.b_fold, OperandFold::Permute);
    }

    #[test]
    fn folded_paths_match_naive() {
        // Every fold combination, checked against the reference.
        for (c, al, bl, ash, bsh) in [
            // A folded-transpose, B identity.
            (
                vec![1u32, 2],
                vec![0u32, 1],
                vec![0u32, 2],
                vec![5usize, 4],
                vec![5usize, 3],
            ),
            // A identity, B folded-transpose.
            (vec![0, 2], vec![0, 1], vec![2, 1], vec![4, 5], vec![3, 5]),
            // Both folded.
            (vec![1, 2], vec![0, 1], vec![2, 0], vec![5, 4], vec![3, 5]),
            // Rank-4 grouped fold (paper's eq. 2 shape).
            (
                vec![0, 1, 2, 3],
                vec![4, 5, 0, 1],
                vec![4, 5, 2, 3],
                vec![2, 3, 3, 4],
                vec![2, 3, 3, 2],
            ),
        ] {
            check(&c, &al, &bl, &ash, &bsh);
        }
    }

    #[test]
    fn ctx_counts_folds_and_disables() {
        let plan = ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap();
        let a = ramp(Shape::new(&[5, 4]), 0.4);
        let b = ramp(Shape::new(&[5, 3]), 1.2);
        let mut c = Block::zeros(Shape::new(&[4, 3]));

        let mut ctx = ContractCtx::new();
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        assert_eq!(ctx.stats.contractions, 1);
        assert_eq!(ctx.stats.permutes_avoided, 2);
        assert_eq!(ctx.stats.permutes_performed, 0);
        assert_eq!(ctx.stats.bytes_not_copied, ((5 * 4 + 5 * 3) * 8) as u64);
        let folded = c.clone();

        // Folding off: same numbers, two materialized permutes.
        let mut ctx = ContractCtx::new().fold_transposes(false);
        let mut c2 = Block::zeros(Shape::new(&[4, 3]));
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c2);
        assert_eq!(ctx.stats.permutes_avoided, 0);
        assert_eq!(ctx.stats.permutes_performed, 2);
        assert!(folded.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn ctx_scratch_reuses_pool() {
        use crate::pool::{BlockPool, PoolConfig};
        // A plan forcing materialized scratch: B must permute, and the
        // output needs a reorder, so scratch is drawn repeatedly.
        let plan = ContractionPlan::infer(&[2, 0], &[0, 1], &[1, 2]).unwrap();
        let a = ramp(Shape::new(&[4, 5]), 0.3);
        let b = ramp(Shape::new(&[5, 3]), 1.1);
        let pool = BlockPool::new(PoolConfig::default());
        let mut ctx = ContractCtx::with_pool(pool);
        let mut c = Block::zeros(Shape::new(&[3, 4]));
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        let first = ctx.stats;
        assert!(first.scratch_pool_misses > 0, "first run allocates");
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        let second = ctx.stats;
        assert_eq!(
            second.scratch_pool_misses, first.scratch_pool_misses,
            "second run allocates nothing new"
        );
        assert!(second.scratch_pool_hits > first.scratch_pool_hits);
        assert!(c.approx_eq(&naive_contract(&plan, &a, &b), 1e-9));
    }

    #[test]
    fn interleaved_permute_folds_into_pack_with_zero_scratch() {
        use crate::pool::{BlockPool, PoolConfig};
        // C(M,N) = A(M,L,S) * B(L,N,S): B's contracted labels straddle its
        // free one, so the planner classifies B as Permute — the case the
        // seed runtime materialized. With folding on it must now run with
        // ZERO permute scratch: no materialized copy, no ctx scratch draw.
        let plan = ContractionPlan::infer(&[0, 1], &[0, 8, 9], &[8, 1, 9]).unwrap();
        assert_eq!(plan.a_fold, OperandFold::Identity);
        assert_eq!(plan.b_fold, OperandFold::Permute);
        let a = ramp(Shape::new(&[4, 3, 5]), 0.3);
        let b = ramp(Shape::new(&[3, 6, 5]), 1.1);
        let pool = BlockPool::new(PoolConfig::default());
        let mut ctx = ContractCtx::with_pool(pool);
        let mut c = Block::zeros(Shape::new(&[4, 6]));
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&naive_contract(&plan, &a, &b), 1e-9));

        assert_eq!(ctx.pack.permutes_folded, 1);
        assert_eq!(ctx.pack.permutes_materialized, 0);
        assert_eq!(ctx.stats.permutes_performed, 0, "no materialized permute");
        assert_eq!(
            ctx.stats.scratch_pool_hits + ctx.stats.scratch_pool_misses,
            0,
            "no permute scratch drawn at all"
        );
        // m=4, k=15, n=6.
        assert_eq!(ctx.pack.packed_bytes, ((4 * 15 + 15 * 6) * 8) as u64);
        // The only pool traffic is the two pack panels, recycled on reuse.
        assert_eq!(ctx.pack.pack_pool_misses, 2);
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut c);
        assert_eq!(ctx.pack.pack_pool_misses, 2, "panels recycled");
        assert_eq!(ctx.pack.pack_pool_hits, 2);
    }

    #[test]
    fn fold_and_materialize_agree_bitwise() {
        // The folded view feeds the same packed panels to the same kernel
        // as packing a materialized permute, so results must be identical
        // bit for bit — not merely within tolerance.
        let plan = ContractionPlan::infer(&[0, 1], &[0, 8, 9], &[8, 1, 9]).unwrap();
        let a = ramp(Shape::new(&[4, 3, 5]), 0.7);
        let b = ramp(Shape::new(&[3, 6, 5]), 1.9);
        let mut fold = Block::zeros(Shape::new(&[4, 6]));
        let mut ctx = ContractCtx::new();
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut fold);
        let mut mat = Block::zeros(Shape::new(&[4, 6]));
        let mut ctx = ContractCtx::new().fold_transposes(false);
        contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut mat);
        assert_eq!(ctx.pack.permutes_materialized, 2);
        assert_eq!(fold.data(), mat.data());
    }

    #[test]
    fn ctx_accumulate_with_output_permute() {
        let plan = ContractionPlan::infer(&[2, 0], &[0, 1], &[1, 2]).unwrap();
        let a = ramp(Shape::new(&[4, 5]), 0.5);
        let b = ramp(Shape::new(&[5, 3]), 1.5);
        let base = ramp(Shape::new(&[3, 4]), 2.0);
        let mut c = base.clone();
        let mut ctx = ContractCtx::new();
        contract_into_ctx(&mut ctx, &plan, &a, &b, 1.0, &mut c);
        let mut expect = naive_contract(&plan, &a, &b);
        expect.accumulate(&base);
        assert!(c.approx_eq(&expect, 1e-9));

        // And with a scaling alpha_c.
        let mut c = base.clone();
        contract_into_ctx(&mut ctx, &plan, &a, &b, -0.5, &mut c);
        let mut expect = naive_contract(&plan, &a, &b);
        expect.axpy(-0.5, &base);
        assert!(c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn errors() {
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 0], &[1]).unwrap_err(),
            ContractError::RepeatedLabel { label: 0 }
        );
        assert_eq!(
            ContractionPlan::infer(&[9], &[0, 1], &[1, 0]).unwrap_err(),
            ContractError::UnboundOutput { label: 9 }
        );
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 1], &[0, 1]).unwrap_err(),
            ContractError::BatchLabel { label: 0 }
        );
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 1], &[2]).unwrap_err(),
            ContractError::DanglingInput { label: 1 }
        );
    }
}
