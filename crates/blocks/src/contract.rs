//! Block contraction — the SIA's central super instruction.
//!
//! A SIAL statement `C(M,N,I,J) = A(M,N,L,S) * B(L,S,I,J)` contracts two
//! blocks over their shared index variables. Per the paper (§III, footnote 3),
//! the contraction sums over indices common to `A` and `B` wherever they
//! appear, and is "typically implemented by permuting one of the arrays and
//! then applying a DGEMM" — exactly what [`contract`] does.
//!
//! Index variables are identified by opaque `u32` labels (the compiler uses
//! its index-table ids). [`ContractionPlan::infer`] classifies each label as
//! a left-free, right-free, or contracted index and precomputes the operand
//! permutations, so the plan can be cached per static occurrence of a `*` in
//! the bytecode and reused for every block the loop touches.

use crate::block::Block;
use crate::gemm::{dgemm, GemmLayout};
use crate::permute::{is_identity_permutation, permute};
use crate::shape::Shape;
use std::fmt;

/// Errors from planning a contraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// A label occurs more than once within a single operand (traces are not
    /// SIAL contractions; ACES III uses a dedicated super instruction).
    RepeatedLabel { label: u32 },
    /// An output label does not occur in either input.
    UnboundOutput { label: u32 },
    /// A label occurs in both inputs *and* the output (a batch index, which
    /// SIAL's `*` does not define).
    BatchLabel { label: u32 },
    /// An input label that is not contracted is missing from the output.
    DanglingInput { label: u32 },
    /// Operand rank exceeds [`crate::MAX_RANK`].
    RankTooLarge,
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::RepeatedLabel { label } => {
                write!(f, "index label {label} repeated within one operand")
            }
            ContractError::UnboundOutput { label } => {
                write!(f, "output index label {label} not present in either operand")
            }
            ContractError::BatchLabel { label } => write!(
                f,
                "index label {label} appears in both operands and the output"
            ),
            ContractError::DanglingInput { label } => write!(
                f,
                "operand index label {label} neither contracted nor in the output"
            ),
            ContractError::RankTooLarge => write!(f, "operand rank exceeds MAX_RANK"),
        }
    }
}

impl std::error::Error for ContractError {}

/// A precomputed contraction: which axes of each operand are free or
/// contracted, and the permutations bringing the operands into GEMM form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionPlan {
    /// Labels of the output, in output order.
    pub c_labels: Vec<u32>,
    /// Labels of operand A, in A's storage order.
    pub a_labels: Vec<u32>,
    /// Labels of operand B, in B's storage order.
    pub b_labels: Vec<u32>,
    /// Permutation bringing A to `[free_a.., contracted..]` order.
    pub a_perm: Vec<usize>,
    /// Permutation bringing B to `[contracted.., free_b..]` order.
    pub b_perm: Vec<usize>,
    /// Permutation applied to the raw GEMM result `[free_a.., free_b..]` to
    /// reach output label order (`out[d] = raw[out_perm[d]]`).
    pub out_perm: Vec<usize>,
    /// Number of contracted axes.
    pub n_contracted: usize,
}

impl ContractionPlan {
    /// Infers a plan from the label lists of `C = A * B`.
    ///
    /// Contracted labels are those shared by `A` and `B` and absent from `C`.
    /// Every output label must come from exactly one operand; every
    /// non-contracted input label must appear in the output.
    pub fn infer(c_labels: &[u32], a_labels: &[u32], b_labels: &[u32]) -> Result<Self, ContractError> {
        use crate::shape::MAX_RANK;
        if a_labels.len() > MAX_RANK || b_labels.len() > MAX_RANK || c_labels.len() > MAX_RANK {
            return Err(ContractError::RankTooLarge);
        }
        for labels in [a_labels, b_labels, c_labels] {
            for (i, &l) in labels.iter().enumerate() {
                if labels[..i].contains(&l) {
                    return Err(ContractError::RepeatedLabel { label: l });
                }
            }
        }

        let in_a = |l: u32| a_labels.contains(&l);
        let in_b = |l: u32| b_labels.contains(&l);
        let in_c = |l: u32| c_labels.contains(&l);

        for &l in c_labels {
            if in_a(l) && in_b(l) {
                return Err(ContractError::BatchLabel { label: l });
            }
            if !in_a(l) && !in_b(l) {
                return Err(ContractError::UnboundOutput { label: l });
            }
        }
        // Contracted labels in A's order of appearance (canonical).
        let contracted: Vec<u32> = a_labels
            .iter()
            .copied()
            .filter(|&l| in_b(l) && !in_c(l))
            .collect();
        for &l in a_labels {
            if !in_c(l) && !contracted.contains(&l) {
                return Err(ContractError::DanglingInput { label: l });
            }
        }
        for &l in b_labels {
            if !in_c(l) && !contracted.contains(&l) {
                return Err(ContractError::DanglingInput { label: l });
            }
        }

        // Free labels ordered as they appear in the output, so that the raw
        // GEMM result needs no further permutation when the output is already
        // in (free_a, free_b) order.
        let free_a: Vec<u32> = c_labels.iter().copied().filter(|&l| in_a(l)).collect();
        let free_b: Vec<u32> = c_labels.iter().copied().filter(|&l| in_b(l)).collect();

        let pos = |labels: &[u32], l: u32| labels.iter().position(|&x| x == l).unwrap();

        let a_perm: Vec<usize> = free_a
            .iter()
            .chain(contracted.iter())
            .map(|&l| pos(a_labels, l))
            .collect();
        let b_perm: Vec<usize> = contracted
            .iter()
            .chain(free_b.iter())
            .map(|&l| pos(b_labels, l))
            .collect();

        // Raw result label order is free_a ++ free_b; out_perm maps it to
        // c_labels order.
        let raw: Vec<u32> = free_a.iter().chain(free_b.iter()).copied().collect();
        let out_perm: Vec<usize> = c_labels.iter().map(|&l| pos(&raw, l)).collect();

        Ok(ContractionPlan {
            c_labels: c_labels.to_vec(),
            a_labels: a_labels.to_vec(),
            b_labels: b_labels.to_vec(),
            a_perm,
            b_perm,
            out_perm,
            n_contracted: contracted.len(),
        })
    }

    /// The shape the output block will have for the given operand shapes.
    pub fn output_shape(&self, a: &Shape, b: &Shape) -> Shape {
        let dim_of = |l: u32| -> usize {
            if let Some(p) = self.a_labels.iter().position(|&x| x == l) {
                a.dim(p)
            } else {
                let p = self.b_labels.iter().position(|&x| x == l).unwrap();
                b.dim(p)
            }
        };
        let dims: Vec<usize> = self.c_labels.iter().map(|&l| dim_of(l)).collect();
        if dims.is_empty() {
            Shape::scalar()
        } else {
            Shape::new(&dims)
        }
    }

    /// Floating-point operations performed by this contraction on blocks of
    /// the given shapes (2·m·n·k, the figure used by the SIP's profiler and
    /// by the trace-driven simulator).
    pub fn flops(&self, a: &Shape, b: &Shape) -> u64 {
        let k: u64 = self.a_perm[self.a_perm.len() - self.n_contracted..]
            .iter()
            .map(|&p| a.dim(p) as u64)
            .product();
        let m: u64 = self.a_perm[..self.a_perm.len() - self.n_contracted]
            .iter()
            .map(|&p| a.dim(p) as u64)
            .product();
        let n: u64 = self.b_perm[self.n_contracted..]
            .iter()
            .map(|&p| b.dim(p) as u64)
            .product();
        2 * m * n * k
    }
}

/// `C = A * B` under `plan`. Allocates the output block.
pub fn contract(plan: &ContractionPlan, a: &Block, b: &Block) -> Block {
    let mut c = Block::zeros(plan.output_shape(a.shape(), b.shape()));
    contract_into(plan, a, b, 0.0, &mut c);
    c
}

/// `C = alpha_c * C + A * B` under `plan` (`alpha_c = 1.0` implements the
/// fused contraction-accumulate of SIAL's `+=`).
///
/// # Panics
/// Panics if block shapes are inconsistent with the plan.
pub fn contract_into(plan: &ContractionPlan, a: &Block, b: &Block, alpha_c: f64, c: &mut Block) {
    assert_eq!(a.shape().rank(), plan.a_labels.len(), "A rank mismatch");
    assert_eq!(b.shape().rank(), plan.b_labels.len(), "B rank mismatch");
    let expect = plan.output_shape(a.shape(), b.shape());
    assert_eq!(*c.shape(), expect, "C shape mismatch");

    let nc = plan.n_contracted;
    let a_p = permute(a, &plan.a_perm);
    let b_p = permute(b, &plan.b_perm);

    let m: usize = a_p.shape().dims()[..a_p.shape().rank() - nc]
        .iter()
        .map(|&d| d as usize)
        .product();
    let k: usize = a_p.shape().dims()[a_p.shape().rank() - nc..]
        .iter()
        .map(|&d| d as usize)
        .product();
    let n: usize = b_p.shape().dims()[nc..].iter().map(|&d| d as usize).product();

    if is_identity_permutation(&plan.out_perm) {
        // GEMM straight into C's storage.
        dgemm(
            m,
            n,
            k,
            1.0,
            a_p.data(),
            GemmLayout::NoTrans,
            b_p.data(),
            GemmLayout::NoTrans,
            alpha_c,
            c.data_mut(),
        );
    } else {
        // GEMM to a raw (free_a, free_b) buffer, permute into place.
        let raw_shape = {
            let mut dims: Vec<usize> = a_p.shape().dims()[..a_p.shape().rank() - nc]
                .iter()
                .map(|&d| d as usize)
                .collect();
            dims.extend(b_p.shape().dims()[nc..].iter().map(|&d| d as usize));
            if dims.is_empty() {
                Shape::scalar()
            } else {
                Shape::new(&dims)
            }
        };
        let mut raw = Block::zeros(raw_shape);
        dgemm(
            m,
            n,
            k,
            1.0,
            a_p.data(),
            GemmLayout::NoTrans,
            b_p.data(),
            GemmLayout::NoTrans,
            0.0,
            raw.data_mut(),
        );
        let permuted = permute(&raw, &plan.out_perm);
        if alpha_c == 0.0 {
            *c = permuted;
        } else {
            if alpha_c != 1.0 {
                c.scale(alpha_c);
            }
            c.accumulate(&permuted);
        }
    }
}

/// Reference contraction by explicit index summation. O(output · contracted)
/// per element — used to validate [`contract`] in unit and property tests.
pub fn naive_contract(plan: &ContractionPlan, a: &Block, b: &Block) -> Block {
    let out_shape = plan.output_shape(a.shape(), b.shape());
    let contracted: Vec<u32> = plan.a_perm[plan.a_perm.len() - plan.n_contracted..]
        .iter()
        .map(|&p| plan.a_labels[p])
        .collect();
    let contracted_dims: Vec<usize> = contracted
        .iter()
        .map(|&l| {
            let p = plan.a_labels.iter().position(|&x| x == l).unwrap();
            a.shape().dim(p)
        })
        .collect();
    let sum_shape = if contracted_dims.is_empty() {
        Shape::scalar()
    } else {
        Shape::new(&contracted_dims)
    };

    let value_of = |labels: &[u32], blk: &Block, env: &dyn Fn(u32) -> usize| -> f64 {
        let idx: Vec<usize> = labels.iter().map(|&l| env(l)).collect();
        blk.get(&idx)
    };

    Block::from_fn(out_shape, |out_idx| {
        let mut total = 0.0;
        for s_idx in sum_shape.indices() {
            let env = |l: u32| -> usize {
                if let Some(p) = plan.c_labels.iter().position(|&x| x == l) {
                    out_idx[p]
                } else {
                    let p = contracted.iter().position(|&x| x == l).unwrap();
                    s_idx[p]
                }
            };
            total += value_of(&plan.a_labels, a, &env) * value_of(&plan.b_labels, b, &env);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(shape: Shape, salt: f64) -> Block {
        let mut v = salt;
        Block::from_fn(shape, |_| {
            v = (v * 1.3 + 0.7) % 5.0 - 2.0;
            v
        })
    }

    fn check(c: &[u32], al: &[u32], bl: &[u32], ash: &[usize], bsh: &[usize]) {
        let plan = ContractionPlan::infer(c, al, bl).unwrap();
        let a = ramp(Shape::new(ash), 0.3);
        let b = ramp(Shape::new(bsh), 1.1);
        let fast = contract(&plan, &a, &b);
        let slow = naive_contract(&plan, &a, &b);
        assert!(
            fast.approx_eq(&slow, 1e-9),
            "mismatch for c={c:?} a={al:?} b={bl:?}"
        );
    }

    #[test]
    fn matrix_multiply() {
        check(&[0, 2], &[0, 1], &[1, 2], &[4, 5], &[5, 3]);
    }

    #[test]
    fn paper_equation_2() {
        // R(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J); labels: M=0 N=1 I=2 J=3 L=4 S=5
        check(
            &[0, 1, 2, 3],
            &[0, 1, 4, 5],
            &[4, 5, 2, 3],
            &[3, 4, 2, 3],
            &[2, 3, 3, 2],
        );
    }

    #[test]
    fn contraction_needing_output_permute() {
        // C(I,M) = A(M,L) * B(L,I): output order interleaves the operands.
        check(&[2, 0], &[0, 1], &[1, 2], &[4, 5], &[5, 3]);
    }

    #[test]
    fn inner_indices_scattered() {
        // Contraction indices not adjacent in either operand.
        check(&[0, 3], &[0, 1, 2], &[2, 3, 1], &[3, 4, 5], &[5, 2, 4]);
    }

    #[test]
    fn full_contraction_to_scalar() {
        let plan = ContractionPlan::infer(&[], &[0, 1], &[0, 1]).unwrap();
        let a = ramp(Shape::new(&[3, 4]), 0.2);
        let b = ramp(Shape::new(&[3, 4]), 0.9);
        let c = contract(&plan, &a, &b);
        assert!((c.as_scalar() - a.dot(&b)).abs() < 1e-9);
    }

    #[test]
    fn outer_product() {
        check(&[0, 1], &[0], &[1], &[4], &[3]);
    }

    #[test]
    fn matvec() {
        check(&[0], &[0, 1], &[1], &[4, 6], &[6]);
    }

    #[test]
    fn six_dim_intermediate() {
        // A(a,b,c,k) * B(k,l,m) -> C(a,b,c,l,m): the paper's §IV-E scenario.
        check(
            &[0, 1, 2, 5, 6],
            &[0, 1, 2, 4],
            &[4, 5, 6],
            &[2, 3, 2, 4],
            &[4, 3, 2],
        );
    }

    #[test]
    fn accumulate_into_existing() {
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        let a = ramp(Shape::new(&[3, 4]), 0.5);
        let b = ramp(Shape::new(&[4, 2]), 1.5);
        let mut c = Block::filled(Shape::new(&[3, 2]), 2.0);
        contract_into(&plan, &a, &b, 1.0, &mut c);
        let mut expect = contract(&plan, &a, &b);
        expect.accumulate(&Block::filled(Shape::new(&[3, 2]), 2.0));
        assert!(c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn flops_formula() {
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        assert_eq!(
            plan.flops(&Shape::new(&[4, 5]), &Shape::new(&[5, 3])),
            2 * 4 * 3 * 5
        );
    }

    #[test]
    fn errors() {
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 0], &[1]).unwrap_err(),
            ContractError::RepeatedLabel { label: 0 }
        );
        assert_eq!(
            ContractionPlan::infer(&[9], &[0, 1], &[1, 0]).unwrap_err(),
            ContractError::UnboundOutput { label: 9 }
        );
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 1], &[0, 1]).unwrap_err(),
            ContractError::BatchLabel { label: 0 }
        );
        assert_eq!(
            ContractionPlan::infer(&[0], &[0, 1], &[2]).unwrap_err(),
            ContractError::DanglingInput { label: 1 }
        );
    }
}
