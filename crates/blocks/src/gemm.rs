//! A native, cache-blocked DGEMM.
//!
//! The original SIP leans on a vendor BLAS for its contraction super
//! instructions ("permute one of the arrays and then apply a DGEMM"). We
//! provide a dependency-free equivalent: a BLIS-style register-tiled,
//! cache-blocked `C = alpha * op(A) * op(B) + beta * C` for row-major
//! matrices. It is not MKL, but it exercises the identical code path (the
//! SIP treats the kernel as opaque) and is fast enough for test- and
//! bench-scale blocks.
//!
//! Structure: the k dimension is split into KC-deep panels; op(B) panels are
//! packed into NR-wide column slivers and op(A) panels into MR-tall row
//! slivers (both zero-padded at the edges) so the MR x NR microkernel runs
//! over contiguous memory with a full register tile of accumulators. The
//! M dimension can additionally be split across threads — each thread owns a
//! disjoint row range of C, packing its own slivers — which is how the SIP
//! exploits idle cores inside one worker (configure via [`GemmConfig`]).

/// Whether an operand participates as itself or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmLayout {
    /// Use the matrix as stored.
    NoTrans,
    /// Use the transpose of the stored matrix.
    Trans,
}

/// Tuning knobs for [`dgemm_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmConfig {
    /// Worker threads to split the M dimension across (1 = run inline).
    pub threads: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig { threads: 1 }
    }
}

const MC: usize = 128; // rows of op(A) per cache panel
const KC: usize = 256; // depth per cache panel
const MR: usize = 4; // register tile height
const NR: usize = 8; // register tile width

/// Below this many multiply-adds, spawning threads costs more than it saves.
const MIN_FLOPS_PER_THREAD: usize = 1 << 16;

/// `C(m x n) = alpha * op(A) * op(B) + beta * C` with row-major storage,
/// single-threaded. See [`dgemm_with`] for the threaded form.
///
/// * `op(A)` is `m x k`: if `ta == NoTrans`, `a` is `m x k`; if `Trans`,
///   `a` is stored `k x m`.
/// * `op(B)` is `k x n`, analogously.
///
/// # Panics
/// Panics if slice lengths don't match the stated dimensions.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    dgemm_with(GemmConfig::default(), m, n, k, alpha, a, ta, b, tb, beta, c);
}

/// [`dgemm`] with explicit tuning: `cfg.threads > 1` splits the M dimension
/// across scoped threads, each owning a disjoint row band of `C`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_with(
    cfg: GemmConfig,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    let threads = cfg
        .threads
        .max(1)
        .min(m.div_ceil(MR))
        .min((m * n * k / MIN_FLOPS_PER_THREAD).max(1));

    if threads <= 1 {
        gemm_rows(0, m, m, n, k, alpha, a, ta, b, tb, c);
        return;
    }

    // Split C into `threads` disjoint row bands (MR-aligned so sliver
    // packing never straddles a band boundary); each thread packs its own
    // A/B panels and writes only its own band.
    let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0;
        while row0 < m {
            let band = rows_per.min(m - row0);
            let (mine, tail) = rest.split_at_mut(band * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || {
                gemm_rows(r0, band, m, n, k, alpha, a, ta, b, tb, mine);
            });
            row0 += band;
        }
    });
}

/// Computes rows `row0 .. row0+rows` of `C += alpha * op(A) * op(B)`, where
/// `c_band` holds exactly those rows. `m_total` is op(A)'s full row count
/// (needed for the `Trans` stride).
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    row0: usize,
    rows: usize,
    m_total: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    c_band: &mut [f64],
) {
    let kernel = select_microkernel();
    let n_slivers = n.div_ceil(NR);
    let mut apack = vec![0.0f64; MC.min(rows).div_ceil(MR) * MR * KC.min(k)];
    let mut bpack = vec![0.0f64; KC.min(k) * n_slivers * NR];

    let mut p0 = 0;
    while p0 < k {
        let pb = KC.min(k - p0);
        pack_b(&mut bpack, b, tb, p0, pb, n, k);
        let mut i0 = 0;
        while i0 < rows {
            let ib = MC.min(rows - i0);
            pack_a(&mut apack, a, ta, row0 + i0, ib, p0, pb, m_total, k);
            // Microkernel sweep over the packed panel.
            let mut ii = 0;
            while ii < ib {
                let mr = MR.min(ib - ii);
                let ap = &apack[(ii / MR) * MR * pb..(ii / MR + 1) * MR * pb];
                for js in 0..n_slivers {
                    let j0 = js * NR;
                    let nr = NR.min(n - j0);
                    let bp = &bpack[js * NR * pb..(js + 1) * NR * pb];
                    kernel(
                        ap,
                        bp,
                        pb,
                        alpha,
                        &mut c_band[(i0 + ii) * n..],
                        n,
                        j0,
                        mr,
                        nr,
                    );
                }
                ii += MR;
            }
            i0 += ib;
        }
        p0 += pb;
    }
}

type MicroKernelFn = fn(&[f64], &[f64], usize, f64, &mut [f64], usize, usize, usize, usize);

/// Picks the widest microkernel the running CPU supports. The binary stays
/// portable (baseline codegen); the AVX2+FMA variant is compiled behind
/// `#[target_feature]` and only entered after runtime detection.
fn select_microkernel() -> MicroKernelFn {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return microkernel_avx2;
        }
    }
    microkernel
}

/// AVX2+FMA instantiation of the same register tile: the fixed-size
/// MR x NR loops in [`microkernel_body`] vectorize to FMA on 256-bit
/// registers once the target features are enabled.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn microkernel_avx2(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    #[target_feature(enable = "avx2,fma")]
    unsafe fn inner(
        ap: &[f64],
        bp: &[f64],
        pb: usize,
        alpha: f64,
        c_rows: &mut [f64],
        n: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr);
    }
    // Safety: only reachable via select_microkernel's feature detection.
    unsafe { inner(ap, bp, pb, alpha, c_rows, n, j0, mr, nr) }
}

/// Packs op(B) rows `p0..p0+pb` into NR-wide column slivers: sliver `js`
/// occupies `bpack[js*NR*pb ..]`, laid out p-major with NR contiguous values
/// per depth step, zero-padded past column `n`.
fn pack_b(bpack: &mut [f64], b: &[f64], tb: GemmLayout, p0: usize, pb: usize, n: usize, k: usize) {
    let n_slivers = n.div_ceil(NR);
    for js in 0..n_slivers {
        let j0 = js * NR;
        let nr = NR.min(n - j0);
        let sliver = &mut bpack[js * NR * pb..(js + 1) * NR * pb];
        match tb {
            GemmLayout::NoTrans => {
                for p in 0..pb {
                    let row = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + nr];
                    sliver[p * NR..p * NR + nr].copy_from_slice(row);
                    sliver[p * NR + nr..(p + 1) * NR].fill(0.0);
                }
            }
            GemmLayout::Trans => {
                // Stream stored rows (contiguous) and scatter down the
                // sliver; the sliver stays cache-resident while each source
                // row is read exactly once, instead of gathering nr values
                // per depth step with a k-element stride.
                if nr < NR {
                    sliver.fill(0.0);
                }
                for t in 0..nr {
                    let row = &b[(j0 + t) * k + p0..(j0 + t) * k + p0 + pb];
                    for (p, &v) in row.iter().enumerate() {
                        sliver[p * NR + t] = v;
                    }
                }
            }
        }
    }
}

/// Packs op(A) rows `gi0..gi0+ib`, depth `p0..p0+pb`, into MR-tall row
/// slivers laid out p-major with MR contiguous values per depth step,
/// zero-padded past the last row.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f64],
    a: &[f64],
    ta: GemmLayout,
    gi0: usize,
    ib: usize,
    p0: usize,
    pb: usize,
    m_total: usize,
    k: usize,
) {
    match ta {
        GemmLayout::NoTrans => {
            let mut ii = 0;
            while ii < ib {
                let mr = MR.min(ib - ii);
                let sliver = &mut apack[(ii / MR) * MR * pb..(ii / MR + 1) * MR * pb];
                for p in 0..pb {
                    for r in 0..mr {
                        sliver[p * MR + r] = a[(gi0 + ii + r) * k + (p0 + p)];
                    }
                    sliver[p * MR + mr..(p + 1) * MR].fill(0.0);
                }
                ii += MR;
            }
        }
        GemmLayout::Trans => {
            // Stream each stored row (contiguous in A) once, scattering its
            // MR-wide pieces across the slivers it feeds. Successive depth
            // steps land 32 bytes apart in each sliver, so the write working
            // set is one cache line per sliver — far cheaper than the
            // MR-element strided gathers the per-sliver order would do.
            if !ib.is_multiple_of(MR) {
                let last = ib / MR;
                apack[last * MR * pb..(last + 1) * MR * pb].fill(0.0);
            }
            for p in 0..pb {
                let row = &a[(p0 + p) * m_total + gi0..(p0 + p) * m_total + gi0 + ib];
                let mut ii = 0;
                while ii < ib {
                    let mr = MR.min(ib - ii);
                    let base = (ii / MR) * MR * pb + p * MR;
                    apack[base..base + mr].copy_from_slice(&row[ii..ii + mr]);
                    ii += MR;
                }
            }
        }
    }
}

/// Baseline-codegen instantiation of the register tile.
#[allow(clippy::too_many_arguments)]
fn microkernel(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr);
}

/// The MR x NR register tile: accumulates `alpha * ap * bp` over `pb` depth
/// steps into `c_rows` (a slice starting at C's row `i`, full row stride
/// `n`), writing only the `mr x nr` valid corner.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_body(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(pb) {
        // Fixed-size inner loops: the compiler keeps `acc` in registers and
        // vectorizes the NR dimension.
        for r in 0..MR {
            let ar = av[r];
            for t in 0..NR {
                acc[r][t] += ar * bv[t];
            }
        }
    }
    for (r, row_acc) in acc.iter().enumerate().take(mr) {
        let crow = &mut c_rows[r * n + j0..r * n + j0 + nr];
        for (t, cv) in crow.iter_mut().enumerate() {
            *cv += alpha * row_acc[t];
        }
    }
}

/// Reference (naive triple loop) used to validate [`dgemm`] in tests.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                let av = match ta {
                    GemmLayout::NoTrans => a[i * k + p],
                    GemmLayout::Trans => a[p * m + i],
                };
                let bv = match tb {
                    GemmLayout::NoTrans => b[p * n + j],
                    GemmLayout::Trans => b[j * k + p],
                };
                s += av * bv;
            }
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 - 6.0).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn check_with(
        cfg: GemmConfig,
        m: usize,
        n: usize,
        k: usize,
        ta: GemmLayout,
        tb: GemmLayout,
        alpha: f64,
        beta: f64,
    ) {
        let a = seq(m * k);
        let b = seq(k * n);
        let c0 = seq(m * n);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        dgemm_with(cfg, m, n, k, alpha, &a, ta, &b, tb, beta, &mut c1);
        naive_gemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    fn check(m: usize, n: usize, k: usize, ta: GemmLayout, tb: GemmLayout, alpha: f64, beta: f64) {
        check_with(GemmConfig::default(), m, n, k, ta, tb, alpha, beta);
    }

    #[test]
    fn small_nn() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_tn() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_nt() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn small_tt() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn alpha_beta() {
        check(4, 4, 4, GemmLayout::NoTrans, GemmLayout::NoTrans, 2.5, -0.5);
        check(4, 4, 4, GemmLayout::Trans, GemmLayout::Trans, -1.0, 1.0);
    }

    #[test]
    fn panel_boundaries() {
        // Sizes straddling MC/KC/MR/NR boundaries.
        check(
            129,
            9,
            257,
            GemmLayout::NoTrans,
            GemmLayout::NoTrans,
            1.0,
            0.0,
        );
        check(
            128,
            8,
            256,
            GemmLayout::Trans,
            GemmLayout::NoTrans,
            1.0,
            1.0,
        );
        check(1, 1, 1, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
        check(130, 17, 3, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
        check(5, 11, 7, GemmLayout::Trans, GemmLayout::Trans, 1.5, -2.0);
    }

    #[test]
    fn threaded_matches_naive() {
        for threads in [2, 3, 4] {
            let cfg = GemmConfig { threads };
            check_with(
                cfg,
                97,
                63,
                150,
                GemmLayout::NoTrans,
                GemmLayout::NoTrans,
                1.0,
                0.0,
            );
            check_with(
                cfg,
                97,
                63,
                150,
                GemmLayout::Trans,
                GemmLayout::NoTrans,
                2.0,
                1.0,
            );
            check_with(
                cfg,
                64,
                64,
                300,
                GemmLayout::NoTrans,
                GemmLayout::Trans,
                1.0,
                -0.5,
            );
            check_with(
                cfg,
                64,
                64,
                300,
                GemmLayout::Trans,
                GemmLayout::Trans,
                -1.0,
                0.0,
            );
        }
    }

    #[test]
    fn threaded_tiny_falls_back_inline() {
        // Far below MIN_FLOPS_PER_THREAD: must still be correct (and not
        // spawn MR-starved bands).
        check_with(
            GemmConfig { threads: 8 },
            3,
            3,
            3,
            GemmLayout::NoTrans,
            GemmLayout::NoTrans,
            1.0,
            0.0,
        );
    }

    #[test]
    fn zero_alpha_keeps_beta_c() {
        let a = seq(4);
        let b = seq(4);
        let mut c = vec![2.0; 4];
        dgemm(
            2,
            2,
            2,
            0.0,
            &a,
            GemmLayout::NoTrans,
            &b,
            GemmLayout::NoTrans,
            0.5,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn identity_multiply() {
        let n = 16;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = seq(n * n);
        let mut c = vec![0.0; n * n];
        dgemm(
            n,
            n,
            n,
            1.0,
            &eye,
            GemmLayout::NoTrans,
            &x,
            GemmLayout::NoTrans,
            0.0,
            &mut c,
        );
        for (u, v) in c.iter().zip(&x) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
