//! A native, cache-blocked DGEMM.
//!
//! The original SIP leans on a vendor BLAS for its contraction super
//! instructions ("permute one of the arrays and then apply a DGEMM"). We
//! provide a dependency-free equivalent: a register-tiled, cache-blocked
//! `C = alpha * op(A) * op(B) + beta * C` for row-major matrices. It is not
//! MKL, but it exercises the identical code path (the SIP treats the kernel
//! as opaque) and is fast enough for test- and bench-scale blocks
//! (seg = 8..32 → GEMM dims ≤ ~1024).

/// Whether an operand participates as itself or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmLayout {
    /// Use the matrix as stored.
    NoTrans,
    /// Use the transpose of the stored matrix.
    Trans,
}

const MC: usize = 64; // rows of A per L2 panel
const KC: usize = 128; // depth per panel
const NR: usize = 8; // register tile width

/// `C(m x n) = alpha * op(A) * op(B) + beta * C` with row-major storage.
///
/// * `op(A)` is `m x k`: if `ta == NoTrans`, `a` is `m x k`; if `Trans`,
///   `a` is stored `k x m`.
/// * `op(B)` is `k x n`, analogously.
///
/// # Panics
/// Panics if slice lengths don't match the stated dimensions.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Pack op(A) row-major (m x k) and op(B) row-major (k x n) panel by
    // panel; packing makes the inner kernel layout-oblivious and sequential.
    let mut apack = vec![0.0f64; MC.min(m) * KC.min(k)];
    let mut bpack = vec![0.0f64; KC.min(k) * n];

    let mut p0 = 0;
    while p0 < k {
        let pb = KC.min(k - p0);
        // Pack B panel: rows p0..p0+pb of op(B).
        for p in 0..pb {
            for j in 0..n {
                bpack[p * n + j] = match tb {
                    GemmLayout::NoTrans => b[(p0 + p) * n + j],
                    GemmLayout::Trans => b[j * k + (p0 + p)],
                };
            }
        }
        let mut i0 = 0;
        while i0 < m {
            let ib = MC.min(m - i0);
            // Pack A panel: rows i0..i0+ib, cols p0..p0+pb of op(A).
            for i in 0..ib {
                for p in 0..pb {
                    apack[i * pb + p] = match ta {
                        GemmLayout::NoTrans => a[(i0 + i) * k + (p0 + p)],
                        GemmLayout::Trans => a[(p0 + p) * m + (i0 + i)],
                    };
                }
            }
            // Inner kernel: C[i0.., ..] += alpha * apack * bpack.
            for i in 0..ib {
                let arow = &apack[i * pb..(i + 1) * pb];
                let crow = &mut c[(i0 + i) * n..(i0 + i + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let jb = NR.min(n - j0);
                    let mut acc = [0.0f64; NR];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &bpack[p * n + j0..p * n + j0 + jb];
                        for (t, &bv) in brow.iter().enumerate() {
                            acc[t] += av * bv;
                        }
                    }
                    for t in 0..jb {
                        crow[j0 + t] += alpha * acc[t];
                    }
                    j0 += jb;
                }
            }
            i0 += ib;
        }
        p0 += pb;
    }
}

/// Reference (naive triple loop) used to validate [`dgemm`] in tests.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                let av = match ta {
                    GemmLayout::NoTrans => a[i * k + p],
                    GemmLayout::Trans => a[p * m + i],
                };
                let bv = match tb {
                    GemmLayout::NoTrans => b[p * n + j],
                    GemmLayout::Trans => b[j * k + p],
                };
                s += av * bv;
            }
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 - 6.0).collect()
    }

    fn check(m: usize, n: usize, k: usize, ta: GemmLayout, tb: GemmLayout, alpha: f64, beta: f64) {
        let a = seq(m * k);
        let b = seq(k * n);
        let c0 = seq(m * n);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        dgemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut c1);
        naive_gemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    #[test]
    fn small_nn() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_tn() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_nt() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn small_tt() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn alpha_beta() {
        check(4, 4, 4, GemmLayout::NoTrans, GemmLayout::NoTrans, 2.5, -0.5);
        check(4, 4, 4, GemmLayout::Trans, GemmLayout::Trans, -1.0, 1.0);
    }

    #[test]
    fn panel_boundaries() {
        // Sizes straddling MC/KC/NR boundaries.
        check(65, 9, 129, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
        check(64, 8, 128, GemmLayout::Trans, GemmLayout::NoTrans, 1.0, 1.0);
        check(1, 1, 1, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
        check(130, 17, 3, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn zero_alpha_keeps_beta_c() {
        let a = seq(4);
        let b = seq(4);
        let mut c = vec![2.0; 4];
        dgemm(2, 2, 2, 0.0, &a, GemmLayout::NoTrans, &b, GemmLayout::NoTrans, 0.5, &mut c);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn identity_multiply() {
        let n = 16;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = seq(n * n);
        let mut c = vec![0.0; n * n];
        dgemm(n, n, n, 1.0, &eye, GemmLayout::NoTrans, &x, GemmLayout::NoTrans, 0.0, &mut c);
        for (u, v) in c.iter().zip(&x) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
