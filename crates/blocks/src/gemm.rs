//! A native, cache-blocked DGEMM with permute-on-pack operand views.
//!
//! The original SIP leans on a vendor BLAS for its contraction super
//! instructions ("permute one of the arrays and then apply a DGEMM"). We
//! provide a dependency-free equivalent: a BLIS-style register-tiled,
//! cache-blocked `C = alpha * op(A) * op(B) + beta * C` for row-major
//! matrices — except that `op` is more general than BLAS transposes.
//! Operands are read through [`MatView`]s (arbitrary index permutations
//! expressed as per-dimension strides), so a permuted tensor operand is
//! packed straight out of its home buffer: the permutation folds into the
//! pack traversal instead of materializing a reordered copy first.
//!
//! Structure follows the BLIS three-level blocking: the N dimension is split
//! into NC-wide column blocks (so the packed B panel stays cache-resident
//! instead of spanning all of N), the k dimension into KC-deep panels, and
//! the M dimension into MC-tall panels. op(B) panels are packed into NR-wide
//! column slivers and op(A) panels into MR-tall row slivers (both
//! zero-padded at the edges) so the MR x NR microkernel runs over contiguous
//! memory with a full register tile of accumulators. Rows not divisible by
//! MR fall to narrower edge microkernels rather than computing padded rows.
//!
//! The microkernel is selected once per GEMM by [`select_microkernel`]:
//! AVX2+FMA on x86-64 (runtime-detected), NEON `float64x2_t` tiles on
//! AArch64 (baseline there, no detection needed), and a portable unrolled
//! scalar tile everywhere else. The M dimension can additionally be split
//! across threads — each thread owns a disjoint row range of C and packs
//! its own A slivers, while the B panel (identical for every band) is
//! packed once per (jc, pc) block and shared (configure via
//! [`GemmConfig`]).

use crate::view::MatView;

/// Whether an operand participates as itself or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmLayout {
    /// Use the matrix as stored.
    NoTrans,
    /// Use the transpose of the stored matrix.
    Trans,
}

/// Tuning knobs for [`dgemm_with`] / [`dgemm_view`].
///
/// `mc`/`kc`/`nc` are the BLIS cache-blocking parameters: an MC x KC packed
/// A panel should fit L2, a KC x NC packed B panel L3, and one KC-deep
/// sliver pair L1. They are sanitized to microkernel multiples by
/// [`GemmConfig::blocking`]; the defaults suit the 32 KiB / 1 MiB-class
/// cores the bench grid runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmConfig {
    /// Worker threads to split the M dimension across (1 = run inline).
    pub threads: usize,
    /// Rows of op(A) per cache panel (rounded up to an MR multiple).
    pub mc: usize,
    /// Depth per cache panel.
    pub kc: usize,
    /// Columns of op(B) per cache block (rounded up to an NR multiple).
    pub nc: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig {
            threads: 1,
            mc: 128,
            kc: 256,
            nc: 1024,
        }
    }
}

impl GemmConfig {
    /// A default-blocking config with the given thread count.
    pub fn with_threads(threads: usize) -> Self {
        GemmConfig {
            threads,
            ..GemmConfig::default()
        }
    }

    /// The sanitized `(mc, kc, nc)` triple: microkernel-aligned and nonzero.
    pub fn blocking(&self) -> (usize, usize, usize) {
        let mc = self.mc.max(1).div_ceil(MR) * MR;
        let kc = self.kc.max(1);
        let nc = self.nc.max(1).div_ceil(NR) * NR;
        (mc, kc, nc)
    }
}

/// Register tile height (rows of the microkernel).
pub const MR: usize = 4;
/// Register tile width (columns of the microkernel).
pub const NR: usize = 8;

/// Below this many multiply-adds, spawning threads costs more than it saves.
const MIN_FLOPS_PER_THREAD: usize = 1 << 16;

/// Caller-provided packing scratch for [`dgemm_view`]: lets the contraction
/// layer route the pack panels through its block pool instead of allocating
/// per call. Size each slice with [`pack_buf_elems`]; undersized buffers
/// fall back to a local allocation.
pub struct PackBufs<'s> {
    /// Scratch for the packed A panel.
    pub apack: &'s mut [f64],
    /// Scratch for the packed B panel.
    pub bpack: &'s mut [f64],
}

/// Element counts `(apack, bpack)` needed to pack an `m x k` by `k x n`
/// product under `cfg`'s blocking. Valid for every row band the threaded
/// split can produce (bands are never larger than `m`).
pub fn pack_buf_elems(cfg: &GemmConfig, m: usize, n: usize, k: usize) -> (usize, usize) {
    let (mc, kc, nc) = cfg.blocking();
    let kd = kc.min(k).max(1);
    let a = mc.min(m.div_ceil(MR) * MR).max(MR) * kd;
    let b = kd * nc.min(n.div_ceil(NR) * NR).max(NR);
    (a, b)
}

/// `C(m x n) = alpha * op(A) * op(B) + beta * C` with row-major storage,
/// single-threaded. See [`dgemm_with`] for the threaded form.
///
/// * `op(A)` is `m x k`: if `ta == NoTrans`, `a` is `m x k`; if `Trans`,
///   `a` is stored `k x m`.
/// * `op(B)` is `k x n`, analogously.
///
/// # Panics
/// Panics if slice lengths don't match the stated dimensions.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    dgemm_with(GemmConfig::default(), m, n, k, alpha, a, ta, b, tb, beta, c);
}

/// [`dgemm`] with explicit tuning: `cfg.threads > 1` splits the M dimension
/// across scoped threads, each owning a disjoint row band of `C`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_with(
    cfg: GemmConfig,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let av = MatView::from_matrix(a, m, k, ta);
    let bv = MatView::from_matrix(b, k, n, tb);
    dgemm_view(cfg, alpha, &av, &bv, 1.0, c, None);
}

/// The general entry point: `C = alpha * A * B + beta * C` where each
/// operand is an arbitrary [`MatView`] (plain, transposed, or a permuted
/// tensor) — the permute-on-pack path. `bufs` optionally supplies
/// pool-backed packing scratch (see [`pack_buf_elems`]).
///
/// # Panics
/// Panics if the view dimensions are inconsistent (`a.cols() != b.rows()`)
/// or `c.len() != a.rows() * b.cols()`.
pub fn dgemm_view(
    cfg: GemmConfig,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    beta: f64,
    c: &mut [f64],
    bufs: Option<PackBufs<'_>>,
) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    scale_c(beta, c);
    if alpha == 0.0 {
        return;
    }

    let (mc, kc, nc) = cfg.blocking();
    let threads = cfg
        .threads
        .max(1)
        .min(m.div_ceil(MR))
        .min((m * n * k / MIN_FLOPS_PER_THREAD).max(1));

    if threads <= 1 {
        let (a_need, b_need) = pack_buf_elems(&cfg, m, n, k);
        match bufs {
            Some(bufs) if bufs.apack.len() >= a_need && bufs.bpack.len() >= b_need => {
                gemm_rows(
                    0, m, n, k, alpha, a, b, c, bufs.apack, bufs.bpack, mc, kc, nc,
                );
            }
            _ => {
                let mut apack = vec![0.0f64; a_need];
                let mut bpack = vec![0.0f64; b_need];
                gemm_rows(
                    0, m, n, k, alpha, a, b, c, &mut apack, &mut bpack, mc, kc, nc,
                );
            }
        }
        return;
    }

    // Split C into `threads` disjoint row bands (MR-aligned so sliver
    // packing never straddles a band boundary). The packed B panel is
    // identical for every band, so it is packed exactly once per (jc, pc)
    // block by the calling thread — through the possibly-permuted view —
    // and read concurrently by all bands; only the A slivers are per-band.
    // Without this, a folded operand permutation would pay its gather once
    // per band instead of once, and lose to permute-then-GEMM at high
    // thread counts. A-pack scratch is thread-local (allocated once per
    // band, reused across blocks) since the pool behind `bufs` is
    // single-threaded by design; `bufs.bpack` is still honored because
    // only this thread writes it.
    let kernel = select_microkernel();
    let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
    let bands: Vec<(usize, usize)> = (0..m.div_ceil(rows_per))
        .map(|t| (t * rows_per, rows_per.min(m - t * rows_per)))
        .collect();
    let mut apacks: Vec<Vec<f64>> = bands
        .iter()
        .map(|&(_, band)| vec![0.0f64; pack_buf_elems(&cfg, band, n, k).0])
        .collect();
    let (_, b_need) = pack_buf_elems(&cfg, m, n, k);
    let mut bpack_local = Vec::new();
    let bpack: &mut [f64] = match bufs {
        Some(bufs) if bufs.bpack.len() >= b_need => bufs.bpack,
        _ => {
            bpack_local.resize(b_need, 0.0);
            &mut bpack_local
        }
    };
    let mut jj = 0;
    while jj < n {
        let nb = nc.min(n - jj);
        let n_slivers = nb.div_ceil(NR);
        let mut p0 = 0;
        while p0 < k {
            let pb = kc.min(k - p0);
            pack_b(&mut bpack[..n_slivers * NR * pb], b, p0, pb, jj, nb);
            let bp: &[f64] = &bpack[..n_slivers * NR * pb];
            std::thread::scope(|scope| {
                let mut rest = &mut *c;
                for (&(row0, band), apack) in bands.iter().zip(apacks.iter_mut()) {
                    let (mine, tail) = rest.split_at_mut(band * n);
                    rest = tail;
                    scope.spawn(move || {
                        gemm_panel_rows(
                            kernel, row0, band, n, alpha, a, bp, p0, pb, jj, nb, mine, apack, mc,
                        );
                    });
                }
            });
            p0 += pb;
        }
        jj += nb;
    }
}

/// Applies the beta scaling to C once, up front.
fn scale_c(beta: f64, c: &mut [f64]) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Computes rows `row0 .. row0+rows` of `C += alpha * A * B`, where `c_band`
/// holds exactly those rows. The jc -> pc -> ic loop nest is the BLIS order:
/// B is packed once per (jc, pc) block, A once per (jc, pc, ic) panel.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &MatView<'_>,
    b: &MatView<'_>,
    c_band: &mut [f64],
    apack: &mut [f64],
    bpack: &mut [f64],
    mc: usize,
    kc: usize,
    nc: usize,
) {
    let kernel = select_microkernel();
    let mut jj = 0;
    while jj < n {
        let nb = nc.min(n - jj);
        let n_slivers = nb.div_ceil(NR);
        let mut p0 = 0;
        while p0 < k {
            let pb = kc.min(k - p0);
            pack_b(&mut bpack[..n_slivers * NR * pb], b, p0, pb, jj, nb);
            gemm_panel_rows(
                kernel,
                row0,
                rows,
                n,
                alpha,
                a,
                &bpack[..n_slivers * NR * pb],
                p0,
                pb,
                jj,
                nb,
                c_band,
                apack,
                mc,
            );
            p0 += pb;
        }
        jj += nb;
    }
}

/// One (jc, pc) block of a row band: the ic loop over `rows`, packing A
/// panels and sweeping the microkernel against an already-packed shared B
/// panel (`bpack`, sized `nb.div_ceil(NR) * NR * pb`).
#[allow(clippy::too_many_arguments)]
fn gemm_panel_rows(
    kernel: MicroKernelFn,
    row0: usize,
    rows: usize,
    n: usize,
    alpha: f64,
    a: &MatView<'_>,
    bpack: &[f64],
    p0: usize,
    pb: usize,
    jj: usize,
    nb: usize,
    c_band: &mut [f64],
    apack: &mut [f64],
    mc: usize,
) {
    let n_slivers = nb.div_ceil(NR);
    let mut i0 = 0;
    while i0 < rows {
        let ib = mc.min(rows - i0);
        pack_a(
            &mut apack[..ib.div_ceil(MR) * MR * pb],
            a,
            row0 + i0,
            ib,
            p0,
            pb,
        );
        // Microkernel sweep over the packed panel.
        let mut ii = 0;
        while ii < ib {
            let mr = MR.min(ib - ii);
            let ap = &apack[(ii / MR) * MR * pb..(ii / MR + 1) * MR * pb];
            for js in 0..n_slivers {
                let j0 = js * NR;
                let nr = NR.min(nb - j0);
                let bp = &bpack[js * NR * pb..(js + 1) * NR * pb];
                let crows = &mut c_band[(i0 + ii) * n..];
                if mr == MR {
                    kernel(ap, bp, pb, alpha, crows, n, jj + j0, mr, nr);
                } else {
                    // Partial row tile: a narrower edge kernel, so the
                    // zero-padded rows cost no FLOPs.
                    microkernel_edge(ap, bp, pb, alpha, crows, n, jj + j0, mr, nr);
                }
            }
            ii += MR;
        }
        i0 += ib;
    }
}

type MicroKernelFn = fn(&[f64], &[f64], usize, f64, &mut [f64], usize, usize, usize, usize);

/// Picks the widest microkernel the running CPU supports. On x86-64 the
/// binary stays portable (baseline codegen) and the AVX2+FMA variant is
/// compiled behind `#[target_feature]`, only entered after runtime
/// detection. On AArch64, NEON is part of the baseline ABI so the NEON
/// kernel is selected unconditionally. Everything else gets the portable
/// unrolled scalar tile.
fn select_microkernel() -> MicroKernelFn {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return microkernel_avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return microkernel_neon;
    }
    #[allow(unreachable_code)]
    microkernel
}

/// Name of the microkernel [`select_microkernel`] resolves to on this host
/// (surfaced by the bench grid and the ISA dispatch table in DESIGN.md).
pub fn active_microkernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx2+fma-4x8";
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return "neon-4x8";
    }
    #[allow(unreachable_code)]
    "scalar-4x8"
}

/// AVX2+FMA instantiation of the register tile: the fixed-size MR x NR
/// loops in [`microkernel_body`] vectorize to FMA on 256-bit registers once
/// the target features are enabled.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn microkernel_avx2(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    #[target_feature(enable = "avx2,fma")]
    unsafe fn inner(
        ap: &[f64],
        bp: &[f64],
        pb: usize,
        alpha: f64,
        c_rows: &mut [f64],
        n: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr);
    }
    // Safety: only reachable via select_microkernel's feature detection.
    unsafe { inner(ap, bp, pb, alpha, c_rows, n, j0, mr, nr) }
}

/// NEON instantiation of the register tile: 4 rows x 4 `float64x2_t`
/// accumulators (16 of the 32 vector registers), fed by a broadcast A value
/// per row and four 128-bit B loads per depth step. NEON is baseline on
/// AArch64, so no runtime detection is needed. Partial tiles fall back to
/// the portable body, which writes only the valid corner.
#[cfg(target_arch = "aarch64")]
#[allow(clippy::too_many_arguments)]
fn microkernel_neon(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    use core::arch::aarch64::{vdupq_n_f64, vfmaq_f64, vld1q_f64, vst1q_f64};
    if mr < MR || nr < NR {
        microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr);
        return;
    }
    debug_assert!(ap.len() >= MR * pb && bp.len() >= NR * pb);
    // Safety: NEON is in the aarch64 baseline feature set; all pointer
    // arithmetic stays inside the slices checked just above and the
    // bounds-checked row slices below.
    unsafe {
        let mut acc = [[vdupq_n_f64(0.0); NR / 2]; MR];
        let mut a_ptr = ap.as_ptr();
        let mut b_ptr = bp.as_ptr();
        for _ in 0..pb {
            let b0 = vld1q_f64(b_ptr);
            let b1 = vld1q_f64(b_ptr.add(2));
            let b2 = vld1q_f64(b_ptr.add(4));
            let b3 = vld1q_f64(b_ptr.add(6));
            for r in 0..MR {
                let av = vdupq_n_f64(*a_ptr.add(r));
                acc[r][0] = vfmaq_f64(acc[r][0], av, b0);
                acc[r][1] = vfmaq_f64(acc[r][1], av, b1);
                acc[r][2] = vfmaq_f64(acc[r][2], av, b2);
                acc[r][3] = vfmaq_f64(acc[r][3], av, b3);
            }
            a_ptr = a_ptr.add(MR);
            b_ptr = b_ptr.add(NR);
        }
        let alpha_v = vdupq_n_f64(alpha);
        for (r, row_acc) in acc.iter().enumerate() {
            let crow = &mut c_rows[r * n + j0..r * n + j0 + NR];
            let cp = crow.as_mut_ptr();
            for (v, &av) in row_acc.iter().enumerate() {
                let cur = vld1q_f64(cp.add(2 * v));
                vst1q_f64(cp.add(2 * v), vfmaq_f64(cur, alpha_v, av));
            }
        }
    }
}

/// Portable instantiation of the register tile (unrolled scalar fallback).
#[allow(clippy::too_many_arguments)]
fn microkernel(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr);
}

/// The MR x NR register tile: accumulates `alpha * ap * bp` over `pb` depth
/// steps into `c_rows` (a slice starting at C's row `i`, full row stride
/// `n`), writing only the `mr x nr` valid corner. The depth loop is
/// two-deep unrolled: two independent products per accumulator halve the
/// loop overhead and give the autovectorizer independent FMA chains.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_body(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    let mut p = 0;
    while p + 2 <= pb {
        let av0 = &ap[p * MR..(p + 1) * MR];
        let bv0 = &bp[p * NR..(p + 1) * NR];
        let av1 = &ap[(p + 1) * MR..(p + 2) * MR];
        let bv1 = &bp[(p + 1) * NR..(p + 2) * NR];
        // Fixed-size inner loops: the compiler keeps `acc` in registers and
        // vectorizes the NR dimension.
        for r in 0..MR {
            let a0 = av0[r];
            let a1 = av1[r];
            for t in 0..NR {
                acc[r][t] += a0 * bv0[t] + a1 * bv1[t];
            }
        }
        p += 2;
    }
    if p < pb {
        let av = &ap[p * MR..(p + 1) * MR];
        let bv = &bp[p * NR..(p + 1) * NR];
        for r in 0..MR {
            let ar = av[r];
            for t in 0..NR {
                acc[r][t] += ar * bv[t];
            }
        }
    }
    for (r, row_acc) in acc.iter().enumerate().take(mr) {
        let crow = &mut c_rows[r * n + j0..r * n + j0 + nr];
        for (t, cv) in crow.iter_mut().enumerate() {
            *cv += alpha * row_acc[t];
        }
    }
}

/// Edge-tile dispatch: a partial row tile (`mr < MR`) runs a const-generic
/// body sized to exactly `mr` accumulator rows, so the zero-padded rows in
/// the A sliver cost neither FLOPs nor C traffic.
#[allow(clippy::too_many_arguments)]
fn microkernel_edge(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    match mr {
        1 => edge_body::<1>(ap, bp, pb, alpha, c_rows, n, j0, nr),
        2 => edge_body::<2>(ap, bp, pb, alpha, c_rows, n, j0, nr),
        3 => edge_body::<3>(ap, bp, pb, alpha, c_rows, n, j0, nr),
        _ => microkernel_body(ap, bp, pb, alpha, c_rows, n, j0, mr, nr),
    }
}

/// `M`-row instantiation of the register tile (`M < MR`); the A sliver is
/// still MR-strided, but only the first `M` lanes are read.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn edge_body<const M: usize>(
    ap: &[f64],
    bp: &[f64],
    pb: usize,
    alpha: f64,
    c_rows: &mut [f64],
    n: usize,
    j0: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; M];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(pb) {
        for r in 0..M {
            let ar = av[r];
            for t in 0..NR {
                acc[r][t] += ar * bv[t];
            }
        }
    }
    for (r, row_acc) in acc.iter().enumerate() {
        let crow = &mut c_rows[r * n + j0..r * n + j0 + nr];
        for (t, cv) in crow.iter_mut().enumerate() {
            *cv += alpha * row_acc[t];
        }
    }
}

/// Packs B columns `jj..jj+nb`, depth `p0..p0+pb`, into NR-wide column
/// slivers: sliver `js` occupies `bpack[js*NR*pb ..]`, laid out p-major with
/// NR contiguous values per depth step, zero-padded past column `jj+nb`.
///
/// Three traversals, picked by the view's stride structure:
/// contiguous-column streaming (plain row-major B), contiguous-depth
/// streaming (transposed B), and a cursor-driven gather for permuted tensor
/// operands — the permute-on-pack path.
fn pack_b(bpack: &mut [f64], b: &MatView<'_>, p0: usize, pb: usize, jj: usize, nb: usize) {
    let data = b.data();
    let rows = b.row_group();
    let cols = b.col_group();
    let n_slivers = nb.div_ceil(NR);

    if cols.uniform_stride() == Some(1) {
        // Columns are contiguous in storage: copy NR-wide pieces of each
        // stored row (the classic NoTrans pack), row offsets via cursor so
        // a strided/multi-dim depth group still streams.
        let mut rc = rows.cursor(p0);
        for p in 0..pb {
            let rbase = rc.offset() + jj;
            rc.advance();
            for js in 0..n_slivers {
                let j0 = js * NR;
                let nr = NR.min(nb - j0);
                let sliver = &mut bpack[js * NR * pb..];
                sliver[p * NR..p * NR + nr].copy_from_slice(&data[rbase + j0..rbase + j0 + nr]);
                sliver[p * NR + nr..(p + 1) * NR].fill(0.0);
            }
        }
        return;
    }

    if rows.uniform_stride() == Some(1) {
        // Depth is contiguous in storage (the classic Trans pack): stream
        // each stored column (contiguous) once and scatter down its sliver;
        // the sliver stays cache-resident while each source run is read
        // exactly once, instead of gathering nr values per depth step with
        // a large stride.
        if !nb.is_multiple_of(NR) {
            let last = n_slivers - 1;
            bpack[last * NR * pb..last * NR * pb + NR * pb].fill(0.0);
        }
        let mut cc = cols.cursor(jj);
        for t in 0..nb {
            let base = cc.offset() + p0;
            cc.advance();
            let run = &data[base..base + pb];
            let sliver = &mut bpack[(t / NR) * NR * pb..];
            let lane = t % NR;
            for (p, &v) in run.iter().enumerate() {
                sliver[p * NR + lane] = v;
            }
        }
        return;
    }

    // General permuted operand: walk both axis groups with incremental
    // cursors (one decompose per depth row, O(1) per element after that).
    if !nb.is_multiple_of(NR) {
        let last = n_slivers - 1;
        bpack[last * NR * pb..last * NR * pb + NR * pb].fill(0.0);
    }
    let mut rc = rows.cursor(p0);
    for p in 0..pb {
        let rbase = rc.offset();
        rc.advance();
        let mut cc = cols.cursor(jj);
        for t in 0..nb {
            bpack[(t / NR) * NR * pb + p * NR + (t % NR)] = data[rbase + cc.offset()];
            cc.advance();
        }
    }
}

/// Packs A rows `gi0..gi0+ib`, depth `p0..p0+pb`, into MR-tall row slivers
/// laid out p-major with MR contiguous values per depth step, zero-padded
/// past the last row. Traversal choice mirrors [`pack_b`].
fn pack_a(apack: &mut [f64], a: &MatView<'_>, gi0: usize, ib: usize, p0: usize, pb: usize) {
    let data = a.data();
    let rows = a.row_group();
    let cols = a.col_group();

    if rows.uniform_stride() == Some(1) {
        // Rows are contiguous in storage (the classic Trans pack): stream
        // each stored depth-run once, scattering its MR-wide pieces across
        // the slivers it feeds. Successive depth steps land 32 bytes apart
        // in each sliver, so the write working set is one cache line per
        // sliver — far cheaper than MR-element strided gathers.
        if !ib.is_multiple_of(MR) {
            let last = ib / MR;
            apack[last * MR * pb..(last + 1) * MR * pb].fill(0.0);
        }
        let mut cc = cols.cursor(p0);
        for p in 0..pb {
            let base = cc.offset() + gi0;
            cc.advance();
            let row = &data[base..base + ib];
            let mut ii = 0;
            while ii < ib {
                let mr = MR.min(ib - ii);
                let dst = (ii / MR) * MR * pb + p * MR;
                apack[dst..dst + mr].copy_from_slice(&row[ii..ii + mr]);
                ii += MR;
            }
        }
        return;
    }

    if let Some(cs) = cols.uniform_stride() {
        // Depth offsets are affine (plain NoTrans has cs == 1, grouped
        // folds a larger constant): gather row-by-row with sequential
        // reads along the depth run.
        let mut rc = rows.cursor(gi0);
        let mut ii = 0;
        while ii < ib {
            let mr = MR.min(ib - ii);
            let sliver = &mut apack[(ii / MR) * MR * pb..(ii / MR + 1) * MR * pb];
            if mr < MR {
                sliver.fill(0.0);
            }
            for r in 0..mr {
                let base = rc.offset() + p0 * cs;
                rc.advance();
                for p in 0..pb {
                    sliver[p * MR + r] = data[base + p * cs];
                }
            }
            ii += MR;
        }
        return;
    }

    // General permuted operand: cursor-driven gather, one depth walk per
    // packed row.
    let mut rc = rows.cursor(gi0);
    let mut ii = 0;
    while ii < ib {
        let mr = MR.min(ib - ii);
        let sliver = &mut apack[(ii / MR) * MR * pb..(ii / MR + 1) * MR * pb];
        if mr < MR {
            sliver.fill(0.0);
        }
        for r in 0..mr {
            let rbase = rc.offset();
            rc.advance();
            let mut cc = cols.cursor(p0);
            for p in 0..pb {
                sliver[p * MR + r] = data[rbase + cc.offset()];
                cc.advance();
            }
        }
        ii += MR;
    }
}

/// Reference (naive triple loop) used to validate [`dgemm`] in tests.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: GemmLayout,
    b: &[f64],
    tb: GemmLayout,
    beta: f64,
    c: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                let av = match ta {
                    GemmLayout::NoTrans => a[i * k + p],
                    GemmLayout::Trans => a[p * m + i],
                };
                let bv = match tb {
                    GemmLayout::NoTrans => b[p * n + j],
                    GemmLayout::Trans => b[j * k + p],
                };
                s += av * bv;
            }
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 - 6.0).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn check_with(
        cfg: GemmConfig,
        m: usize,
        n: usize,
        k: usize,
        ta: GemmLayout,
        tb: GemmLayout,
        alpha: f64,
        beta: f64,
    ) {
        let a = seq(m * k);
        let b = seq(k * n);
        let c0 = seq(m * n);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        dgemm_with(cfg, m, n, k, alpha, &a, ta, &b, tb, beta, &mut c1);
        naive_gemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    fn check(m: usize, n: usize, k: usize, ta: GemmLayout, tb: GemmLayout, alpha: f64, beta: f64) {
        check_with(GemmConfig::default(), m, n, k, ta, tb, alpha, beta);
    }

    #[test]
    fn small_nn() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_tn() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::NoTrans, 1.0, 0.0);
    }

    #[test]
    fn small_nt() {
        check(3, 4, 5, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn small_tt() {
        check(3, 4, 5, GemmLayout::Trans, GemmLayout::Trans, 1.0, 0.0);
    }

    #[test]
    fn alpha_beta() {
        check(4, 4, 4, GemmLayout::NoTrans, GemmLayout::NoTrans, 2.5, -0.5);
        check(4, 4, 4, GemmLayout::Trans, GemmLayout::Trans, -1.0, 1.0);
    }

    #[test]
    fn panel_boundaries() {
        // Sizes straddling MC/KC/MR/NR boundaries.
        check(
            129,
            9,
            257,
            GemmLayout::NoTrans,
            GemmLayout::NoTrans,
            1.0,
            0.0,
        );
        check(
            128,
            8,
            256,
            GemmLayout::Trans,
            GemmLayout::NoTrans,
            1.0,
            1.0,
        );
        check(1, 1, 1, GemmLayout::NoTrans, GemmLayout::NoTrans, 1.0, 0.0);
        check(130, 17, 3, GemmLayout::NoTrans, GemmLayout::Trans, 1.0, 0.0);
        check(5, 11, 7, GemmLayout::Trans, GemmLayout::Trans, 1.5, -2.0);
    }

    #[test]
    fn nc_blocking_boundaries() {
        // Exercise the NC loop: n larger than nc, straddling and exact.
        for nc in [8, 16, 24] {
            let cfg = GemmConfig {
                nc,
                ..GemmConfig::default()
            };
            check_with(
                cfg,
                13,
                61,
                19,
                GemmLayout::NoTrans,
                GemmLayout::NoTrans,
                1.0,
                0.5,
            );
            check_with(
                cfg,
                13,
                61,
                19,
                GemmLayout::Trans,
                GemmLayout::Trans,
                1.0,
                0.0,
            );
            check_with(
                cfg,
                16,
                48,
                32,
                GemmLayout::NoTrans,
                GemmLayout::Trans,
                -1.5,
                1.0,
            );
        }
    }

    #[test]
    fn tiny_cache_blocks_still_correct() {
        // Degenerate mc/kc/nc (sanitized up to tile multiples) stress every
        // panel boundary at once.
        let cfg = GemmConfig {
            threads: 1,
            mc: 1,
            kc: 1,
            nc: 1,
        };
        check_with(
            cfg,
            7,
            9,
            5,
            GemmLayout::NoTrans,
            GemmLayout::NoTrans,
            1.0,
            0.0,
        );
        check_with(
            cfg,
            7,
            9,
            5,
            GemmLayout::Trans,
            GemmLayout::Trans,
            2.0,
            -1.0,
        );
    }

    #[test]
    fn view_gemm_matches_naive_on_permuted_operand() {
        // A stored as (L, M): contract over L with A read as M x L — the
        // permuted view must equal naive Trans GEMM.
        let (m, n, k) = (9, 7, 11);
        let a = seq(k * m); // stored k x m
        let b = seq(k * n);
        let av = MatView::permuted(&a, &Shape::new(&[k, m]), &[1, 0], 1);
        let bv = MatView::from_matrix(&b, k, n, GemmLayout::NoTrans);
        let mut c1 = vec![0.0; m * n];
        dgemm_view(GemmConfig::default(), 1.0, &av, &bv, 0.0, &mut c1, None);
        let mut c2 = vec![0.0; m * n];
        naive_gemm(
            m,
            n,
            k,
            1.0,
            &a,
            GemmLayout::Trans,
            &b,
            GemmLayout::NoTrans,
            0.0,
            &mut c2,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    #[test]
    fn view_gemm_interleaved_permutation() {
        // A stored (M1, L, M2), read as (M1, M2) x L: a truly interleaved
        // row group that no transpose flag can express.
        let (m1, m2, l, n) = (3, 5, 4, 6);
        let shape = Shape::new(&[m1, l, m2]);
        let a = seq(shape.len());
        let b = seq(l * n);
        let av = MatView::permuted(&a, &shape, &[0, 2, 1], 2);
        let bv = MatView::from_matrix(&b, l, n, GemmLayout::NoTrans);
        let m = m1 * m2;
        let mut c1 = vec![0.0; m * n];
        dgemm_view(GemmConfig::default(), 1.0, &av, &bv, 0.0, &mut c1, None);
        // Reference: materialize the permuted A and run plain GEMM.
        let mut amat = vec![0.0; m * l];
        for i1 in 0..m1 {
            for i2 in 0..m2 {
                for p in 0..l {
                    amat[(i1 * m2 + i2) * l + p] = a[i1 * (l * m2) + p * m2 + i2];
                }
            }
        }
        let mut c2 = vec![0.0; m * n];
        naive_gemm(
            m,
            n,
            l,
            1.0,
            &amat,
            GemmLayout::NoTrans,
            &b,
            GemmLayout::NoTrans,
            0.0,
            &mut c2,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    #[test]
    fn caller_pack_bufs_are_used_and_match() {
        let (m, n, k) = (37, 29, 41);
        let a = seq(m * k);
        let b = seq(k * n);
        let av = MatView::from_matrix(&a, m, k, GemmLayout::NoTrans);
        let bv = MatView::from_matrix(&b, k, n, GemmLayout::NoTrans);
        let cfg = GemmConfig::default();
        let (an, bn) = pack_buf_elems(&cfg, m, n, k);
        // Deliberately dirty scratch: packing must fully overwrite or pad
        // every element the kernel reads.
        let mut apack = vec![7.5; an + 3];
        let mut bpack = vec![-3.25; bn];
        let mut c1 = vec![0.0; m * n];
        dgemm_view(
            cfg,
            1.0,
            &av,
            &bv,
            0.0,
            &mut c1,
            Some(PackBufs {
                apack: &mut apack,
                bpack: &mut bpack,
            }),
        );
        let mut c2 = vec![0.0; m * n];
        naive_gemm(
            m,
            n,
            k,
            1.0,
            &a,
            GemmLayout::NoTrans,
            &b,
            GemmLayout::NoTrans,
            0.0,
            &mut c2,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
        }
    }

    #[test]
    fn edge_tiles_read_only_valid_rows() {
        // Operand slices sized exactly: any read past `rows` would panic in
        // the safe indexing paths. Sweep every MR remainder (incl. rows <
        // MR) and NR remainders, threaded and not.
        for rows in [1, 2, 3, 5, 6, 7, 129, 130, 131] {
            for n in [1, 7, 8, 9] {
                let k = 10;
                check(
                    rows,
                    n,
                    k,
                    GemmLayout::NoTrans,
                    GemmLayout::NoTrans,
                    1.0,
                    0.0,
                );
                check(rows, n, k, GemmLayout::Trans, GemmLayout::NoTrans, 1.0, 1.0);
            }
        }
        check_with(
            GemmConfig::with_threads(2),
            131,
            9,
            70,
            GemmLayout::NoTrans,
            GemmLayout::Trans,
            1.0,
            0.0,
        );
    }

    #[test]
    fn threaded_matches_naive() {
        for threads in [2, 3, 4] {
            let cfg = GemmConfig::with_threads(threads);
            check_with(
                cfg,
                97,
                63,
                150,
                GemmLayout::NoTrans,
                GemmLayout::NoTrans,
                1.0,
                0.0,
            );
            check_with(
                cfg,
                97,
                63,
                150,
                GemmLayout::Trans,
                GemmLayout::NoTrans,
                2.0,
                1.0,
            );
            check_with(
                cfg,
                64,
                64,
                300,
                GemmLayout::NoTrans,
                GemmLayout::Trans,
                1.0,
                -0.5,
            );
            check_with(
                cfg,
                64,
                64,
                300,
                GemmLayout::Trans,
                GemmLayout::Trans,
                -1.0,
                0.0,
            );
        }
    }

    #[test]
    fn threaded_tiny_falls_back_inline() {
        // Far below MIN_FLOPS_PER_THREAD: must still be correct (and not
        // spawn MR-starved bands).
        check_with(
            GemmConfig::with_threads(8),
            3,
            3,
            3,
            GemmLayout::NoTrans,
            GemmLayout::NoTrans,
            1.0,
            0.0,
        );
    }

    #[test]
    fn zero_alpha_keeps_beta_c() {
        let a = seq(4);
        let b = seq(4);
        let mut c = vec![2.0; 4];
        dgemm(
            2,
            2,
            2,
            0.0,
            &a,
            GemmLayout::NoTrans,
            &b,
            GemmLayout::NoTrans,
            0.5,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn identity_multiply() {
        let n = 16;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = seq(n * n);
        let mut c = vec![0.0; n * n];
        dgemm(
            n,
            n,
            n,
            1.0,
            &eye,
            GemmLayout::NoTrans,
            &x,
            GemmLayout::NoTrans,
            0.0,
            &mut c,
        );
        for (u, v) in c.iter().zip(&x) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn active_microkernel_names_something() {
        let name = active_microkernel();
        assert!(name.contains("4x8"), "unexpected kernel name {name}");
    }
}
