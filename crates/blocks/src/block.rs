//! The [`Block`] type: a dense tile of doubles — a SIA *super number*.
//!
//! Blocks carry their shape and own their storage. The intrinsic scalar super
//! instructions of SIAL (assigning a scalar to a block fills it; multiplying
//! a block by a scalar scales every element; `+=` accumulates) are methods
//! here, so the interpreter in `sia-runtime` maps one SIAL statement to one
//! method call.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major block of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Block {
    shape: Shape,
    data: Vec<f64>,
}

impl Block {
    /// A zero-initialized block of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Block {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// A block with every element set to `value`.
    pub fn filled(shape: Shape, value: f64) -> Self {
        Block {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// A scalar block holding one value.
    pub fn scalar(value: f64) -> Self {
        Block {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Builds a block from a shape and existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_data(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), shape.len(), "data length does not match shape");
        Block { shape, data }
    }

    /// Builds a block by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.indices() {
            data.push(f(&idx[..shape.rank()]));
        }
        Block { shape, data }
    }

    /// The block's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Blocks are never empty (shapes have no zero extents).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read-only view of the raw data (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the block, returning its storage.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Element at multi-index `idx`.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at multi-index `idx`.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// The value of a scalar (rank-0 or single-element) block.
    ///
    /// # Panics
    /// Panics if the block has more than one element.
    pub fn as_scalar(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "block is not a scalar");
        self.data[0]
    }

    // ---- intrinsic scalar super instructions -------------------------------

    /// SIAL `blk = s`: every element receives the scalar.
    pub fn fill(&mut self, s: f64) {
        self.data.fill(s);
    }

    /// SIAL `blk = blk * s` (and `s * blk`): scale every element.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// SIAL `blk += other`: elementwise accumulation.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &Block) {
        assert_eq!(self.shape, other.shape, "accumulate: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// SIAL `blk -= other`: elementwise subtraction.
    pub fn subtract(&mut self, other: &Block) {
        assert_eq!(self.shape, other.shape, "subtract: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }

    /// `self += alpha * other` — the workhorse AXPY on blocks.
    pub fn axpy(&mut self, alpha: f64, other: &Block) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Elementwise (Hadamard) product, used by a few ACES III kernels.
    pub fn hadamard(&mut self, other: &Block) {
        assert_eq!(self.shape, other.shape, "hadamard: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= *b;
        }
    }

    // ---- reductions --------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Dot product with another block of the same shape (full contraction).
    pub fn dot(&self, other: &Block) -> f64 {
        assert_eq!(self.shape, other.shape, "dot: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// True if all elements of `self` and `other` agree within `tol`.
    pub fn approx_eq(&self, other: &Block, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({}, {} elems)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b123() -> Block {
        Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 3 + i[1]) as f64)
    }

    #[test]
    fn zeros_and_len() {
        let b = Block::zeros(Shape::new(&[3, 4]));
        assert_eq!(b.len(), 12);
        assert_eq!(b.sum(), 0.0);
    }

    #[test]
    fn from_fn_get_set() {
        let mut b = b123();
        assert_eq!(b.get(&[1, 2]), 5.0);
        b.set(&[1, 2], -1.0);
        assert_eq!(b.get(&[1, 2]), -1.0);
    }

    #[test]
    fn scalar_block_roundtrip() {
        let b = Block::scalar(3.25);
        assert_eq!(b.as_scalar(), 3.25);
        assert_eq!(b.shape().rank(), 0);
    }

    #[test]
    fn fill_scale_accumulate() {
        let mut a = Block::zeros(Shape::new(&[2, 2]));
        a.fill(2.0);
        a.scale(3.0);
        let b = Block::filled(Shape::new(&[2, 2]), 1.0);
        a.accumulate(&b);
        assert!(a.data().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Block::filled(Shape::new(&[4]), 1.0);
        let b = Block::filled(Shape::new(&[4]), 2.0);
        a.axpy(0.5, &b);
        assert!(a.data().iter().all(|&x| (x - 2.0).abs() < 1e-15));
    }

    #[test]
    fn subtract_and_hadamard() {
        let mut a = Block::filled(Shape::new(&[3]), 5.0);
        let b = Block::filled(Shape::new(&[3]), 2.0);
        a.subtract(&b);
        assert!(a.data().iter().all(|&x| x == 3.0));
        a.hadamard(&b);
        assert!(a.data().iter().all(|&x| x == 6.0));
    }

    #[test]
    fn reductions() {
        let b = b123(); // 0..=5
        assert_eq!(b.sum(), 15.0);
        assert_eq!(b.max_abs(), 5.0);
        let n2: f64 = (0..6).map(|x| (x * x) as f64).sum();
        assert!((b.norm() - n2.sqrt()).abs() < 1e-12);
        assert!((b.dot(&b) - n2).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Block::filled(Shape::new(&[2]), 1.0);
        let mut b = a.clone();
        b.data_mut()[0] += 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
    }

    #[test]
    #[should_panic]
    fn accumulate_shape_mismatch_panics() {
        let mut a = Block::zeros(Shape::new(&[2, 2]));
        let b = Block::zeros(Shape::new(&[4]));
        a.accumulate(&b);
    }

    #[test]
    #[should_panic]
    fn from_data_length_mismatch_panics() {
        let _ = Block::from_data(Shape::new(&[2, 2]), vec![0.0; 3]);
    }
}
