//! Strided matrix views: the bridge between permuted tensor operands and
//! the GEMM pack routines.
//!
//! A contraction wants each operand as a logical `rows x cols` matrix whose
//! row index runs over the free indices and whose column index runs over the
//! contracted ones (or vice versa for B). When the operand's stored index
//! order already matches that grouping the matrix is just a reinterpretation
//! of the buffer (`Identity` / `FoldedTranspose` in the planner's terms).
//! When it does not, the seed runtime materialized a permuted copy first — a
//! full extra memory sweep per operand.
//!
//! [`MatView`] removes that sweep: it describes the logical matrix as two
//! *axis groups* (row group, column group), each a list of source-tensor
//! dimensions with their row-major strides in GEMM order. Element `(i, j)`
//! lives at `data[row_offset(i) + col_offset(j)]`, where each group offset
//! decomposes its logical index over the group's dims mixed-radix style. The
//! pack routines in [`crate::gemm`] walk these offsets with incremental
//! cursors, so an arbitrarily permuted operand is packed straight from its
//! home buffer — permutation folds into the pack traversal for free.
//!
//! When a group's stride pattern is *uniform* (each dim's stride equals the
//! next-inner dim's stride times extent — i.e. the group is a contiguous
//! row-major sub-block), `offset(i)` collapses to `i * stride` and the pack
//! routines take the same streaming fast paths the plain `NoTrans`/`Trans`
//! layouts always had. `from_matrix` builds exactly those two classic views.

use crate::shape::{Shape, MAX_RANK};
use crate::GemmLayout;

/// One axis group of a [`MatView`]: a mixed-radix decomposition of a logical
/// index onto source-buffer offsets. Dim 0 varies slowest (GEMM order).
#[derive(Clone, Copy, Debug)]
pub struct AxisGroup {
    dims: [usize; MAX_RANK],
    strides: [usize; MAX_RANK],
    rank: usize,
    /// Total extent: product of `dims[..rank]` (1 for an empty group).
    len: usize,
    /// `Some(s)` iff `offset(i) == i * s` for all `i < len` (uniform
    /// strides); `Some(0)` for an empty group.
    uniform: Option<usize>,
}

impl AxisGroup {
    fn new(dims: &[usize], strides: &[usize]) -> Self {
        assert_eq!(dims.len(), strides.len());
        assert!(dims.len() <= MAX_RANK, "axis group rank exceeds MAX_RANK");
        let mut g = AxisGroup {
            dims: [1; MAX_RANK],
            strides: [0; MAX_RANK],
            rank: dims.len(),
            len: 1,
            uniform: None,
        };
        for (i, (&d, &s)) in dims.iter().zip(strides).enumerate() {
            assert!(d > 0, "zero-extent axis in view");
            g.dims[i] = d;
            g.strides[i] = s;
            g.len *= d;
        }
        g.uniform = g.detect_uniform();
        g
    }

    /// A group is uniform when consecutive logical indices step by a fixed
    /// stride: `strides[d] == strides[d+1] * dims[d+1]` for every adjacent
    /// pair. The innermost stride is then the step. Dims of extent 1 are
    /// transparent (their stride never multiplies an index).
    fn detect_uniform(&self) -> Option<usize> {
        // Drop extent-1 dims: they contribute nothing to offsets.
        let mut dims = [0usize; MAX_RANK];
        let mut strides = [0usize; MAX_RANK];
        let mut r = 0;
        for d in 0..self.rank {
            if self.dims[d] > 1 {
                dims[r] = self.dims[d];
                strides[r] = self.strides[d];
                r += 1;
            }
        }
        if r == 0 {
            return Some(0);
        }
        for d in 0..r - 1 {
            if strides[d] != strides[d + 1] * dims[d + 1] {
                return None;
            }
        }
        Some(strides[r - 1])
    }

    /// Total extent of the group.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the group has extent 1 (rank 0 or all dims extent 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 1
    }

    /// `Some(step)` when `offset(i) == i * step`.
    #[inline]
    pub fn uniform_stride(&self) -> Option<usize> {
        self.uniform
    }

    /// Source-buffer offset of logical index `i` (mixed-radix decompose).
    #[inline]
    pub fn offset(&self, mut i: usize) -> usize {
        if let Some(s) = self.uniform {
            return i * s;
        }
        let mut off = 0;
        for d in (0..self.rank).rev() {
            let ext = self.dims[d];
            off += (i % ext) * self.strides[d];
            i /= ext;
        }
        off
    }

    /// Starts an incremental walk at logical index `i`.
    #[inline]
    pub fn cursor(&self, i: usize) -> AxisCursor {
        let mut c = AxisCursor {
            dims: self.dims,
            strides: self.strides,
            rank: self.rank,
            idx: [0; MAX_RANK],
            off: 0,
        };
        c.seek(self, i);
        c
    }
}

/// Incremental odometer over one [`AxisGroup`]: yields source offsets of
/// consecutive logical indices without per-step divisions. `advance` is O(1)
/// amortized (it carries like an odometer), so packing a panel costs one
/// decompose per row plus one add per element.
#[derive(Clone, Copy, Debug)]
pub struct AxisCursor {
    dims: [usize; MAX_RANK],
    strides: [usize; MAX_RANK],
    rank: usize,
    idx: [usize; MAX_RANK],
    off: usize,
}

impl AxisCursor {
    /// Repositions the cursor at logical index `i`.
    #[inline]
    pub fn seek(&mut self, group: &AxisGroup, mut i: usize) {
        let mut off = 0;
        for d in (0..self.rank).rev() {
            let ext = group.dims[d];
            let id = i % ext;
            self.idx[d] = id;
            off += id * self.strides[d];
            i /= ext;
        }
        self.off = off;
    }

    /// Source offset of the current logical index.
    #[inline]
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Steps to the next logical index. Walking past the end of the group is
    /// allowed mid-carry but the resulting offset must not be read.
    #[inline]
    pub fn advance(&mut self) {
        for d in (0..self.rank).rev() {
            self.idx[d] += 1;
            self.off += self.strides[d];
            if self.idx[d] < self.dims[d] {
                return;
            }
            // Carry: unwind this digit and bump the next.
            self.off -= self.dims[d] * self.strides[d];
            self.idx[d] = 0;
        }
    }
}

/// A logical `rows x cols` matrix over strided storage. Element `(i, j)` is
/// `data[rows.offset(i) + cols.offset(j)]`. See the module docs for how this
/// folds operand permutations into GEMM packing.
#[derive(Clone, Copy, Debug)]
pub struct MatView<'a> {
    data: &'a [f64],
    rows: AxisGroup,
    cols: AxisGroup,
}

impl<'a> MatView<'a> {
    /// Views a plain row-major `rows x cols` matrix (`NoTrans`) or the
    /// transpose of a stored `cols x rows` matrix (`Trans`). Both are
    /// single-dim uniform groups, so packing streams exactly as the seed's
    /// layout-specialized routines did.
    pub fn from_matrix(data: &'a [f64], rows: usize, cols: usize, layout: GemmLayout) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix view dimension mismatch");
        let (rs, cs) = match layout {
            GemmLayout::NoTrans => (cols, 1), // data[i*cols + j]
            GemmLayout::Trans => (1, rows),   // data[j*rows + i]
        };
        MatView {
            data,
            rows: AxisGroup::new(&[rows.max(1)], &[rs]),
            cols: AxisGroup::new(&[cols.max(1)], &[cs]),
        }
    }

    /// Views a stored tensor through an index permutation, split into a row
    /// group and a column group — the permute-on-pack constructor.
    ///
    /// `perm[d]` names the source axis that provides GEMM-order axis `d`
    /// (the same convention as [`crate::permute::permute`]: output axis `d`
    /// reads source axis `perm[d]`). Axes `perm[..split]` form the row
    /// group, `perm[split..]` the column group; within each group, earlier
    /// axes vary slower.
    pub fn permuted(data: &'a [f64], shape: &Shape, perm: &[usize], split: usize) -> Self {
        assert_eq!(perm.len(), shape.rank(), "permutation rank mismatch");
        assert_eq!(data.len(), shape.len(), "tensor view length mismatch");
        assert!(split <= perm.len(), "row/col split out of range");
        let strides = shape.strides();
        let dims = shape.dims();
        let build = |axes: &[usize]| {
            let mut d = [0usize; MAX_RANK];
            let mut s = [0usize; MAX_RANK];
            for (i, &ax) in axes.iter().enumerate() {
                d[i] = dims[ax] as usize;
                s[i] = strides[ax];
            }
            AxisGroup::new(&d[..axes.len()], &s[..axes.len()])
        };
        let rows = build(&perm[..split]);
        let cols = build(&perm[split..]);
        MatView { data, rows, cols }
    }

    /// The underlying storage.
    #[inline]
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Logical row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Logical column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols.len()
    }

    /// Row axis group.
    #[inline]
    pub fn row_group(&self) -> &AxisGroup {
        &self.rows
    }

    /// Column axis group.
    #[inline]
    pub fn col_group(&self) -> &AxisGroup {
        &self.cols
    }

    /// Element accessor (tests / reference paths; pack uses cursors).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.rows.offset(i) + self.cols.offset(j)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permute::permute;
    use crate::Block;

    fn filled(shape: Shape) -> Block {
        let mut i = 0.0;
        Block::from_fn(shape, |_| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn from_matrix_matches_indexing() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let v = MatView::from_matrix(&data, 3, 4, GemmLayout::NoTrans);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 4);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(v.at(i, j), data[i * 4 + j]);
            }
        }
        // Trans: logical (i, j) of the 4x3 transpose reads data[j*4 + i]...
        let t = MatView::from_matrix(&data, 4, 3, GemmLayout::Trans);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(t.at(i, j), data[j * 4 + i]);
            }
        }
    }

    #[test]
    fn uniform_stride_detection() {
        // Row-major (2, 3, 4): strides (12, 4, 1).
        let b = filled(Shape::new(&[2, 3, 4]));
        // Grouping the leading two axes: uniform (12 == 4*3? no — 12, 4 with
        // dims 2, 3: uniform needs strides[0] == strides[1]*dims[1] = 12 ✓).
        let v = MatView::permuted(b.data(), b.shape(), &[0, 1, 2], 2);
        assert_eq!(v.row_group().uniform_stride(), Some(4));
        assert_eq!(v.col_group().uniform_stride(), Some(1));
        // Swapped leading axes: (1, 0) group has strides (4, 12) — not
        // uniform.
        let w = MatView::permuted(b.data(), b.shape(), &[1, 0, 2], 2);
        assert_eq!(w.row_group().uniform_stride(), None);
        assert_eq!(w.col_group().uniform_stride(), Some(1));
        // Empty row group (full contraction): uniform Some(0).
        let e = MatView::permuted(b.data(), b.shape(), &[0, 1, 2], 0);
        assert_eq!(e.rows(), 1);
        assert_eq!(e.row_group().uniform_stride(), Some(0));
    }

    #[test]
    fn extent_one_dims_are_transparent() {
        // (2, 1, 3) with a middle singleton: grouping all three axes is
        // still uniform because the singleton contributes no offsets.
        let b = filled(Shape::new(&[2, 1, 3]));
        let v = MatView::permuted(b.data(), b.shape(), &[0, 1, 2], 3);
        assert_eq!(v.row_group().uniform_stride(), Some(1));
        assert_eq!(v.rows(), 6);
    }

    #[test]
    fn permuted_view_matches_materialized_permute() {
        let b = filled(Shape::new(&[2, 3, 4, 5]));
        for (perm, split) in [
            (vec![2, 0, 3, 1], 2usize),
            (vec![3, 1, 2, 0], 1),
            (vec![1, 0, 2, 3], 3),
            (vec![0, 1, 2, 3], 2),
        ] {
            let p = permute(&b, &perm);
            let v = MatView::permuted(b.data(), b.shape(), &perm, split);
            let rows = v.rows();
            let cols = v.cols();
            assert_eq!(rows * cols, b.shape().len());
            for i in 0..rows {
                for j in 0..cols {
                    assert_eq!(
                        v.at(i, j),
                        p.data()[i * cols + j],
                        "perm {perm:?} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn cursor_walks_match_offsets() {
        let b = filled(Shape::new(&[3, 4, 5]));
        let v = MatView::permuted(b.data(), b.shape(), &[2, 0, 1], 1);
        let g = v.col_group();
        let mut c = g.cursor(0);
        for i in 0..g.len() {
            assert_eq!(c.offset(), g.offset(i), "index {i}");
            c.advance();
        }
        // Seek mid-way matches too.
        let mut c2 = g.cursor(7);
        assert_eq!(c2.offset(), g.offset(7));
        c2.advance();
        assert_eq!(c2.offset(), g.offset(8));
    }
}
