//! Block permutation — SIAL's permuting assignment.
//!
//! A SIAL statement such as `V1(K,J,I) = V2(I,J,K)` permutes the source block
//! and assigns it. We express the permutation as `perm`, where output
//! dimension `d` reads from input dimension `perm[d]`:
//! `out[i0,..,ik] = in[i_{perm[0]}, .., i_{perm[k]}]` — i.e. `out` axis `d`
//! ranges over `in` axis `perm[d]`.

use crate::block::Block;
use crate::shape::MAX_RANK;

/// True if `perm` is `[0, 1, .., n-1]`.
pub fn is_identity_permutation(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

/// Inverse permutation: `invert(perm)[perm[i]] == i`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len(), "invalid permutation entry {p}");
        assert!(inv[p] == usize::MAX, "duplicate permutation entry {p}");
        inv[p] = i;
    }
    inv
}

/// Applies `perm` to a list: `result[i] = items[perm[i]]`.
pub fn apply_permutation<T: Copy>(perm: &[usize], items: &[T]) -> Vec<T> {
    perm.iter().map(|&p| items[p]).collect()
}

/// Returns a new block `out` with `out` axis `d` ranging over `input` axis
/// `perm[d]`.
///
/// The identity permutation degenerates to a clone. The loop is ordered so
/// writes to the output are sequential (good for the destination cache line
/// stream), with gather-reads from the source.
///
/// # Panics
/// Panics if `perm.len() != input.rank()` or `perm` is not a permutation.
pub fn permute(input: &Block, perm: &[usize]) -> Block {
    let rank = input.shape().rank();
    assert_eq!(perm.len(), rank, "permutation rank mismatch");
    if is_identity_permutation(perm) {
        return input.clone();
    }
    // Validate (also computed for the src stride gather below).
    let _ = invert_permutation(perm);

    let out_shape = input.shape().permuted(perm);
    let in_strides = input.shape().strides();

    // Stride of output axis d in the *input* data.
    let mut gather = [0usize; MAX_RANK];
    for (d, &p) in perm.iter().enumerate() {
        gather[d] = in_strides[p];
    }

    let src = input.data();
    let mut out = vec![0.0f64; out_shape.len()];

    if rank == 0 {
        out[0] = src[0];
        return Block::from_data(out_shape, out);
    }

    // Odometer over the output shape, tracking the gathered source offset
    // incrementally instead of recomputing a dot product per element.
    let mut idx = [0usize; MAX_RANK];
    let mut src_off = 0usize;
    for slot in out.iter_mut() {
        *slot = src[src_off];
        // Advance odometer (last axis fastest).
        let mut d = rank;
        loop {
            if d == 0 {
                break;
            }
            d -= 1;
            idx[d] += 1;
            src_off += gather[d];
            if idx[d] < out_shape.dim(d) {
                break;
            }
            src_off -= gather[d] * idx[d];
            idx[d] = 0;
        }
    }
    Block::from_data(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn identity_is_clone() {
        let b = Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 3 + i[1]) as f64);
        let p = permute(&b, &[0, 1]);
        assert_eq!(b, p);
    }

    #[test]
    fn transpose_2d() {
        let b = Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 10 + i[1]) as f64);
        let t = permute(&b, &[1, 0]);
        assert_eq!(t.shape().dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[j, i]), b.get(&[i, j]));
            }
        }
    }

    #[test]
    fn rank4_rotation() {
        let s = Shape::new(&[2, 3, 4, 5]);
        let b = Block::from_fn(s, |i| (i[0] * 1000 + i[1] * 100 + i[2] * 10 + i[3]) as f64);
        let perm = [3, 1, 0, 2];
        let p = permute(&b, &perm);
        assert_eq!(p.shape().dims(), &[5, 3, 2, 4]);
        for idx in p.shape().indices() {
            let o = &idx[..4];
            // out[o] == in[o applied through inverse]: in index at axis perm[d] is o[d]
            let mut src = [0usize; 4];
            for d in 0..4 {
                src[perm[d]] = o[d];
            }
            assert_eq!(p.get(o), b.get(&src));
        }
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        let s = Shape::new(&[3, 4, 2]);
        let b = Block::from_fn(s, |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let perm = [2, 0, 1];
        let inv = invert_permutation(&perm);
        let round = permute(&permute(&b, &perm), &inv);
        assert_eq!(b, round);
    }

    #[test]
    fn scalar_permute() {
        let b = Block::scalar(7.0);
        let p = permute(&b, &[]);
        assert_eq!(p.as_scalar(), 7.0);
    }

    #[test]
    fn apply_permutation_list() {
        assert_eq!(apply_permutation(&[2, 0, 1], &[10, 20, 30]), vec![30, 10, 20]);
    }

    #[test]
    #[should_panic]
    fn bad_permutation_panics() {
        let b = Block::zeros(Shape::new(&[2, 2]));
        let _ = permute(&b, &[0, 0]);
    }

    #[test]
    fn invert_roundtrip() {
        let p = [3, 0, 2, 1];
        let inv = invert_permutation(&p);
        for i in 0..4 {
            assert_eq!(inv[p[i]], i);
        }
    }
}
