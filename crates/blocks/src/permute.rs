//! Block permutation — SIAL's permuting assignment.
//!
//! A SIAL statement such as `V1(K,J,I) = V2(I,J,K)` permutes the source block
//! and assigns it. We express the permutation as `perm`, where output
//! dimension `d` reads from input dimension `perm[d]`:
//! `out[i0,..,ik] = in[i_{perm[0]}, .., i_{perm[k]}]` — i.e. `out` axis `d`
//! ranges over `in` axis `perm[d]`.
//!
//! Since permute-on-pack landed in the GEMM (see [`crate::view`]), this
//! kernel no longer runs on contraction *inputs* — those are read in place
//! through strided views. It remains the engine for SIAL's explicit permute
//! super instruction, for contraction *outputs* that need reordering, and
//! for `no_fold` ablation runs.

use crate::block::Block;
use crate::shape::MAX_RANK;

/// True if `perm` is `[0, 1, .., n-1]`.
pub fn is_identity_permutation(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

/// Inverse permutation: `invert(perm)[perm[i]] == i`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len(), "invalid permutation entry {p}");
        assert!(inv[p] == usize::MAX, "duplicate permutation entry {p}");
        inv[p] = i;
    }
    inv
}

/// Applies `perm` to a list: `result[i] = items[perm[i]]`.
pub fn apply_permutation<T: Copy>(perm: &[usize], items: &[T]) -> Vec<T> {
    perm.iter().map(|&p| items[p]).collect()
}

/// Returns a new block `out` with `out` axis `d` ranging over `input` axis
/// `perm[d]`.
///
/// The identity permutation degenerates to a clone. See [`permute_into`] for
/// the allocation-free kernel underneath.
///
/// # Panics
/// Panics if `perm.len() != input.rank()` or `perm` is not a permutation.
pub fn permute(input: &Block, perm: &[usize]) -> Block {
    if is_identity_permutation(perm) {
        assert_eq!(
            perm.len(),
            input.shape().rank(),
            "permutation rank mismatch"
        );
        return input.clone();
    }
    let out_shape = input.shape().permuted(perm);
    let mut out = vec![0.0f64; out_shape.len()];
    permute_into(input, perm, &mut out);
    Block::from_data(out_shape, out)
}

/// Cache-blocked permutation into caller-provided storage (`dst.len()` must
/// equal `input.len()`), enabling scratch reuse from a block pool.
///
/// Three tiers, picked per call:
/// 1. a trailing run of unpermuted axes is moved with `copy_from_slice`
///    (identity degenerates to one memcpy);
/// 2. a swap of the innermost two axes runs as a tiled 2D transpose, so both
///    source and destination touch whole cache lines per tile;
/// 3. anything else falls back to a strided gather whose innermost loop is a
///    fixed-stride sweep over the last output axis.
///
/// # Panics
/// Panics if `perm.len() != input.rank()`, `perm` is not a permutation, or
/// `dst` has the wrong length.
pub fn permute_into(input: &Block, perm: &[usize], dst: &mut [f64]) {
    let rank = input.shape().rank();
    assert_eq!(perm.len(), rank, "permutation rank mismatch");
    let _ = invert_permutation(perm); // validate
    assert_eq!(dst.len(), input.len(), "destination length mismatch");

    let src = input.data();
    if rank == 0 {
        dst[0] = src[0];
        return;
    }

    let out_shape = input.shape().permuted(perm);
    let in_strides = input.shape().strides();
    // Stride of output axis d in the *input* data.
    let mut gather = [0usize; MAX_RANK];
    for (d, &p) in perm.iter().enumerate() {
        gather[d] = in_strides[p];
    }

    // Tier 1: trailing axes that stay in place form contiguous runs shared
    // by source and destination.
    let mut fixed_tail = 0;
    while fixed_tail < rank && perm[rank - 1 - fixed_tail] == rank - 1 - fixed_tail {
        fixed_tail += 1;
    }
    if fixed_tail == rank {
        dst.copy_from_slice(src);
        return;
    }
    if fixed_tail > 0 {
        let run: usize = (rank - fixed_tail..rank)
            .map(|d| input.shape().dim(d))
            .product();
        if run >= 4 {
            let outer_rank = rank - fixed_tail;
            for_each_outer(&out_shape, &gather, outer_rank, |out_off, src_off| {
                dst[out_off * run..(out_off + 1) * run]
                    .copy_from_slice(&src[src_off..src_off + run]);
            });
            return;
        }
    }

    // Tier 2: innermost two axes swapped — a 2D transpose of contiguous
    // (r x c) slabs, tiled so reads and writes both stay cache-resident.
    if rank >= 2 && perm[rank - 1] == rank - 2 && perm[rank - 2] == rank - 1 {
        const TILE: usize = 32;
        let r = input.shape().dim(rank - 2); // source rows (stride c)
        let c = input.shape().dim(rank - 1); // source cols (stride 1)
        let slab = r * c;
        for_each_outer(&out_shape, &gather, rank - 2, |out_off, src_off| {
            let d = &mut dst[out_off * slab..(out_off + 1) * slab];
            let s = &src[src_off..src_off + slab];
            let mut jt = 0;
            while jt < c {
                let jb = TILE.min(c - jt);
                let mut it = 0;
                while it < r {
                    let ib = TILE.min(r - it);
                    for j in jt..jt + jb {
                        for i in it..it + ib {
                            d[j * r + i] = s[i * c + j];
                        }
                    }
                    it += ib;
                }
                jt += jb;
            }
        });
        return;
    }

    // Tier 3: strided gather, innermost loop hoisted out of the odometer.
    let n_last = out_shape.dim(rank - 1);
    let g_last = gather[rank - 1];
    for_each_outer(&out_shape, &gather, rank - 1, |out_off, src_off| {
        let row = &mut dst[out_off * n_last..(out_off + 1) * n_last];
        let mut s = src_off;
        for slot in row.iter_mut() {
            *slot = src[s];
            s += g_last;
        }
    });
}

/// Drives an odometer over the first `outer_rank` axes of `out_shape`,
/// calling `body(outer_index_linear, src_offset)` for each setting, where
/// `src_offset` is the gathered base offset into the source data.
fn for_each_outer(
    out_shape: &crate::shape::Shape,
    gather: &[usize; MAX_RANK],
    outer_rank: usize,
    mut body: impl FnMut(usize, usize),
) {
    let outer_len: usize = (0..outer_rank).map(|d| out_shape.dim(d)).product();
    let mut idx = [0usize; MAX_RANK];
    let mut src_off = 0usize;
    for out_off in 0..outer_len {
        body(out_off, src_off);
        let mut d = outer_rank;
        loop {
            if d == 0 {
                break;
            }
            d -= 1;
            idx[d] += 1;
            src_off += gather[d];
            if idx[d] < out_shape.dim(d) {
                break;
            }
            src_off -= gather[d] * idx[d];
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn identity_is_clone() {
        let b = Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 3 + i[1]) as f64);
        let p = permute(&b, &[0, 1]);
        assert_eq!(b, p);
    }

    #[test]
    fn transpose_2d() {
        let b = Block::from_fn(Shape::new(&[2, 3]), |i| (i[0] * 10 + i[1]) as f64);
        let t = permute(&b, &[1, 0]);
        assert_eq!(t.shape().dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[j, i]), b.get(&[i, j]));
            }
        }
    }

    #[test]
    fn rank4_rotation() {
        let s = Shape::new(&[2, 3, 4, 5]);
        let b = Block::from_fn(s, |i| (i[0] * 1000 + i[1] * 100 + i[2] * 10 + i[3]) as f64);
        let perm = [3, 1, 0, 2];
        let p = permute(&b, &perm);
        assert_eq!(p.shape().dims(), &[5, 3, 2, 4]);
        for idx in p.shape().indices() {
            let o = &idx[..4];
            // out[o] == in[o applied through inverse]: in index at axis perm[d] is o[d]
            let mut src = [0usize; 4];
            for d in 0..4 {
                src[perm[d]] = o[d];
            }
            assert_eq!(p.get(o), b.get(&src));
        }
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        let s = Shape::new(&[3, 4, 2]);
        let b = Block::from_fn(s, |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let perm = [2, 0, 1];
        let inv = invert_permutation(&perm);
        let round = permute(&permute(&b, &perm), &inv);
        assert_eq!(b, round);
    }

    #[test]
    fn scalar_permute() {
        let b = Block::scalar(7.0);
        let p = permute(&b, &[]);
        assert_eq!(p.as_scalar(), 7.0);
    }

    #[test]
    fn apply_permutation_list() {
        assert_eq!(
            apply_permutation(&[2, 0, 1], &[10, 20, 30]),
            vec![30, 10, 20]
        );
    }

    #[test]
    #[should_panic]
    fn bad_permutation_panics() {
        let b = Block::zeros(Shape::new(&[2, 2]));
        let _ = permute(&b, &[0, 0]);
    }

    #[test]
    fn invert_roundtrip() {
        let p = [3, 0, 2, 1];
        let inv = invert_permutation(&p);
        for i in 0..4 {
            assert_eq!(inv[p[i]], i);
        }
    }

    /// Every rank-4 permutation, on a shape big enough to cross the 2D
    /// transpose tile boundary and exercise all three kernel tiers.
    #[test]
    fn all_rank4_permutations_match_gather() {
        let s = Shape::new(&[3, 5, 34, 33]);
        let b = Block::from_fn(s, |i| {
            (i[0] * 10_000 + i[1] * 1000 + i[2] * 50 + i[3]) as f64
        });
        let mut perm = [0usize; 4];
        let mut perms = Vec::new();
        permutations(&mut perm, &mut [false; 4], 0, &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            let p = permute(&b, &perm);
            assert_eq!(p.len(), b.len(), "perm {perm:?}");
            for idx in p.shape().indices() {
                let o = &idx[..4];
                let mut srci = [0usize; 4];
                for d in 0..4 {
                    srci[perm[d]] = o[d];
                }
                assert_eq!(p.get(o), b.get(&srci), "perm {perm:?} at {o:?}");
            }
        }
    }

    fn permutations(
        cur: &mut [usize; 4],
        used: &mut [bool; 4],
        d: usize,
        out: &mut Vec<[usize; 4]>,
    ) {
        if d == 4 {
            out.push(*cur);
            return;
        }
        for v in 0..4 {
            if !used[v] {
                used[v] = true;
                cur[d] = v;
                permutations(cur, used, d + 1, out);
                used[v] = false;
            }
        }
    }

    #[test]
    fn permute_into_matches_permute() {
        let s = Shape::new(&[4, 6, 5]);
        let b = Block::from_fn(s, |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        for perm in [
            [0, 1, 2],
            [2, 1, 0],
            [1, 0, 2],
            [0, 2, 1],
            [2, 0, 1],
            [1, 2, 0],
        ] {
            let expect = permute(&b, &perm);
            let mut dst = vec![f64::NAN; b.len()];
            permute_into(&b, &perm, &mut dst);
            assert_eq!(dst, expect.data(), "perm {perm:?}");
        }
    }

    #[test]
    #[should_panic]
    fn permute_into_wrong_len_panics() {
        let b = Block::zeros(Shape::new(&[2, 2]));
        let mut dst = vec![0.0; 3];
        permute_into(&b, &[1, 0], &mut dst);
    }
}
