//! Slices and insertions — the data movement behind SIAL subindices.
//!
//! SIAL's `Xii(ii,j) = Xi(ii,j)` copies the subblock of `Xi` selected by the
//! subindex `ii` into the smaller block `Xii` (a *slice*); the reverse
//! assignment writes it back (an *insertion*). A [`SliceSpec`] captures the
//! per-dimension `(offset, extent)` window the subindex value selects.

use crate::block::Block;
use crate::shape::{Shape, MAX_RANK};
use std::fmt;

/// A rectangular window within a block: `offset[d] .. offset[d] + extent[d]`
/// in each dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceSpec {
    offsets: Vec<usize>,
    extents: Vec<usize>,
}

/// Errors constructing or applying a slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// Spec rank differs from block rank.
    RankMismatch { spec: usize, block: usize },
    /// A window runs past the block boundary.
    OutOfBounds { dim: usize },
    /// Source block shape does not equal the window extents (insertion).
    ShapeMismatch,
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::RankMismatch { spec, block } => {
                write!(f, "slice rank {spec} does not match block rank {block}")
            }
            SliceError::OutOfBounds { dim } => {
                write!(f, "slice window exceeds block bounds in dimension {dim}")
            }
            SliceError::ShapeMismatch => write!(f, "source shape does not match slice extents"),
        }
    }
}

impl std::error::Error for SliceError {}

impl SliceSpec {
    /// Builds a spec from parallel offset/extent lists.
    ///
    /// # Panics
    /// Panics if lengths differ, exceed [`MAX_RANK`], or any extent is zero.
    pub fn new(offsets: &[usize], extents: &[usize]) -> Self {
        assert_eq!(
            offsets.len(),
            extents.len(),
            "offset/extent length mismatch"
        );
        assert!(offsets.len() <= MAX_RANK);
        assert!(extents.iter().all(|&e| e > 0), "zero slice extent");
        SliceSpec {
            offsets: offsets.to_vec(),
            extents: extents.to_vec(),
        }
    }

    /// The window covering an entire block of shape `shape` (identity slice).
    pub fn full(shape: &Shape) -> Self {
        SliceSpec {
            offsets: vec![0; shape.rank()],
            extents: shape.dims().iter().map(|&d| d as usize).collect(),
        }
    }

    /// Window rank.
    pub fn rank(&self) -> usize {
        self.offsets.len()
    }

    /// Per-dimension window starts.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Per-dimension window lengths.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// The shape of the extracted slice.
    pub fn slice_shape(&self) -> Shape {
        Shape::new(&self.extents)
    }

    fn validate(&self, shape: &Shape) -> Result<(), SliceError> {
        if self.rank() != shape.rank() {
            return Err(SliceError::RankMismatch {
                spec: self.rank(),
                block: shape.rank(),
            });
        }
        for d in 0..self.rank() {
            if self.offsets[d] + self.extents[d] > shape.dim(d) {
                return Err(SliceError::OutOfBounds { dim: d });
            }
        }
        Ok(())
    }
}

/// Extracts the window `spec` of `block` into a new, densely packed block —
/// the SIAL slicing assignment.
pub fn extract_slice(block: &Block, spec: &SliceSpec) -> Result<Block, SliceError> {
    spec.validate(block.shape())?;
    let out_shape = spec.slice_shape();
    let rank = spec.rank();
    if rank == 0 {
        return Ok(block.clone());
    }
    let src_strides = block.shape().strides();
    let mut out = Vec::with_capacity(out_shape.len());

    // Copy contiguous runs along the last dimension.
    let run = spec.extents[rank - 1];
    let outer_extents = &spec.extents[..rank - 1];
    let mut counters = vec![0usize; rank - 1];
    loop {
        let mut base = spec.offsets[rank - 1] * src_strides[rank - 1];
        for d in 0..rank - 1 {
            base += (spec.offsets[d] + counters[d]) * src_strides[d];
        }
        out.extend_from_slice(&block.data()[base..base + run]);
        // Advance outer odometer.
        let mut d = rank - 1;
        loop {
            if d == 0 {
                return Ok(Block::from_data(out_shape, out));
            }
            d -= 1;
            counters[d] += 1;
            if counters[d] < outer_extents[d] {
                break;
            }
            counters[d] = 0;
        }
    }
}

/// Writes `src` into the window `spec` of `dest` — the SIAL insertion
/// assignment. `src.shape()` must equal the window extents.
pub fn insert_slice(dest: &mut Block, spec: &SliceSpec, src: &Block) -> Result<(), SliceError> {
    spec.validate(dest.shape())?;
    if src.shape() != &spec.slice_shape() {
        return Err(SliceError::ShapeMismatch);
    }
    let rank = spec.rank();
    if rank == 0 {
        dest.data_mut()[0] = src.data()[0];
        return Ok(());
    }
    let dst_strides = dest.shape().strides();
    let run = spec.extents[rank - 1];
    let outer_extents = &spec.extents[..rank - 1];
    let mut counters = vec![0usize; rank - 1];
    let mut src_off = 0usize;
    loop {
        let mut base = spec.offsets[rank - 1] * dst_strides[rank - 1];
        for d in 0..rank - 1 {
            base += (spec.offsets[d] + counters[d]) * dst_strides[d];
        }
        dest.data_mut()[base..base + run].copy_from_slice(&src.data()[src_off..src_off + run]);
        src_off += run;
        let mut d = rank - 1;
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            counters[d] += 1;
            if counters[d] < outer_extents[d] {
                break;
            }
            counters[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(dims: &[usize]) -> Block {
        let shape = Shape::new(dims);
        let mut n = 0.0;
        Block::from_fn(shape, |_| {
            n += 1.0;
            n
        })
    }

    #[test]
    fn paper_example_16x16_to_4x16() {
        // Fig 1 of the paper: Xii(ii,j) = Xi(ii,j) takes a 4x16 slice of a
        // 16x16 block.
        let xi = numbered(&[16, 16]);
        let spec = SliceSpec::new(&[4, 0], &[4, 16]);
        let xii = extract_slice(&xi, &spec).unwrap();
        assert_eq!(xii.shape().dims(), &[4, 16]);
        for r in 0..4 {
            for c in 0..16 {
                assert_eq!(xii.get(&[r, c]), xi.get(&[r + 4, c]));
            }
        }
    }

    #[test]
    fn insert_roundtrip_is_identity_on_window() {
        let mut dst = numbered(&[6, 5, 4]);
        let orig = dst.clone();
        let spec = SliceSpec::new(&[1, 2, 0], &[3, 2, 4]);
        let sl = extract_slice(&dst, &spec).unwrap();
        insert_slice(&mut dst, &spec, &sl).unwrap();
        assert_eq!(dst, orig);
    }

    #[test]
    fn insert_changes_only_window() {
        let mut dst = Block::zeros(Shape::new(&[4, 4]));
        let src = Block::filled(Shape::new(&[2, 2]), 9.0);
        let spec = SliceSpec::new(&[1, 1], &[2, 2]);
        insert_slice(&mut dst, &spec, &src).unwrap();
        let mut want = Block::zeros(Shape::new(&[4, 4]));
        for r in 1..3 {
            for c in 1..3 {
                want.set(&[r, c], 9.0);
            }
        }
        assert_eq!(dst, want);
    }

    #[test]
    fn full_slice_is_clone() {
        let b = numbered(&[3, 4]);
        let spec = SliceSpec::full(b.shape());
        assert_eq!(extract_slice(&b, &spec).unwrap(), b);
    }

    #[test]
    fn rank1_slice() {
        let b = numbered(&[10]);
        let spec = SliceSpec::new(&[3], &[4]);
        let s = extract_slice(&b, &spec).unwrap();
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let b = numbered(&[4, 4]);
        let spec = SliceSpec::new(&[2, 0], &[3, 4]);
        assert_eq!(
            extract_slice(&b, &spec).unwrap_err(),
            SliceError::OutOfBounds { dim: 0 }
        );
    }

    #[test]
    fn rank_mismatch_detected() {
        let b = numbered(&[4, 4]);
        let spec = SliceSpec::new(&[0], &[2]);
        assert!(matches!(
            extract_slice(&b, &spec),
            Err(SliceError::RankMismatch { .. })
        ));
    }

    #[test]
    fn insertion_shape_mismatch_detected() {
        let mut b = numbered(&[4, 4]);
        let spec = SliceSpec::new(&[0, 0], &[2, 2]);
        let src = Block::zeros(Shape::new(&[2, 3]));
        assert_eq!(
            insert_slice(&mut b, &spec, &src).unwrap_err(),
            SliceError::ShapeMismatch
        );
    }
}
