//! # sia-blocks — super numbers and block super instructions
//!
//! The Super Instruction Architecture (SIA) expresses tensor algebra in terms
//! of *blocks* (the paper calls them *super numbers*): dense tiles of a large
//! multidimensional array, produced by segmenting every dimension. This crate
//! is the data substrate of the SIA: it defines the block type and the
//! computational super instructions that operate on blocks — contraction,
//! permutation, slicing/insertion (for SIAL subindices), and elementwise
//! arithmetic — plus the size-classed block pool the SIP uses to manage
//! worker memory.
//!
//! Everything here is strictly *local* computation: per the paper, a super
//! instruction "takes one or two blocks as input and generates a new block as
//! output and does not involve communication". Communication lives in
//! `sia-fabric`; orchestration lives in `sia-runtime`.
//!
//! ```
//! use sia_blocks::{Block, Shape, contract, ContractionPlan};
//!
//! // C(m,i) = sum_l A(m,l) * B(l,i): a plain matrix product expressed as a
//! // tensor contraction between two rank-2 blocks.
//! let a = Block::filled(Shape::new(&[4, 3]), 1.0);
//! let b = Block::filled(Shape::new(&[3, 5]), 2.0);
//! let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
//! let c = contract(&plan, &a, &b);
//! assert_eq!(c.shape().dims(), &[4, 5]);
//! assert!((c.get(&[0, 0]) - 6.0).abs() < 1e-12);
//! ```

pub mod block;
pub mod contract;
pub mod gemm;
pub mod handle;
pub mod permute;
pub mod pool;
pub mod shape;
pub mod slice;
pub mod view;

pub use block::Block;
pub use contract::{
    contract, contract_into, contract_into_ctx, naive_contract, ContractCtx, ContractError,
    ContractStats, ContractionPlan, OperandFold, PackStats,
};
pub use gemm::{
    active_microkernel, dgemm, dgemm_view, dgemm_with, pack_buf_elems, GemmConfig, GemmLayout,
    PackBufs,
};
pub use handle::BlockHandle;
pub use permute::{
    apply_permutation, invert_permutation, is_identity_permutation, permute, permute_into,
};
pub use pool::{BlockPool, PoolConfig, PoolStats, PooledBlock};
pub use shape::{Shape, MAX_RANK};
pub use slice::{extract_slice, insert_slice, SliceError, SliceSpec};
pub use view::{AxisCursor, AxisGroup, MatView};
