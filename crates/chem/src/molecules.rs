//! The evaluation molecules of the paper, as problem-size descriptors.
//!
//! The SIA cares about a molecule only through the dimensions it induces:
//! `n_occ` occupied orbitals (N electrons / 2, or the α count for open
//! shells) and `n_ao` basis functions. The descriptors below use the
//! molecular formulas printed in the paper and basis sizes consistent with
//! its statements (the diamond nanocrystal's 2944 functions is verbatim from
//! Figure 6's caption; the others follow the "typically n = 10 N" rule of
//! §II with era-typical basis sets).

/// A molecule/basis pair defining problem dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Molecule {
    /// Display name.
    pub name: &'static str,
    /// Molecular formula as printed in the paper.
    pub formula: &'static str,
    /// Number of electrons.
    pub electrons: u32,
    /// Occupied orbitals driving the method's o-dimension.
    pub n_occ: u32,
    /// Basis functions (atomic orbitals) driving the n-dimension.
    pub n_ao: u32,
    /// Open shell (UHF methods in the paper's Figure 7)?
    pub open_shell: bool,
}

impl Molecule {
    /// Virtual orbitals.
    pub fn n_virt(&self) -> u32 {
        self.n_ao - self.n_occ
    }

    /// Segment counts for a segment size: `(occ_segs, ao_segs, virt_segs)`.
    pub fn segments(&self, seg: u32) -> (u32, u32, u32) {
        let ceil = |x: u32| x.div_ceil(seg).max(1);
        (ceil(self.n_occ), ceil(self.n_ao), ceil(self.n_virt()))
    }

    /// Bytes of one copy of the T2 amplitudes `(o²·v²)` — the paper's §II
    /// sizing example.
    pub fn t2_bytes(&self) -> u64 {
        let o = self.n_occ as u64;
        let v = self.n_virt() as u64;
        o * o * v * v * 8
    }

    /// A scaled-down copy for real-mode runs: divides both dimensions,
    /// keeping the occ:virt ratio.
    pub fn scaled(&self, divisor: u32) -> Molecule {
        Molecule {
            n_occ: (self.n_occ / divisor).max(1),
            n_ao: (self.n_ao / divisor).max(2),
            ..*self
        }
    }
}

/// Luciferin — Figure 2 (RHF CCSD on the Sun Opteron cluster).
pub const LUCIFERIN: Molecule = Molecule {
    name: "luciferin",
    formula: "C11H8O3S2N2",
    electrons: 144,
    n_occ: 72,
    n_ao: 364,
    open_shell: false,
};

/// Protonated 21-water cluster — Figure 3 (RHF CCSD on Cray XT4/XT5).
pub const WATER_21: Molecule = Molecule {
    name: "water cluster",
    formula: "(H2O)21H+",
    electrons: 210,
    n_occ: 105,
    n_ao: 861,
    open_shell: false,
};

/// RDX — Figures 4 and 5 (RHF CCSD and CCSD(T) on jaguar).
pub const RDX: Molecule = Molecule {
    name: "RDX",
    formula: "C3H6N6O6",
    electrons: 114,
    n_occ: 57,
    n_ao: 594,
    open_shell: false,
};

/// HMX — Figure 4 (RHF CCSD on jaguar; scales better than RDX).
pub const HMX: Molecule = Molecule {
    name: "HMX",
    formula: "C4H8N8O8",
    electrons: 152,
    n_occ: 76,
    n_ao: 792,
    open_shell: false,
};

/// Cytosine + OH radical — Figure 7 (UHF MP2 gradient vs NWChem).
pub const CYTOSINE_OH: Molecule = Molecule {
    name: "cytosine+OH",
    formula: "C4H6N3O2",
    electrons: 67,
    n_occ: 34,
    n_ao: 341,
    open_shell: true,
};

/// Diamond nanocrystal with a nitrogen vacancy — Figure 6 (Fock build,
/// aug-cc-pVTZ, 2944 basis functions — verbatim from the caption).
pub const DIAMOND_NC: Molecule = Molecule {
    name: "diamond nanocrystal",
    formula: "C42H42N",
    electrons: 301,
    n_occ: 151,
    n_ao: 2944,
    open_shell: true,
};

/// All paper molecules.
pub const ALL: &[Molecule] = &[LUCIFERIN, WATER_21, RDX, HMX, CYTOSINE_OH, DIAMOND_NC];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electron_counts_match_formulas() {
        // C=6, H=1, O=8, S=16, N=7.
        assert_eq!(LUCIFERIN.electrons, 11 * 6 + 8 + 3 * 8 + 2 * 16 + 2 * 7);
        assert_eq!(WATER_21.electrons, 21 * 10);
        assert_eq!(RDX.electrons, 3 * 6 + 6 + 6 * 7 + 6 * 8);
        assert_eq!(HMX.electrons, 4 * 6 + 8 + 8 * 7 + 8 * 8);
        assert_eq!(CYTOSINE_OH.electrons, 4 * 6 + 6 + 3 * 7 + 2 * 8);
        assert_eq!(DIAMOND_NC.electrons, 42 * 6 + 42 + 7);
    }

    #[test]
    fn diamond_basis_is_papers_2944() {
        assert_eq!(DIAMOND_NC.n_ao, 2944);
    }

    #[test]
    fn ten_to_one_rule_roughly_holds() {
        // §II: "typically n = 10 N" with N the electron count scale; check
        // n_ao ≈ 3–7 × n_occ for the closed-shell cases.
        for m in [LUCIFERIN, WATER_21, RDX, HMX] {
            let ratio = m.n_ao as f64 / m.n_occ as f64;
            assert!((3.0..=12.0).contains(&ratio), "{}: {ratio}", m.name);
        }
    }

    #[test]
    fn segment_counts() {
        let (o, n, v) = RDX.segments(30);
        assert_eq!(o, 2); // 57/30
        assert_eq!(n, 20); // 594/30
        assert_eq!(v, 18); // 537/30
    }

    #[test]
    fn t2_sizes_are_tens_of_gb_at_paper_scale() {
        // §II: n=1000, N=100 → 80 GB/array. Our molecules sit below that but
        // in the right regime.
        let gb = WATER_21.t2_bytes() as f64 / 1e9;
        assert!(gb > 20.0, "water cluster T2 = {gb} GB");
        assert!(LUCIFERIN.t2_bytes() > 1 << 30);
    }

    #[test]
    fn scaled_preserves_feasibility() {
        let s = WATER_21.scaled(50);
        assert!(s.n_occ >= 1);
        assert!(s.n_ao > s.n_occ);
    }
}
