//! # sia-chem — computational-chemistry workloads for the SIA
//!
//! ACES III is the application the SIA was built for: coupled-cluster
//! electronic-structure methods whose tensors dwarf single-node memory. This
//! crate supplies the reproduction's workload layer:
//!
//! * [`molecules`] — the evaluation molecules of the paper's Figures 2–7 as
//!   problem descriptors (occupied orbitals, basis functions);
//! * [`integrals`] — deterministic synthetic integral kernels registered as
//!   `compute_integrals`/`compute_oei` super instructions (the SIP treats
//!   kernels as opaque; only their block interface and cost matter);
//! * [`workloads`] — SIAL program generators for the methods the paper
//!   benchmarks: the §IV-D contraction, MP2 energy, CCSD iterations,
//!   CCSD(T) triples, and the Fock matrix build — each packaged as a
//!   [`Workload`] that can *run for real* on the SIP (small molecules) or be
//!   *traced and simulated* at full size (paper molecules, paper machines).

pub mod integrals;
pub mod molecules;
pub mod workloads;

pub use integrals::{integral_cost_model, register_integrals};
pub use molecules::{Molecule, CYTOSINE_OH, DIAMOND_NC, HMX, LUCIFERIN, RDX, WATER_21};
pub use workloads::{
    ccsd_converged, ccsd_iteration, ccsd_t_triples, contraction_demo, fock_build, mp2_energy,
    Workload,
};
