//! Synthetic integral kernels.
//!
//! ACES III computes blocks of two-electron integrals on demand ("rather than
//! storing the entire array, each block of V is computed on demand using the
//! intrinsic super instruction compute_integrals") because the full array
//! would take ~800 GB. The reproduction keeps that structure with a
//! deterministic synthetic generator: smooth, decaying, permutationally
//! plausible values that are a pure function of the *global* element
//! coordinates — so every worker computes identical blocks, results are
//! reproducible, and reference values for tests are computable
//! independently.

use sia_runtime::trace::CostModel;
use sia_runtime::{SuperArg, SuperRegistry};
use std::sync::Arc;

/// The value of a synthetic two-electron integral ⟨μν|λσ⟩ at 0-based global
/// coordinates. Decays with index separation like a Coulomb kernel and keeps
/// the ⟨μν|λσ⟩ = ⟨λσ|μν⟩ = ⟨νμ|σλ⟩ symmetries.
pub fn eri(mu: usize, nu: usize, la: usize, si: usize) -> f64 {
    let d1 = mu.abs_diff(nu) as f64;
    let d2 = la.abs_diff(si) as f64;
    let d3 = (mu + nu).abs_diff(la + si) as f64;
    // Symmetric under μ↔ν, λ↔σ, and bra↔ket by construction.
    let charge = 1.0 + ((mu + nu + la + si) * 3 % 5) as f64 * 0.1;
    charge / ((1.0 + d1 + d2) * (1.0 + 0.5 * d3))
}

/// Decay rate of [`eri_screened`] per unit of bra/ket index separation.
/// Steep enough that blocks between well-separated segments fall below any
/// practical screening threshold (exp(-8·3) ≈ 4e-11 already).
pub const SCREENED_DECAY: f64 = 8.0;

/// A *screened* synthetic two-electron integral: [`eri`] damped by
/// exponential decay in the bra and ket index separations, the way integrals
/// over localized orbitals decay with distance (the regime Schwarz/Cauchy
/// screening exploits in production codes). Same symmetries as [`eri`];
/// most far-off-diagonal blocks have Frobenius norms far below 1e-10.
pub fn eri_screened(mu: usize, nu: usize, la: usize, si: usize) -> f64 {
    let d1 = mu.abs_diff(nu) as f64;
    let d2 = la.abs_diff(si) as f64;
    eri(mu, nu, la, si) * (-SCREENED_DECAY * (d1 + d2)).exp()
}

/// A synthetic one-electron (core Hamiltonian) element at 0-based global
/// coordinates.
pub fn oei(mu: usize, nu: usize) -> f64 {
    let d = mu.abs_diff(nu) as f64;
    let diag = if mu == nu {
        -2.0 - (mu % 7) as f64 * 0.2
    } else {
        0.0
    };
    diag - 0.5 / (1.0 + d * d)
}

/// A synthetic orbital energy (for MP2/CCSD denominators): occupied orbitals
/// negative, virtuals positive, monotone.
pub fn orbital_energy(p: usize, n_occ: usize) -> f64 {
    if p < n_occ {
        -2.0 + 1.5 * (p as f64 / n_occ.max(1) as f64)
    } else {
        0.2 + 0.01 * (p - n_occ) as f64
    }
}

fn fill_from_globals(
    args: &mut [SuperArg],
    seg: usize,
    f: &dyn Fn(&[usize]) -> f64,
) -> Result<(), String> {
    let segs: Vec<i64> = args[0].segs()?.to_vec();
    let block = args[0].block_mut()?;
    let shape = *block.shape();
    let rank = shape.rank();
    let data = block.data_mut();
    for (i, idx) in shape.indices().enumerate() {
        let mut global = [0usize; 8];
        for d in 0..rank {
            global[d] = (segs[d] as usize - 1) * seg + idx[d];
        }
        data[i] = f(&global[..rank]);
    }
    Ok(())
}

/// Registers the chemistry kernels on a registry:
///
/// * `compute_integrals B(μ,ν,λ,σ)` — synthetic ERIs;
/// * `compute_oei B(μ,ν)` — synthetic core Hamiltonian;
/// * `compute_eps B(p)` / `compute_eps_occ` / `compute_eps_virt` — orbital
///   energies (virtuals offset by `n_occ` globals);
/// * `invert_denominator B(i,a,j,b)` — replaces each element with
///   `1 / (εi + εj − εa − εb)` (the MP2/CCSD energy denominator).
///
/// `seg` must equal the SIP's segment size; `n_occ` fixes the occupied count
/// for energies/denominators.
pub fn register_integrals(reg: &mut SuperRegistry, seg: usize, n_occ: usize) {
    reg.register("compute_integrals", move |args, _env| {
        fill_from_globals(args, seg, &|g: &[usize]| match g.len() {
            4 => eri(g[0], g[1], g[2], g[3]),
            2 => oei(g[0], g[1]),
            _ => 0.0,
        })
    });
    reg.register("compute_screened_integrals", move |args, _env| {
        fill_from_globals(args, seg, &|g: &[usize]| match g.len() {
            4 => eri_screened(g[0], g[1], g[2], g[3]),
            2 => oei(g[0], g[1]),
            _ => 0.0,
        })
    });
    reg.register("compute_oei", move |args, _env| {
        fill_from_globals(args, seg, &|g: &[usize]| oei(g[0], g[1]))
    });
    reg.register("compute_eps_occ", move |args, _env| {
        fill_from_globals(args, seg, &|g: &[usize]| orbital_energy(g[0], n_occ))
    });
    reg.register("compute_eps_virt", move |args, _env| {
        fill_from_globals(args, seg, &|g: &[usize]| {
            orbital_energy(g[0] + n_occ, n_occ)
        })
    });
    reg.register("invert_denominator", move |args, _env| {
        // Block indexed (i,a,j,b): energies from global coordinates.
        let segs: Vec<i64> = args[0].segs()?.to_vec();
        let block = args[0].block_mut()?;
        let shape = *block.shape();
        if shape.rank() != 4 {
            return Err("invert_denominator expects a rank-4 block".into());
        }
        let data = block.data_mut();
        for (n, idx) in shape.indices().enumerate() {
            let gi = (segs[0] as usize - 1) * seg + idx[0];
            let ga = (segs[1] as usize - 1) * seg + idx[1] + n_occ;
            let gj = (segs[2] as usize - 1) * seg + idx[2];
            let gb = (segs[3] as usize - 1) * seg + idx[3] + n_occ;
            let denom = orbital_energy(gi, n_occ) + orbital_energy(gj, n_occ)
                - orbital_energy(ga, n_occ)
                - orbital_energy(gb, n_occ);
            data[n] = 1.0 / denom;
        }
        Ok(())
    });
    // Elementwise product against a freshly computed denominator block:
    // B *= 1/(εi+εj−εa−εb). Used by MP2/CCSD amplitude updates.
    reg.register("scale_by_denominator", move |args, _env| {
        let segs: Vec<i64> = args[0].segs()?.to_vec();
        let block = args[0].block_mut()?;
        let shape = *block.shape();
        if shape.rank() != 4 {
            return Err("scale_by_denominator expects a rank-4 block".into());
        }
        let data = block.data_mut();
        for (n, idx) in shape.indices().enumerate() {
            let gi = (segs[0] as usize - 1) * seg + idx[0];
            let ga = (segs[1] as usize - 1) * seg + idx[1] + n_occ;
            let gj = (segs[2] as usize - 1) * seg + idx[2];
            let gb = (segs[3] as usize - 1) * seg + idx[3] + n_occ;
            let denom = orbital_energy(gi, n_occ) + orbital_energy(gj, n_occ)
                - orbital_energy(ga, n_occ)
                - orbital_energy(gb, n_occ);
            data[n] /= denom;
        }
        Ok(())
    });
}

/// Cost model for the trace generator: two-electron integral evaluation over
/// contracted Gaussian basis sets costs hundreds of flops per output element
/// (primitive quartets × contraction depth; ~500/element is representative
/// for triple-zeta sets of the era), other kernels a handful per element.
pub fn integral_cost_model() -> CostModel {
    Arc::new(|name, shapes| {
        let elems: u64 = shapes.iter().map(|s| s.len() as u64).sum();
        match name {
            "compute_integrals" | "compute_screened_integrals" => 500 * elems,
            "compute_oei" => 50 * elems,
            _ => 4 * elems,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_blocks::{Block, Shape};
    use sia_runtime::SuperEnv;

    #[test]
    fn eri_symmetries() {
        for (m, n, l, s) in [(0, 3, 5, 2), (1, 1, 4, 7), (9, 2, 0, 0)] {
            let v = eri(m, n, l, s);
            assert_eq!(v, eri(l, s, m, n), "bra-ket symmetry");
            assert_eq!(v, eri(n, m, s, l), "index-swap symmetry");
        }
    }

    #[test]
    fn eri_decays() {
        assert!(eri(0, 0, 0, 0) > eri(0, 10, 0, 10));
        assert!(eri(0, 1, 0, 1) > eri(0, 1, 40, 41));
    }

    #[test]
    fn oei_diagonal_dominant_negative() {
        assert!(oei(3, 3) < oei(3, 4));
        assert!(oei(0, 0) < -1.0);
    }

    #[test]
    fn orbital_energies_ordered() {
        let nocc = 5;
        for p in 0..nocc {
            assert!(orbital_energy(p, nocc) < 0.0);
        }
        for p in nocc..nocc + 5 {
            assert!(orbital_energy(p, nocc) > 0.0);
        }
        assert!(orbital_energy(0, nocc) < orbital_energy(4, nocc));
    }

    #[test]
    fn registered_kernel_fills_globals() {
        let mut reg = SuperRegistry::new();
        register_integrals(&mut reg, 2, 2);
        let mut args = vec![SuperArg::Block {
            segs: vec![2, 1, 1, 1],
            block: Block::zeros(Shape::new(&[2, 2, 2, 2])),
        }];
        reg.invoke(
            "compute_integrals",
            &mut args,
            &SuperEnv {
                worker: 0,
                workers: 1,
            },
        )
        .unwrap();
        let b = args[0].block_mut().unwrap();
        // Element (0,0,0,0) of block (2,1,1,1) is global (2,0,0,0).
        assert!((b.get(&[0, 0, 0, 0]) - eri(2, 0, 0, 0)).abs() < 1e-15);
        assert!((b.get(&[1, 1, 1, 1]) - eri(3, 1, 1, 1)).abs() < 1e-15);
    }

    #[test]
    fn denominators_negative_for_ground_state() {
        let mut reg = SuperRegistry::new();
        register_integrals(&mut reg, 2, 4);
        let mut args = vec![SuperArg::Block {
            segs: vec![1, 1, 1, 1],
            block: Block::filled(Shape::new(&[2, 2, 2, 2]), 1.0),
        }];
        reg.invoke(
            "invert_denominator",
            &mut args,
            &SuperEnv {
                worker: 0,
                workers: 1,
            },
        )
        .unwrap();
        let b = args[0].block_mut().unwrap();
        assert!(
            b.data().iter().all(|&x| x < 0.0),
            "εocc − εvirt denominators are negative"
        );
    }

    #[test]
    fn cost_model_charges_integrals_more() {
        let cm = integral_cost_model();
        let shapes = [Shape::new(&[4, 4])];
        assert!(cm("compute_integrals", &shapes) > cm("other", &shapes));
    }
}
