//! SIAL program generators for the methods the paper benchmarks.
//!
//! Each generator returns a [`Workload`]: SIAL source + constant bindings +
//! the kernel registry and cost model it needs. A workload can be *run for
//! real* on the SIP (`run_real`, used with scaled-down molecules in tests
//! and examples) or *traced* for the scale simulator (`trace`, used with the
//! paper's molecules and machines in the figure harnesses).
//!
//! The programs are faithful to the paper's programming model — pardo over
//! output blocks, sequential `do` loops over contracted segments, integrals
//! computed on demand, `put +=`-style accumulation, barriers between
//! conflicting phases — while the *method* bodies are representative rather
//! than chemically complete (e.g. the CCSD iteration carries the
//! particle-particle-ladder contraction that dominates its cost, not all
//! ~50 CCSD diagram terms; DESIGN.md documents each simplification).

use crate::integrals::{integral_cost_model, register_integrals};
use crate::molecules::Molecule;
use sia_bytecode::{ConstBindings, Program};
use sia_runtime::trace::{generate, Trace};
use sia_runtime::{
    Layout, RunOutput, RuntimeError, SegmentConfig, Sip, SipConfig, SuperRegistry, Topology,
};
use std::sync::Arc;

/// A runnable/traceable chemistry workload.
#[derive(Clone)]
pub struct Workload {
    /// Human-readable name (method + molecule).
    pub name: String,
    /// SIAL source text.
    pub source: String,
    /// Symbolic-constant bindings (segment counts).
    pub bindings: ConstBindings,
    /// Segment size the kernels assume.
    pub seg: usize,
    /// Occupied-orbital count (for denominators).
    pub n_occ: usize,
    /// Multiplier applied to traced flops, accounting for the method's
    /// diagram terms not spelled out in the representative SIAL program
    /// (e.g. the ~dozens of CCSD doubles diagrams beyond the ladder term,
    /// UHF spin cases, gradient passes). 1.0 where the program is complete.
    /// Affects simulation only; real-mode runs execute exactly the program.
    pub work_factor: f64,
}

impl Workload {
    fn new(
        name: impl Into<String>,
        source: String,
        bindings: ConstBindings,
        seg: usize,
        n_occ: usize,
    ) -> Self {
        Workload {
            name: name.into(),
            source,
            bindings,
            seg,
            n_occ,
            work_factor: 1.0,
        }
    }

    fn with_work_factor(mut self, f: f64) -> Self {
        self.work_factor = f;
        self
    }

    /// Compiles the SIAL source.
    pub fn compile(&self) -> Result<Program, sial_frontend::CompileError> {
        sial_frontend::compile(&self.source)
    }

    /// The kernel registry this workload needs.
    pub fn registry(&self) -> SuperRegistry {
        let mut reg = SuperRegistry::new();
        register_integrals(&mut reg, self.seg, self.n_occ);
        reg
    }

    /// Segment configuration (one size for every index type, as in the
    /// paper's default).
    pub fn segments(&self) -> SegmentConfig {
        SegmentConfig {
            default: self.seg,
            nsub: 2,
            ..Default::default()
        }
    }

    /// Resolved layout for a given topology.
    pub fn layout(&self, workers: usize, io_servers: usize) -> Result<Layout, RuntimeError> {
        let program = self
            .compile()
            .map_err(|e| RuntimeError::BadProgram(e.to_string()))?;
        Layout::new(
            Arc::new(program),
            &self.bindings,
            self.segments(),
            Topology::new(workers, io_servers),
        )
    }

    /// Trace for the scale simulator, with [`Workload::work_factor`] applied
    /// to the flop counts.
    pub fn trace(&self, workers: usize, io_servers: usize) -> Result<Trace, RuntimeError> {
        let layout = self.layout(workers, io_servers)?;
        let mut trace = generate(&layout, &integral_cost_model())?;
        if self.work_factor != 1.0 {
            for phase in &mut trace.phases {
                match phase {
                    sia_runtime::trace::TracePhase::Serial(p) => {
                        p.flops = (p.flops as f64 * self.work_factor) as u64;
                    }
                    sia_runtime::trace::TracePhase::Pardo { per_iter, .. } => {
                        per_iter.flops = (per_iter.flops as f64 * self.work_factor) as u64;
                    }
                    _ => {}
                }
            }
        }
        Ok(trace)
    }

    /// Total bytes of the workload's distributed arrays (the Figure 7
    /// memory-feasibility quantity).
    pub fn dist_bytes(&self) -> Result<u64, RuntimeError> {
        let layout = self.layout(1, 1)?;
        let mut total = 0;
        for (i, decl) in layout.program.arrays.iter().enumerate() {
            if decl.kind == sia_bytecode::ArrayKind::Distributed {
                let id = sia_bytecode::ArrayId(i as u32);
                total += layout.total_blocks(id) * layout.block_bytes(id);
            }
        }
        Ok(total)
    }

    /// Runs the workload for real on the SIP.
    pub fn run_real(&self, mut config: SipConfig) -> Result<RunOutput, RuntimeError> {
        config.segments = self.segments();
        let program = self
            .compile()
            .map_err(|e| RuntimeError::BadProgram(e.to_string()))?;
        Sip::new(config)
            .with_registry(self.registry())
            .run(program, &self.bindings)
    }
}

fn seg_bindings(m: &Molecule, seg: usize) -> ConstBindings {
    let (occ, ao, virt) = m.segments(seg as u32);
    let mut b = ConstBindings::new();
    b.insert("nocc".into(), occ as i64);
    b.insert("norb".into(), ao as i64);
    b.insert("nvrt".into(), virt as i64);
    b
}

/// The paper's §IV-D example: `R(M,N,I,J) = Σ_{L,S} V(M,N,L,S)·T(L,S,I,J)`
/// with `V` computed on demand. The quickstart workload.
pub fn contraction_demo(m: &Molecule, seg: usize) -> Workload {
    let source = r#"
sial contraction_demo
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
temp seed(L,S,I,J)
scalar rnorm

# Fill T with a deterministic seed.
pardo L, S, I, J
  execute compute_integrals seed(L,S,I,J)
  put T(L,S,I,J) = seed(L,S,I,J)
endpardo L, S, I, J
sip_barrier

# The contraction of the paper, §IV-D.
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
sip_barrier

# Diagnostic: Σ R·R, reduced globally.
pardo M, N, I, J
  get R(M,N,I,J)
  rnorm += R(M,N,I,J) * R(M,N,I,J)
endpardo M, N, I, J
sip_barrier
execute sip_allreduce rnorm
endsial
"#
    .to_string();
    Workload::new(
        format!("contraction_demo/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
}

/// MP2 energy (the Figure 7 method, energy part): transform-and-store the
/// (ia|jb) integrals into a distributed array, then accumulate
/// `Σ t·(2V − X)` with on-the-fly exchange integrals.
pub fn mp2_energy(m: &Molecule, seg: usize) -> Workload {
    let source = r#"
sial mp2_energy
moindex i = 1, nocc
moindex j = 1, nocc
laindex a = 1, nvrt
laindex b = 1, nvrt
distributed Vd(i,a,j,b)
temp V(i,a,j,b)
temp W(i,b,j,a)
temp X(i,a,j,b)
temp T(i,a,j,b)
scalar emp2

# "Transformation": produce and distribute the ovov integrals.
pardo i, a, j, b
  execute compute_integrals V(i,a,j,b)
  put Vd(i,a,j,b) = V(i,a,j,b)
endpardo i, a, j, b
sip_barrier

# Energy accumulation.
pardo i, a, j, b
  get Vd(i,a,j,b)
  execute compute_integrals W(i,b,j,a)
  X(i,a,j,b) = W(i,b,j,a)
  T(i,a,j,b) = 2.0 * Vd(i,a,j,b)
  T(i,a,j,b) -= X(i,a,j,b)
  execute scale_by_denominator T(i,a,j,b)
  emp2 += T(i,a,j,b) * Vd(i,a,j,b)
endpardo i, a, j, b
sip_barrier
execute sip_allreduce emp2
endsial
"#
    .to_string();
    Workload::new(
        format!("mp2_energy/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
    // Figure 7 measures the MP2 *gradient* (integral transformation, CPHF,
    // and back-transformation on top of the energy): ~40× the energy sweep.
    .with_work_factor(40.0)
}

/// MP2 energy over *screened* integrals with a block-sparse integral store:
/// like [`mp2_energy`] but `Vd` is declared `sparse` and the integrals come
/// from [`crate::integrals::eri_screened`] (exponential decay in index
/// separation, the localized-orbital regime Schwarz screening exploits).
/// Run with [`sia_runtime::SipConfigBuilder::sparsity_threshold`] set and
/// the runtime drops the far-off-diagonal blocks at `put`, serves them as
/// typed absence, and short-circuits the energy contraction on them —
/// with threshold 0 the same program runs dense, bit-for-bit.
pub fn mp2_energy_screened(m: &Molecule, seg: usize) -> Workload {
    let source = r#"
sial mp2_energy_screened
moindex i = 1, nocc
moindex j = 1, nocc
laindex a = 1, nvrt
laindex b = 1, nvrt
sparse distributed Vd(i,a,j,b)
temp V(i,a,j,b)
temp W(i,b,j,a)
temp X(i,a,j,b)
temp T(i,a,j,b)
scalar emp2

# "Transformation": produce and distribute the screened ovov integrals.
# Puts of blocks below the sparsity threshold are dropped at the source.
pardo i, a, j, b
  execute compute_screened_integrals V(i,a,j,b)
  put Vd(i,a,j,b) = V(i,a,j,b)
endpardo i, a, j, b
sip_barrier

# Energy accumulation; the emp2 contraction skips absent Vd blocks.
pardo i, a, j, b
  get Vd(i,a,j,b)
  execute compute_screened_integrals W(i,b,j,a)
  X(i,a,j,b) = W(i,b,j,a)
  T(i,a,j,b) = 2.0 * Vd(i,a,j,b)
  T(i,a,j,b) -= X(i,a,j,b)
  execute scale_by_denominator T(i,a,j,b)
  emp2 += T(i,a,j,b) * Vd(i,a,j,b)
endpardo i, a, j, b
sip_barrier
execute sip_allreduce emp2
endsial
"#
    .to_string();
    Workload::new(
        format!("mp2_energy_screened/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
    .with_work_factor(40.0)
}

/// A-priori realized density of [`mp2_energy_screened`]'s integral array
/// `Vd`: the fraction of its blocks whose Frobenius norm reaches
/// `threshold`, evaluated directly from the synthetic model. This is what
/// the dry run's [`sia_runtime::SipConfigBuilder::sparsity_density`] hint
/// should be fed for a realized (rather than dense) footprint estimate.
pub fn screened_vd_density(m: &Molecule, seg: usize, threshold: f64) -> f64 {
    let (occ, _, virt) = m.segments(seg as u32);
    let (occ, virt) = (occ as usize, virt as usize);
    let (mut kept, mut total) = (0u64, 0u64);
    for (si, sa, sj, sb) in product4(occ, virt, occ, virt) {
        let mut sq = 0.0;
        for (i, a, j, b) in product4(seg, seg, seg, seg) {
            let v = crate::integrals::eri_screened(
                si * seg + i,
                sa * seg + a,
                sj * seg + j,
                sb * seg + b,
            );
            sq += v * v;
        }
        total += 1;
        if sq.sqrt() >= threshold {
            kept += 1;
        }
    }
    kept as f64 / total.max(1) as f64
}

/// All tuples of a 4-way index product.
fn product4(
    n0: usize,
    n1: usize,
    n2: usize,
    n3: usize,
) -> impl Iterator<Item = (usize, usize, usize, usize)> {
    (0..n0).flat_map(move |a| {
        (0..n1).flat_map(move |b| (0..n2).flat_map(move |c| (0..n3).map(move |d| (a, b, c, d))))
    })
}

/// CCSD iterations (Figures 2–4): the particle-particle-ladder contraction
/// `R(i,a,j,b) = Σ_{c,d} V(c,a,d,b)·T(i,c,j,d)` — the O(o²v⁴) term that
/// dominates CCSD — plus amplitude update with denominators, a served-array
/// history write (the convergence-acceleration storage of §II), and the
/// correlation-energy reduction. `iterations` CCSD sweeps are performed.
pub fn ccsd_iteration(m: &Molecule, seg: usize, iterations: u32) -> Workload {
    let source = format!(
        r#"
sial ccsd_iteration
index iter = 1, {iterations}
moindex i = 1, nocc
moindex j = 1, nocc
laindex a = 1, nvrt
laindex b = 1, nvrt
laindex c = 1, nvrt
laindex d = 1, nvrt
distributed T(i,a,j,b)
distributed R(i,a,j,b)
served Hist(i,a,j,b)
temp VT(i,a,j,b)
temp V(c,a,d,b)
temp tmp(i,a,j,b)
temp tmpsum(i,a,j,b)
temp u(i,a,j,b)
temp VE(i,a,j,b)
scalar ecorr

# MP2-like initial amplitudes.
pardo i, a, j, b
  execute compute_integrals VT(i,a,j,b)
  execute scale_by_denominator VT(i,a,j,b)
  put T(i,a,j,b) = VT(i,a,j,b)
endpardo i, a, j, b
sip_barrier

do iter
  # Ladder term: R = Σ_cd V(c,a,d,b) T(i,c,j,d), V on demand.
  pardo i, a, j, b
    tmpsum(i,a,j,b) = 0.0
    do c
      do d
        get T(i,c,j,d)
        execute compute_integrals V(c,a,d,b)
        tmp(i,a,j,b) = V(c,a,d,b) * T(i,c,j,d)
        tmpsum(i,a,j,b) += tmp(i,a,j,b)
      enddo d
    enddo c
    prepare Hist(i,a,j,b) = tmpsum(i,a,j,b)
    execute scale_by_denominator tmpsum(i,a,j,b)
    put R(i,a,j,b) = tmpsum(i,a,j,b)
  endpardo i, a, j, b
  sip_barrier
  server_barrier

  # Amplitude update and energy.
  pardo i, a, j, b
    get R(i,a,j,b)
    u(i,a,j,b) = R(i,a,j,b)
    put T(i,a,j,b) = u(i,a,j,b)
    execute compute_integrals VE(i,a,j,b)
    ecorr += VE(i,a,j,b) * R(i,a,j,b)
  endpardo i, a, j, b
  sip_barrier
enddo iter
execute sip_allreduce ecorr
endsial
"#
    );
    Workload::new(
        format!("ccsd/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
    // The ladder term is roughly a third of a full CCSD iteration's flops.
    .with_work_factor(3.0)
}

/// CCSD iterated to convergence: like [`ccsd_iteration`] but the sweep loop
/// `exit`s once the correlation-energy change falls below `tol` — the
/// pattern production SIAL codes use (the paper's "16 iterations to
/// converge" in Figure 2 comes from exactly such a loop).
pub fn ccsd_converged(m: &Molecule, seg: usize, max_iterations: u32, tol: f64) -> Workload {
    let source = format!(
        r#"
sial ccsd_converged
index iter = 1, {max_iterations}
moindex i = 1, nocc
moindex j = 1, nocc
laindex a = 1, nvrt
laindex b = 1, nvrt
laindex c = 1, nvrt
laindex d = 1, nvrt
distributed T(i,a,j,b)
distributed R(i,a,j,b)
temp VT(i,a,j,b)
temp V(c,a,d,b)
temp tmp(i,a,j,b)
temp tmpsum(i,a,j,b)
temp u(i,a,j,b)
temp VE(i,a,j,b)
scalar ecorr
scalar eold
scalar delta
scalar iters_run

pardo i, a, j, b
  execute compute_integrals VT(i,a,j,b)
  execute scale_by_denominator VT(i,a,j,b)
  put T(i,a,j,b) = VT(i,a,j,b)
endpardo i, a, j, b
sip_barrier

do iter
  ecorr = 0.0
  pardo i, a, j, b
    # Driving term: R starts from the bare integrals, so the fixed point
    # T* = (V + ladder(T*))/D is nontrivial.
    execute compute_integrals tmpsum(i,a,j,b)
    do c
      do d
        get T(i,c,j,d)
        execute compute_integrals V(c,a,d,b)
        tmp(i,a,j,b) = V(c,a,d,b) * T(i,c,j,d)
        # Damped Jacobi update: our synthetic integrals overweight the
        # ladder coupling, so a damping factor keeps the fixed-point map
        # contractive (production codes use DIIS for the same reason).
        tmpsum(i,a,j,b) += 0.1 * tmp(i,a,j,b)
      enddo d
    enddo c
    execute scale_by_denominator tmpsum(i,a,j,b)
    put R(i,a,j,b) = tmpsum(i,a,j,b)
  endpardo i, a, j, b
  sip_barrier

  pardo i, a, j, b
    get R(i,a,j,b)
    u(i,a,j,b) = R(i,a,j,b)
    put T(i,a,j,b) = u(i,a,j,b)
    execute compute_integrals VE(i,a,j,b)
    ecorr += VE(i,a,j,b) * R(i,a,j,b)
  endpardo i, a, j, b
  sip_barrier
  execute sip_allreduce ecorr
  iters_run = iters_run + 1.0

  delta = ecorr - eold
  eold = ecorr
  if delta < {tol} and delta > -{tol}
    exit
  endif
enddo iter
endsial
"#
    );
    Workload::new(
        format!("ccsd_converged/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
    .with_work_factor(3.0)
}

/// CCSD(T) triples correction (Figure 5): pardo over ordered occupied block
/// triples (i ≤ j ≤ k) crossed with virtual block pairs (a,b) — the fine
/// task decomposition real (T) codes use — contracting on-demand integral
/// blocks against T2 over an O(v) inner loop. Total work scales as
/// o³v³·seg⁶ ~ n⁷, the paper's CCSD(T) exponent.
pub fn ccsd_t_triples(m: &Molecule, seg: usize) -> Workload {
    let source = r#"
sial ccsd_t
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
laindex a = 1, nvrt
laindex b = 1, nvrt
laindex c = 1, nvrt
laindex d = 1, nvrt
distributed T(i,a,j,b)
temp VT(i,a,j,b)
temp V(j,b,k,c)
temp U(d,c)
temp w(i,a,k,c)
temp wsum(i,a,k,c)
temp y(i,a,j,b)
temp tsum(i,a,j,b)
scalar et3

pardo i, a, j, b
  execute compute_integrals VT(i,a,j,b)
  execute scale_by_denominator VT(i,a,j,b)
  put T(i,a,j,b) = VT(i,a,j,b)
endpardo i, a, j, b
sip_barrier

pardo i, j, k, a, b where i <= j where j <= k
  get T(i,a,j,b)
  tsum(i,a,j,b) = 0.0
  do c
    execute compute_integrals V(j,b,k,c)
    # W(i,a,k,c) = Σ_d T(i,a,k,d)·U(d,c): the O(v⁴)-per-triple inner
    # contraction that gives (T) its n⁷ cost.
    wsum(i,a,k,c) = 0.0
    do d
      get T(i,a,k,d)
      execute compute_integrals U(d,c)
      w(i,a,k,c) = T(i,a,k,d) * U(d,c)
      wsum(i,a,k,c) += w(i,a,k,c)
    enddo d
    y(i,a,j,b) = V(j,b,k,c) * wsum(i,a,k,c)
    tsum(i,a,j,b) += y(i,a,j,b)
  enddo c
  et3 += T(i,a,j,b) * tsum(i,a,j,b)
endpardo i, j, k, a, b
sip_barrier
execute sip_allreduce et3
endsial
"#
    .to_string();
    Workload::new(
        format!("ccsd_t/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
    // The full (T) evaluates ~9 permutational variants of the W intermediate.
    .with_work_factor(9.0)
}

/// The Fock matrix build (Figure 6): `F(m,n) = Σ_{l,s} D(l,s)·[2(mn|ls) −
/// (ml|ns)]`, parallelized over *shell-block quartets* `(m,n,l,s)` with
/// atomic `put +=` accumulation into F (no barrier needed between
/// accumulates — §IV-C footnote 5). Quartet tasks are tiny compared to CCSD
/// tasks, which is exactly why Figure 6 exposes scheduler/latency limits at
/// 84k–108k cores where CCSD does not.
pub fn fock_build(m: &Molecule, seg: usize) -> Workload {
    let source = r#"
sial fock_build
aoindex m = 1, norb
aoindex n = 1, norb
aoindex l = 1, norb
aoindex s = 1, norb
distributed D(l,s)
distributed F(m,n)
temp dd(l,s)
temp J(m,n,l,s)
temp K(m,l,n,s)
temp jt(m,n)
temp kt(m,n)
temp ft(m,n)
scalar trfd

# Synthetic density.
pardo l, s
  execute compute_oei dd(l,s)
  put D(l,s) = dd(l,s)
endpardo l, s
sip_barrier

# Fock build over shell-block quartets; += accumulation is atomic.
pardo m, n, l, s where m <= n
  get D(l,s)
  execute compute_integrals J(m,n,l,s)
  execute compute_integrals K(m,l,n,s)
  jt(m,n) = J(m,n,l,s) * D(l,s)
  kt(m,n) = K(m,l,n,s) * D(l,s)
  ft(m,n) = 2.0 * jt(m,n)
  ft(m,n) -= kt(m,n)
  put F(m,n) += ft(m,n)
endpardo m, n, l, s
sip_barrier

# tr(F·D) diagnostic.
pardo m, n where m <= n
  get F(m,n)
  get D(m,n)
  trfd += F(m,n) * D(m,n)
endpardo m, n
sip_barrier
execute sip_allreduce trfd
endsial
"#
    .to_string();
    Workload::new(
        format!("fock_build/{}", m.name),
        source,
        seg_bindings(m, seg),
        seg,
        m.n_occ as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::{CYTOSINE_OH, DIAMOND_NC, LUCIFERIN, RDX};
    use sia_runtime::trace::TracePhase;

    fn tiny() -> Molecule {
        Molecule {
            name: "tiny",
            formula: "He2",
            electrons: 4,
            n_occ: 4,
            n_ao: 12,
            open_shell: false,
        }
    }

    #[test]
    fn all_workloads_compile() {
        let m = tiny();
        for w in [
            contraction_demo(&m, 2),
            mp2_energy(&m, 2),
            mp2_energy_screened(&m, 2),
            ccsd_iteration(&m, 2, 2),
            ccsd_t_triples(&m, 2),
            fock_build(&m, 2),
        ] {
            w.compile().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn all_workloads_trace() {
        let m = tiny();
        for w in [
            contraction_demo(&m, 2),
            mp2_energy(&m, 2),
            mp2_energy_screened(&m, 2),
            ccsd_iteration(&m, 2, 1),
            ccsd_t_triples(&m, 2),
            fock_build(&m, 2),
        ] {
            let t = w.trace(4, 1).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(t.total_flops() > 0, "{} has no flops", w.name);
            assert!(
                t.phases
                    .iter()
                    .any(|p| matches!(p, TracePhase::Pardo { .. })),
                "{} has no pardo phases",
                w.name
            );
        }
    }

    #[test]
    fn ccsd_trace_scales_like_o2v4() {
        // Doubling the virtual space must grow ladder flops ≈ 16×.
        let small = Molecule {
            n_ao: 4 + 8,
            n_occ: 4,
            ..tiny()
        };
        let big = Molecule {
            n_ao: 4 + 16,
            n_occ: 4,
            ..tiny()
        };
        let ts = ccsd_iteration(&small, 2, 1).trace(4, 1).unwrap();
        let tb = ccsd_iteration(&big, 2, 1).trace(4, 1).unwrap();
        let ratio = tb.total_flops() as f64 / ts.total_flops() as f64;
        assert!(
            (8.0..32.0).contains(&ratio),
            "v⁴ scaling expected, ratio {ratio}"
        );
    }

    #[test]
    fn fock_tasks_much_smaller_than_ccsd_tasks() {
        let fock = fock_build(&DIAMOND_NC, 32).trace(64, 1).unwrap();
        let ccsd = ccsd_iteration(&RDX, 32, 1).trace(64, 1).unwrap();
        let task_flops = |t: &Trace| {
            t.phases
                .iter()
                .filter_map(|p| match p {
                    TracePhase::Pardo { per_iter, .. } if per_iter.flops > 0 => {
                        Some(per_iter.flops)
                    }
                    _ => None,
                })
                .max()
                .unwrap()
        };
        assert!(task_flops(&ccsd) > 10 * task_flops(&fock));
    }

    #[test]
    fn mp2_dist_bytes_scale_with_basis() {
        let small = mp2_energy(&CYTOSINE_OH.scaled(4), 8).dist_bytes().unwrap();
        let big = mp2_energy(&CYTOSINE_OH, 8).dist_bytes().unwrap();
        assert!(big > 10 * small);
    }

    #[test]
    fn mp2_screening_drops_blocks_and_preserves_energy() {
        let m = tiny();
        let w = mp2_energy_screened(&m, 2);
        let cfg = |thr: f64| {
            sia_runtime::SipConfig::builder()
                .workers(2)
                .io_servers(0)
                .collect_distributed(true)
                .sparsity_threshold(thr)
                .build()
                .unwrap()
        };
        let dense = w.run_real(cfg(0.0)).unwrap();
        let sparse = w.run_real(cfg(1e-10)).unwrap();
        let (e_d, e_s) = (dense.scalars["emp2"], sparse.scalars["emp2"]);
        assert!(
            (e_d - e_s).abs() < 1e-8,
            "screened energy {e_s} differs from dense {e_d}"
        );
        // The collected store only holds resident blocks: absence is the
        // measure of what screening dropped.
        let total = dense.collected["Vd"].len();
        let kept = sparse.collected.get("Vd").map_or(0, |b| b.len());
        assert!(total > 0);
        let dropped = total - kept;
        assert!(
            dropped as f64 >= 0.3 * total as f64,
            "expected >= 30% of integral blocks dropped, got {dropped}/{total}"
        );
        let sp = &sparse.profile.metrics.sparse;
        assert!(sp.blocks_skipped > 0, "energy contraction must skip");
        assert!(sp.flops_avoided > 0);
        assert_eq!(
            dense.profile.metrics.sparse.blocks_skipped, 0,
            "threshold 0 runs dense"
        );
    }

    #[test]
    fn screened_dryrun_realized_tracks_density() {
        let m = tiny();
        let w = mp2_energy_screened(&m, 2);
        let density = screened_vd_density(&m, 2, 1e-10);
        assert!(
            (0.0..0.8).contains(&density),
            "screened model should be sparse, density {density}"
        );
        let mut cfg = sia_runtime::SipConfig::builder()
            .workers(2)
            .io_servers(0)
            .sparsity_threshold(1e-10)
            .sparsity_density("Vd", density)
            .build()
            .unwrap();
        cfg.segments = w.segments();
        let est = Sip::new(cfg)
            .dry_run(w.compile().unwrap(), &w.bindings)
            .unwrap();
        assert!(
            est.per_worker_bytes < est.dense_per_worker_bytes,
            "density hint must tighten the realized estimate: {} vs dense {}",
            est.per_worker_bytes,
            est.dense_per_worker_bytes
        );
    }

    #[test]
    fn screened_density_hint_matches_measured_drops() {
        // The a-priori density and the runtime's realized density must agree:
        // the dry run's hint is trustworthy for what the run actually keeps.
        let m = tiny();
        let w = mp2_energy_screened(&m, 2);
        let out = w
            .run_real(
                sia_runtime::SipConfig::builder()
                    .workers(2)
                    .io_servers(0)
                    .collect_distributed(true)
                    .sparsity_threshold(1e-10)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let layout = w.layout(2, 0).unwrap();
        let vd = layout
            .program
            .arrays
            .iter()
            .position(|a| a.name == "Vd")
            .unwrap();
        let total = layout.total_blocks(sia_bytecode::ArrayId(vd as u32));
        let kept = out.collected.get("Vd").map_or(0, |b| b.len()) as u64;
        let measured = kept as f64 / total as f64;
        let predicted = screened_vd_density(&m, 2, 1e-10);
        assert!(
            (measured - predicted).abs() <= 0.1,
            "predicted density {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn ccsd_converged_stops_early() {
        let m = tiny();
        let w = ccsd_converged(&m, 2, 20, 1.0e-4);
        let out = w
            .run_real(
                sia_runtime::SipConfig::builder()
                    .workers(2)
                    .io_servers(0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let iters = out.scalars["iters_run"];
        assert!(iters >= 1.0, "at least one sweep");
        assert!(
            iters < 20.0,
            "convergence loop must exit before the iteration cap, ran {iters}"
        );
        assert!(out.scalars["ecorr"].is_finite());
    }

    #[test]
    fn ccsd_converged_deterministic_across_workers() {
        let m = tiny();
        let w = ccsd_converged(&m, 2, 10, 1.0e-6);
        let run = |workers| {
            w.run_real(
                sia_runtime::SipConfig::builder()
                    .workers(workers)
                    .io_servers(0)
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .scalars["ecorr"]
        };
        let a = run(1);
        let b = run(3);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn luciferin_ccsd_iterations_counted() {
        // Figure 2's workload: check the per-iteration pardo count matches
        // occ²·virt² blocks.
        let w = ccsd_iteration(&LUCIFERIN, 26, 1);
        let t = w.trace(32, 1).unwrap();
        let (occ, _, virt) = LUCIFERIN.segments(26);
        let expect = (occ as u64 * virt as u64).pow(2);
        let ladder = t
            .phases
            .iter()
            .filter_map(|p| match p {
                TracePhase::Pardo {
                    iterations,
                    per_iter,
                    ..
                } if per_iter.gets > 0 && per_iter.prepares > 0 => Some(*iterations),
                _ => None,
            })
            .next()
            .expect("ladder pardo present");
        assert_eq!(ladder, expect);
    }
}
