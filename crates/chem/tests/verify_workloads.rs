//! `sial check` must accept every shipped chemistry workload with zero
//! diagnostics: the race rules are calibrated against the paper's own
//! programming patterns (covered replace-mode puts, `+=` accumulation into
//! shared blocks, barriers between write and read phases), so any finding
//! here is a false positive.

use sia_chem::{
    ccsd_converged, ccsd_iteration, ccsd_t_triples, contraction_demo, fock_build, mp2_energy,
    Workload, WATER_21,
};
use sia_runtime::check_program;

fn assert_clean(w: &Workload) {
    let program = w.compile().unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let diags = check_program(&program);
    assert!(
        diags.is_empty(),
        "{}: sial check reported false positives:\n{}",
        w.name,
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_chem_workload_passes_sial_check() {
    let m = &WATER_21;
    for w in [
        contraction_demo(m, 8),
        mp2_energy(m, 8),
        ccsd_iteration(m, 8, 3),
        ccsd_converged(m, 8, 10, 1e-6),
        ccsd_t_triples(m, 8),
        fock_build(m, 8),
    ] {
        assert_clean(&w);
    }
}
