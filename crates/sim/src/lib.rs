//! # sia-sim — trace-driven simulation of the SIP at supercomputer scale
//!
//! The paper evaluates ACES III on 256 – 108,000 cores of Sun, Cray XT4/XT5,
//! SGI Altix, and BlueGene/P systems. Those machines are gone and one host
//! cannot impersonate them, so the reproduction splits the problem:
//!
//! * `sia-runtime` *executes* SIAL programs for real (threads as ranks) and
//!   validates numerics, protocols, and policies at small scale;
//! * this crate *simulates* those same policies — guided chunk scheduling,
//!   prefetch-overlapped block traffic, LRU caching, barrier synchronization,
//!   master service contention — against calibrated [`MachineModel`]s, driven
//!   by the [`sia_runtime::trace`] extracted from the very same bytecode.
//!
//! The simulator is a discrete-event engine at *chunk* granularity: every
//! chunk request/assignment and barrier is an explicit event (capturing
//! master contention, guided-schedule imbalance, and straggler effects),
//! while the homogeneous iterations inside one chunk use a closed-form
//! pipeline model of the SIP's communication/computation overlap.
//!
//! Absolute times are only as good as the era-hardware calibration; the
//! *shape* of the scaling curves (who wins, where efficiency collapses,
//! where extra processors hurt) is the reproduction target.

pub mod comm_model;
pub mod ga_model;
pub mod machine;
pub mod sip_model;

pub use comm_model::{hash_cost, planned_cost, CommCost, CommWorkload};
pub use ga_model::{simulate_ga, GaConfig, GaOutcome};
pub use machine::MachineModel;
pub use sip_model::{simulate, PhaseReport, SimConfig, SimReport};
