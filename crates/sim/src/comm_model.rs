//! Analytic strong-scaling model of pardo communication under the two
//! placement strategies, extrapolating a [`CommWorkload`] (the byte classes
//! the planner's `PlanSummary` aggregates) to rank counts no host can run
//! for real.
//!
//! The model deliberately stays closed-form — no event queue — because the
//! quantity of interest is the *crossover shape*: hash placement pays for
//! every broadcast-shaped block once per consuming rank via a request/
//! response pair, while the planned placement ships the same bytes down a
//! binary multicast tree (one message per tree edge, no requests) and turns
//! pardo-aligned puts into local stores. Both placements move the same
//! broadcast payload in aggregate; the separation comes from the message
//! count (latency term) and the aligned-put bytes (bandwidth term).

use crate::machine::MachineModel;

/// Placement-independent byte classes of one program, summed over every
/// pardo region. Mirrors `sia_runtime::PlanSummary` field-for-field but
/// takes plain integers so the simulator does not need a runtime `Layout`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommWorkload {
    /// Bytes of distributed puts whose block key is fully determined by the
    /// pardo indices — local under owner-compute affinity, remote with
    /// probability (P−1)/P under hash placement.
    pub aligned_put_bytes: u64,
    /// Distinct broadcast-shaped blocks × their byte size: the payload every
    /// consuming rank needs once, whatever the transport.
    pub broadcast_bytes: u64,
    /// Distinct broadcast-shaped blocks.
    pub broadcast_blocks: u64,
    /// Every remaining get/put/request/prepare byte, spread uniformly.
    pub other_bytes: u64,
}

/// Modeled fabric cost of one placement at one rank count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Total bytes crossing the fabric (all ranks summed).
    pub bytes: f64,
    /// Total fabric messages (requests and payloads both count).
    pub messages: f64,
    /// Modeled communication seconds on the critical rank: per-rank volume
    /// over contended bandwidth plus per-rank message latency.
    pub seconds: f64,
}

/// Average payload size used to turn byte classes into message counts when
/// the workload carries no broadcast blocks to calibrate from (64 KiB — a
/// typical 4-index segment block at seg 16).
const FALLBACK_MSG_BYTES: f64 = 64.0 * 1024.0;

fn avg_block_bytes(w: &CommWorkload) -> f64 {
    if w.broadcast_blocks > 0 {
        w.broadcast_bytes as f64 / w.broadcast_blocks as f64
    } else {
        FALLBACK_MSG_BYTES
    }
}

/// Per-core effective bandwidth under full load at `ranks` ranks.
fn effective_bw(m: &MachineModel, ranks: u64) -> f64 {
    m.link_bw_per_core * (ranks as f64).powf(m.net_scale_exp - 1.0)
}

fn cost(bytes: f64, messages: f64, m: &MachineModel, ranks: u64, bcast_path: f64) -> CommCost {
    let p = ranks as f64;
    let seconds = bytes / p / effective_bw(m, ranks) + messages / p * m.net_latency + bcast_path;
    CommCost {
        bytes,
        messages,
        seconds,
    }
}

/// Seconds to push one average-size block out one link.
fn per_send(w: &CommWorkload, m: &MachineModel, ranks: u64) -> f64 {
    m.net_latency + avg_block_bytes(w) / effective_bw(m, ranks)
}

/// Hash placement: every class is remote with probability (P−1)/P, and each
/// broadcast-shaped block is fetched by each of the P−1 non-home ranks via
/// a GetBlock/BlockData pair. The home rank's injection link serializes
/// those P−1 responses — the linear fan-out hotspot that motivates the
/// multicast schedule. With the blocks spread over the ranks by the hash,
/// the busiest home serves ⌈blocks/P⌉ of them.
pub fn hash_cost(w: &CommWorkload, ranks: u64, m: &MachineModel) -> CommCost {
    let p = ranks as f64;
    let remote = (p - 1.0) / p;
    let point_bytes = (w.aligned_put_bytes + w.other_bytes) as f64 * remote;
    let bcast_bytes = w.broadcast_bytes as f64 * (p - 1.0);
    let messages = point_bytes / avg_block_bytes(w) + 2.0 * w.broadcast_blocks as f64 * (p - 1.0);
    let per_home = w.broadcast_blocks.div_ceil(ranks.max(1)) as f64;
    let hotspot = per_home * (p - 1.0) * per_send(w, m, ranks);
    cost(point_bytes + bcast_bytes, messages, m, ranks, hotspot)
}

/// Planned placement: aligned puts land on their owner (no fabric), and
/// broadcast blocks flow down a binary tree — the same (P−1)·bytes in
/// aggregate but one unsolicited message per tree edge, no requests, and
/// every rank forwards at most two copies per block it relays: the critical
/// path is the log₂ P store-and-forward depth plus the busiest relay's two
/// sends per homed block, not a linear fan-out.
pub fn planned_cost(w: &CommWorkload, ranks: u64, m: &MachineModel) -> CommCost {
    let p = ranks as f64;
    let remote = (p - 1.0) / p;
    let point_bytes = w.other_bytes as f64 * remote;
    let bcast_bytes = w.broadcast_bytes as f64 * (p - 1.0);
    let messages = point_bytes / avg_block_bytes(w) + w.broadcast_blocks as f64 * (p - 1.0);
    let per_home = w.broadcast_blocks.div_ceil(ranks.max(1)) as f64;
    let tree = (p.log2().ceil() + 2.0 * per_home) * per_send(w, m, ranks);
    cost(point_bytes + bcast_bytes, messages, m, ranks, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;

    const W: CommWorkload = CommWorkload {
        aligned_put_bytes: 8 << 20,
        broadcast_bytes: 4 << 20,
        broadcast_blocks: 64,
        other_bytes: 16 << 20,
    };

    #[test]
    fn planned_halves_broadcast_messages() {
        let m = machine::CRAY_XT5;
        for ranks in [64u64, 1024, 16384] {
            let h = hash_cost(&W, ranks, &m);
            let pl = planned_cost(&W, ranks, &m);
            // Same broadcast payload either way; planned drops the aligned
            // puts, so bytes strictly shrink.
            assert!(pl.bytes < h.bytes, "bytes at {ranks}");
            // Requests disappear: the broadcast message count halves.
            assert!(pl.messages < h.messages, "messages at {ranks}");
        }
    }

    #[test]
    fn planned_wins_time_at_scale() {
        let m = machine::CRAY_XT5;
        for ranks in [1024u64, 16384] {
            let h = hash_cost(&W, ranks, &m);
            let pl = planned_cost(&W, ranks, &m);
            assert!(
                pl.seconds < h.seconds,
                "planned {} s vs hash {} s at {ranks}",
                pl.seconds,
                h.seconds
            );
        }
    }

    #[test]
    fn no_broadcast_degenerates_gracefully() {
        let m = machine::CRAY_XT5;
        let w = CommWorkload {
            aligned_put_bytes: 0,
            broadcast_bytes: 0,
            broadcast_blocks: 0,
            other_bytes: 32 << 20,
        };
        let h = hash_cost(&w, 1024, &m);
        let pl = planned_cost(&w, 1024, &m);
        assert_eq!(h.bytes, pl.bytes);
        assert!(h.seconds.is_finite() && pl.seconds.is_finite());
    }
}
