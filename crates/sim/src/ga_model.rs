//! A Global-Arrays-style baseline runtime model (the Figure 7 comparator).
//!
//! The paper attributes NWChem/GA's disadvantage to two mechanisms:
//!
//! 1. "The Global Array Toolkit … requires a very rigorous organization of
//!    the data blocks and communication patterns" — a *rigid memory layout*:
//!    if the arrays do not fit the per-core memory the layout demands, "the
//!    calculation will simply not run" (NWChem failed outright at 1 GB/core
//!    and at 16 processors with 2–4 GB/core).
//! 2. Overlap "must be incorporated manually" with explicit nonblocking
//!    gets/waits — absent that, communication is exposed.
//!
//! [`simulate_ga`] models both: a hard memory-feasibility gate computed from
//! the workload's array footprint under a rigidity factor, and the same
//! trace replayed with no prefetch pipeline plus higher per-transfer
//! software overhead (one-sided handshake + explicit synchronization).

use crate::machine::MachineModel;
use crate::sip_model::{simulate, SimConfig, SimReport};
use sia_runtime::trace::Trace;

/// GA-baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct GaConfig {
    /// Worker count.
    pub workers: u64,
    /// Machine (its `mem_per_core` is the Figure 7 sweep variable).
    pub machine: MachineModel,
    /// Multiplier on the distributed footprint for the rigid layout
    /// (mirrors GA's requirement to materialize full arrays plus
    /// communication buffers; > 1).
    pub rigidity: f64,
    /// Replicated bytes every process must hold regardless of scale.
    pub replicated_bytes: u64,
    /// Software overhead per one-sided transfer (seconds).
    pub per_transfer_overhead: f64,
    /// Fraction of the machine's DGEMM rate the baseline sustains. GA-era
    /// NWChem tiles fine-grained one-sided accesses through the compute
    /// loop, so its sustained rate sits well below a block-structured code's
    /// — visible in Figure 7 as a constant offset between parallel curves.
    pub compute_efficiency: f64,
}

impl GaConfig {
    /// Defaults matching the Figure 7 setup.
    pub fn new(machine: MachineModel, workers: u64) -> Self {
        GaConfig {
            workers,
            machine,
            rigidity: 3.25,
            replicated_bytes: 900 << 20,
            per_transfer_overhead: 6.0e-6,
            compute_efficiency: 0.4,
        }
    }
}

/// Outcome of a GA-baseline run.
#[derive(Debug, Clone, PartialEq)]
pub enum GaOutcome {
    /// The layout fit; timed results follow.
    Completed(SimReport),
    /// The rigid layout did not fit per-core memory — the run never starts
    /// ("NWChem did not successfully complete the calculation").
    OutOfMemory {
        /// Bytes per core the layout demanded.
        needed_per_core: u64,
        /// Bytes per core the machine offers.
        available_per_core: u64,
    },
}

impl GaOutcome {
    /// The report, if the run completed.
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            GaOutcome::Completed(r) => Some(r),
            GaOutcome::OutOfMemory { .. } => None,
        }
    }
}

/// Simulates the GA baseline on a trace whose distributed arrays total
/// `dist_bytes_total` bytes.
pub fn simulate_ga(trace: &Trace, cfg: &GaConfig, dist_bytes_total: u64) -> GaOutcome {
    // Rigid layout feasibility gate.
    let needed =
        (dist_bytes_total as f64 * cfg.rigidity / cfg.workers as f64) as u64 + cfg.replicated_bytes;
    if needed > cfg.machine.mem_per_core {
        return GaOutcome::OutOfMemory {
            needed_per_core: needed,
            available_per_core: cfg.machine.mem_per_core,
        };
    }
    // Same machine at the baseline's sustained rate, no overlap pipeline,
    // heavier per-transfer software cost.
    let mut machine = cfg.machine;
    machine.flops_per_core *= cfg.compute_efficiency.clamp(0.01, 1.0);
    let sim_cfg = SimConfig {
        workers: cfg.workers,
        io_servers: 1,
        machine,
        prefetch_depth: 0,
        cache_blocks: 1,
        chunk_factor: 2,
        chunk_policy: None,
        per_transfer_overhead: cfg.per_transfer_overhead,
    };
    GaOutcome::Completed(simulate(trace, &sim_cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SGI_ALTIX;
    use crate::sip_model::SimConfig;
    use sia_runtime::trace::{IterProfile, TracePhase};

    fn trace() -> Trace {
        Trace {
            phases: vec![TracePhase::Pardo {
                pc: 0,
                iterations: 4000,
                per_iter: IterProfile {
                    gets: 4,
                    get_bytes: 4 * 512 * 1024,
                    puts: 1,
                    put_bytes: 512 * 1024,
                    flops: 400_000_000,
                    ..Default::default()
                },
            }],
        }
    }

    #[test]
    fn oom_when_rigid_layout_does_not_fit() {
        // 64 GB of distributed data, 2× rigidity, 16 workers → 8 GB/core
        // needed against 1 GB available.
        let machine = SGI_ALTIX.with_mem_per_core(1 << 30);
        let cfg = GaConfig::new(machine, 16);
        let out = simulate_ga(&trace(), &cfg, 64 << 30);
        assert!(matches!(out, GaOutcome::OutOfMemory { .. }));
        assert!(out.report().is_none());
    }

    #[test]
    fn completes_with_enough_memory() {
        let machine = SGI_ALTIX.with_mem_per_core(4 << 30);
        let cfg = GaConfig::new(machine, 64);
        // 32 GB × 3.25 rigidity / 64 workers + 0.9 GB replicated ≈ 2.5 GB.
        let out = simulate_ga(&trace(), &cfg, 32 << 30);
        assert!(out.report().is_some());
    }

    #[test]
    fn slower_than_sip_on_same_machine() {
        let machine = SGI_ALTIX.with_mem_per_core(16 << 30);
        let t = trace();
        let ga = simulate_ga(&t, &GaConfig::new(machine, 64), 1 << 30)
            .report()
            .unwrap()
            .total_time;
        let sip = simulate(&t, &SimConfig::sip(machine, 64)).total_time;
        assert!(
            ga > sip,
            "GA (no overlap, heavier transfers) must be slower: {ga} vs {sip}"
        );
    }

    #[test]
    fn more_memory_does_not_change_speed_once_feasible() {
        // Figure 7: NWChem@2GB and @4GB track each other — memory buys
        // feasibility, not speed.
        let t = trace();
        let g2 = simulate_ga(
            &t,
            &GaConfig::new(SGI_ALTIX.with_mem_per_core(2 << 30), 64),
            8 << 30,
        );
        let g4 = simulate_ga(
            &t,
            &GaConfig::new(SGI_ALTIX.with_mem_per_core(4 << 30), 64),
            8 << 30,
        );
        let (Some(r2), Some(r4)) = (g2.report(), g4.report()) else {
            panic!("both must complete");
        };
        assert!((r2.total_time - r4.total_time).abs() < 1e-12);
    }
}
