//! The SIP simulator: a chunk-grained discrete-event model.
//!
//! Policies reproduced from the real runtime (`sia-runtime`):
//!
//! * **Guided scheduling** — the identical [`GuidedScheduler`] chunk
//!   sequence, with every chunk request/assignment an explicit event through
//!   a serialized master (so master contention at extreme scale emerges
//!   naturally, as in Figure 6's ≥84k-core regression).
//! * **Overlap** — within a chunk, iterations run as a software pipeline:
//!   with prefetch depth ≥ 1 the per-iteration cost is `max(compute, comm)`
//!   plus one exposed fill; with depth 0 (or the GA baseline) costs add.
//! * **Cache pressure** — prefetching more block buffers than the cache
//!   holds causes eviction/refetch, inflating communication (the paper's
//!   BlueGene/P tuning anecdote, §VI-A).
//! * **Barriers and collectives** — log-tree costs plus straggler wait,
//!   using each worker's actual finish time.

use crate::machine::MachineModel;
use sia_runtime::scheduler::{ChunkPolicy, GuidedScheduler};
use sia_runtime::trace::{IterProfile, Trace, TracePhase};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Worker count (the paper's "processors").
    pub workers: u64,
    /// I/O server count (for served-array disk bandwidth aggregation).
    pub io_servers: u64,
    /// The machine.
    pub machine: MachineModel,
    /// Prefetch look-ahead depth (0 disables overlap).
    pub prefetch_depth: u32,
    /// Worker block-cache capacity in blocks.
    pub cache_blocks: u64,
    /// Guided-scheduling divisor (as in the real SIP).
    pub chunk_factor: u64,
    /// Chunk-sizing policy override (`None` = guided with `chunk_factor`);
    /// used by the scheduling ablation.
    pub chunk_policy: Option<ChunkPolicy>,
    /// Extra software overhead per transfer (seconds); the GA baseline uses
    /// a higher value for its one-sided handshakes.
    pub per_transfer_overhead: f64,
}

impl SimConfig {
    /// A SIP-flavored config on `machine` with `workers` workers.
    pub fn sip(machine: MachineModel, workers: u64) -> Self {
        SimConfig {
            workers,
            io_servers: (workers / 32).max(1),
            machine,
            prefetch_depth: 2,
            cache_blocks: 256,
            chunk_factor: 2,
            chunk_policy: None,
            per_transfer_overhead: 1.0e-6,
        }
    }
}

/// Per-phase simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label (pardo pc, "serial", "barrier", …).
    pub label: String,
    /// Wall time of the phase (seconds).
    pub time: f64,
    /// Total worker-seconds spent waiting in the phase.
    pub wait: f64,
    /// Bytes moved in the phase (all workers).
    pub bytes: u64,
}

/// Whole-run simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Wall time (seconds).
    pub total_time: f64,
    /// Mean fraction of worker time spent waiting (the paper's Figure 2
    /// bottom line).
    pub wait_fraction: f64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Total simulated flops.
    pub total_flops: u64,
}

impl SimReport {
    /// Parallel efficiency of this run relative to a reference run:
    /// `(T_ref · P_ref) / (T · P)`.
    pub fn efficiency_vs(&self, reference: &SimReport, p_ref: u64, p: u64) -> f64 {
        (reference.total_time * p_ref as f64) / (self.total_time * p as f64)
    }
}

/// Cost of one iteration of a pardo on this machine/config.
#[derive(Debug, Clone, Copy)]
struct IterCost {
    /// Compute seconds.
    compute: f64,
    /// Communication seconds (network + disk), after cache-pressure
    /// inflation.
    comm: f64,
    /// Bytes moved.
    bytes: u64,
}

fn iter_cost(p: &IterProfile, cfg: &SimConfig) -> IterCost {
    let m = &cfg.machine;
    let compute = p.flops as f64 / m.flops_per_core;
    let net_msgs = p.gets + p.puts;
    let net_bytes = p.get_bytes + p.put_bytes;
    let mut comm = m.transfer_time(net_msgs, net_bytes, cfg.workers)
        + net_msgs as f64 * cfg.per_transfer_overhead;
    // Served traffic: shared disk bandwidth across all workers.
    let disk_msgs = p.requests + p.prepares;
    let disk_bytes = p.request_bytes + p.prepare_bytes;
    if disk_msgs > 0 {
        let agg_disk = m.disk_bw * cfg.io_servers as f64;
        let share = agg_disk / cfg.workers as f64;
        comm += m.transfer_time(disk_msgs, 0, cfg.workers)
            + disk_bytes as f64 / share
            + disk_msgs as f64 * cfg.per_transfer_overhead;
    }
    // Cache pressure: the prefetch stream keeps ~depth+1 block buffers
    // resident ahead of the consumer; when the cache cannot hold them,
    // early arrivals evict blocks still awaiting use and must be refetched
    // ("blocks arriving too early, causing eviction and refetching of
    // blocks that would be reused" — §VI-A). Effective traffic multiplies
    // by the oversubscription ratio.
    if cfg.prefetch_depth > 0 && p.gets > 0 {
        let in_flight = cfg.prefetch_depth as u64 + 1;
        if in_flight > cfg.cache_blocks.max(1) {
            comm *= in_flight as f64 / cfg.cache_blocks.max(1) as f64;
        }
    }
    IterCost {
        compute,
        comm,
        bytes: net_bytes + disk_bytes,
    }
}

/// Time and wait for a chunk of `n` homogeneous iterations.
fn chunk_cost(n: u64, c: IterCost, cfg: &SimConfig) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    if cfg.prefetch_depth == 0 {
        // No overlap: communication fully exposed.
        let t = n as f64 * (c.compute + c.comm);
        (t, n as f64 * c.comm)
    } else {
        // Pipeline: first fetch exposed, then the longer of the two streams.
        let per_iter = c.compute.max(c.comm);
        let exposed = (c.comm - c.compute).max(0.0);
        let t = c.comm + n as f64 * per_iter;
        (t, c.comm + n as f64 * exposed)
    }
}

/// Simulates a traced program.
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimReport {
    let w = cfg.workers.max(1) as usize;
    let m = &cfg.machine;
    let mut clocks = vec![0.0f64; w];
    let mut waits = vec![0.0f64; w];
    let mut phases = Vec::with_capacity(trace.phases.len());
    let mut total_bytes = 0u64;

    for phase in &trace.phases {
        match phase {
            TracePhase::Serial(p) => {
                // Every worker executes the serial section redundantly.
                let c = iter_cost(p, cfg);
                let t0 = max_clock(&clocks);
                let (t, wait) = chunk_cost(1, c, cfg);
                for (cl, wl) in clocks.iter_mut().zip(waits.iter_mut()) {
                    *cl += t;
                    *wl += wait;
                }
                total_bytes += c.bytes * w as u64;
                phases.push(PhaseReport {
                    label: "serial".into(),
                    time: max_clock(&clocks) - t0,
                    wait: wait * w as f64,
                    bytes: c.bytes * w as u64,
                });
            }
            TracePhase::Pardo {
                pc,
                iterations,
                per_iter,
            } => {
                let t0 = max_clock(&clocks);
                let (phase_wait, phase_bytes) =
                    simulate_pardo(*iterations, per_iter, cfg, &mut clocks, &mut waits);
                total_bytes += phase_bytes;
                phases.push(PhaseReport {
                    label: format!("pardo@{pc}"),
                    time: max_clock(&clocks) - t0,
                    wait: phase_wait,
                    bytes: phase_bytes,
                });
            }
            TracePhase::SipBarrier | TracePhase::ServerBarrier | TracePhase::Collective => {
                let t0 = max_clock(&clocks);
                let sync = t0 + m.barrier_time(cfg.workers);
                let mut wait_sum = 0.0;
                for (cl, wl) in clocks.iter_mut().zip(waits.iter_mut()) {
                    let wait = sync - *cl;
                    *wl += wait;
                    wait_sum += wait;
                    *cl = sync;
                }
                phases.push(PhaseReport {
                    label: match phase {
                        TracePhase::SipBarrier => "sip_barrier".into(),
                        TracePhase::ServerBarrier => "server_barrier".into(),
                        _ => "collective".into(),
                    },
                    time: sync - t0,
                    wait: wait_sum,
                    bytes: 0,
                });
            }
        }
    }

    let total_time = max_clock(&clocks);
    let total_worker_time: f64 = total_time * w as f64;
    let total_wait: f64 = waits.iter().sum();
    SimReport {
        total_time,
        wait_fraction: if total_worker_time > 0.0 {
            total_wait / total_worker_time
        } else {
            0.0
        },
        phases,
        total_bytes,
        total_flops: trace.total_flops(),
    }
}

fn max_clock(clocks: &[f64]) -> f64 {
    clocks.iter().copied().fold(0.0, f64::max)
}

/// The chunk-grained DES for one pardo.
fn simulate_pardo(
    iterations: u64,
    per_iter: &IterProfile,
    cfg: &SimConfig,
    clocks: &mut [f64],
    waits: &mut [f64],
) -> (f64, u64) {
    let w = clocks.len();
    let m = &cfg.machine;
    let cost = iter_cost(per_iter, cfg);
    let policy = cfg.chunk_policy.unwrap_or(ChunkPolicy::Guided {
        factor: cfg.chunk_factor as usize,
    });
    let mut sched = GuidedScheduler::with_policy(iterations, w, policy);
    let mut phase_wait = 0.0;
    let mut phase_bytes = 0u64;

    // Event queue of chunk-request arrivals at the master, ordered by time.
    // f64 isn't Ord; times are finite so bit-ordering is sound for positives.
    #[derive(PartialEq)]
    struct Ev(f64, usize);
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.1.cmp(&other.1))
        }
    }

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    for (i, &c) in clocks.iter().enumerate() {
        heap.push(Reverse(Ev(c + m.net_latency, i)));
    }
    let mut master_free = 0.0f64;

    while let Some(Reverse(Ev(arrive, worker))) = heap.pop() {
        // The master serializes scheduler requests; assigning a chunk also
        // costs per-iteration enumeration/marshalling time (the real master
        // builds each chunk's explicit iteration list).
        let service_start = arrive.max(master_free);
        match sched.next_chunk() {
            Some(range) => {
                let n = range.end - range.start;
                master_free = service_start + m.master_service + n as f64 * m.master_per_iter;
                let assign_arrive = master_free + m.net_latency;
                // Idle from sending the request until the assignment lands.
                let idle = assign_arrive - clocks[worker];
                waits[worker] += idle;
                phase_wait += idle;
                let (t, chunk_wait) = chunk_cost(n, cost, cfg);
                waits[worker] += chunk_wait;
                phase_wait += chunk_wait;
                clocks[worker] = assign_arrive + t;
                phase_bytes += cost.bytes * n;
                heap.push(Reverse(Ev(clocks[worker] + m.net_latency, worker)));
            }
            None => {
                // NoMoreChunks: the reply itself still costs a round trip.
                master_free = service_start + m.master_service;
                let done_at = master_free + m.net_latency;
                if done_at > clocks[worker] {
                    let idle = done_at - clocks[worker];
                    waits[worker] += idle;
                    phase_wait += idle;
                    clocks[worker] = done_at;
                }
            }
        }
    }
    (phase_wait, phase_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{CRAY_XT5, SUN_OPTERON_IB};

    fn flat_trace(iterations: u64, flops: u64, get_bytes: u64) -> Trace {
        Trace {
            phases: vec![TracePhase::Pardo {
                pc: 0,
                iterations,
                per_iter: IterProfile {
                    gets: if get_bytes > 0 { 1 } else { 0 },
                    get_bytes,
                    flops,
                    ..Default::default()
                },
            }],
        }
    }

    #[test]
    fn more_workers_faster_until_saturation() {
        let t = flat_trace(10_000, 2_000_000_000, 2_000_000);
        let t1 = simulate(&t, &SimConfig::sip(CRAY_XT5, 10)).total_time;
        let t2 = simulate(&t, &SimConfig::sip(CRAY_XT5, 100)).total_time;
        let t3 = simulate(&t, &SimConfig::sip(CRAY_XT5, 1000)).total_time;
        assert!(t2 < t1 * 0.5, "10→100 workers must speed up: {t1} {t2}");
        assert!(t3 < t2, "100→1000 still faster: {t2} {t3}");
        // Efficiency decays.
        let e2 = (t1 * 10.0) / (t2 * 100.0);
        let e3 = (t1 * 10.0) / (t3 * 1000.0);
        assert!(e2 <= 1.02);
        assert!(e3 < e2);
    }

    #[test]
    fn tiny_work_at_huge_scale_slows_down() {
        // Figure 6 regime: few small tasks over very many workers — adding
        // workers past the knee must not help (master RTT dominates).
        let t = flat_trace(200_000, 2_000_000, 0);
        let t72k = simulate(&t, &SimConfig::sip(CRAY_XT5, 72_000)).total_time;
        let t108k = simulate(&t, &SimConfig::sip(CRAY_XT5, 108_000)).total_time;
        assert!(
            t108k > t72k * 0.95,
            "no meaningful speedup past saturation: {t72k} vs {t108k}"
        );
    }

    #[test]
    fn overlap_beats_no_overlap_when_comm_bound() {
        let t = flat_trace(5_000, 10_000_000, 4_000_000);
        let mut with = SimConfig::sip(SUN_OPTERON_IB, 64);
        with.prefetch_depth = 2;
        let mut without = with;
        without.prefetch_depth = 0;
        let tw = simulate(&t, &with).total_time;
        let to = simulate(&t, &without).total_time;
        assert!(tw < to, "overlap must help: {tw} vs {to}");
    }

    #[test]
    fn wait_fraction_small_when_compute_bound() {
        // Heavy compute, light comm → the paper's 8–13% (or less).
        let t = flat_trace(5_000, 4_000_000_000, 400_000);
        let r = simulate(&t, &SimConfig::sip(SUN_OPTERON_IB, 64));
        assert!(r.wait_fraction < 0.15, "wait fraction {}", r.wait_fraction);
    }

    #[test]
    fn wait_fraction_high_when_comm_bound_without_overlap() {
        let t = flat_trace(5_000, 1_000_000, 8_000_000);
        let mut cfg = SimConfig::sip(SUN_OPTERON_IB, 64);
        cfg.prefetch_depth = 0;
        let r = simulate(&t, &cfg);
        assert!(r.wait_fraction > 0.5, "wait fraction {}", r.wait_fraction);
    }

    #[test]
    fn cache_pressure_inflates_comm() {
        let mut per_iter = IterProfile {
            gets: 100,
            get_bytes: 100 * 64 * 1024,
            flops: 50_000_000,
            ..Default::default()
        };
        let trace = Trace {
            phases: vec![TracePhase::Pardo {
                pc: 0,
                iterations: 1000,
                per_iter,
            }],
        };
        let mut small_cache = SimConfig::sip(CRAY_XT5, 64);
        small_cache.cache_blocks = 3;
        small_cache.prefetch_depth = 8;
        let mut big_cache = small_cache;
        big_cache.cache_blocks = 10_000;
        let ts = simulate(&trace, &small_cache).total_time;
        let tb = simulate(&trace, &big_cache).total_time;
        assert!(ts > tb, "thrashing cache must be slower: {ts} vs {tb}");
        per_iter.gets = 0;
        let _ = per_iter;
    }

    #[test]
    fn barriers_synchronize_clocks() {
        let t = Trace {
            phases: vec![
                TracePhase::Pardo {
                    pc: 0,
                    iterations: 7, // uneven over 4 workers
                    per_iter: IterProfile {
                        flops: 1_000_000_000,
                        ..Default::default()
                    },
                },
                TracePhase::SipBarrier,
            ],
        };
        let r = simulate(&t, &SimConfig::sip(CRAY_XT5, 4));
        assert_eq!(r.phases.len(), 2);
        assert!(r.phases[1].wait > 0.0, "stragglers create barrier wait");
    }

    #[test]
    fn serial_phase_costs_everyone() {
        let t = Trace {
            phases: vec![TracePhase::Serial(IterProfile {
                flops: 1_000_000_000,
                ..Default::default()
            })],
        };
        let one = simulate(&t, &SimConfig::sip(CRAY_XT5, 1)).total_time;
        let many = simulate(&t, &SimConfig::sip(CRAY_XT5, 1000)).total_time;
        assert!((one - many).abs() / one < 1e-9, "serial does not scale");
    }

    #[test]
    fn efficiency_helper() {
        let t = flat_trace(10_000, 1_000_000_000, 100_000);
        let r32 = simulate(&t, &SimConfig::sip(SUN_OPTERON_IB, 32));
        let r256 = simulate(&t, &SimConfig::sip(SUN_OPTERON_IB, 256));
        let eff = r256.efficiency_vs(&r32, 32, 256);
        assert!(eff > 0.3 && eff <= 1.05, "eff {eff}");
    }

    #[test]
    fn report_totals() {
        let t = flat_trace(100, 1_000_000, 1024);
        let r = simulate(&t, &SimConfig::sip(CRAY_XT5, 8));
        assert_eq!(r.total_flops, 100 * 1_000_000);
        assert_eq!(r.total_bytes, 100 * 1024);
        assert!(r.total_time > 0.0);
    }
}
