//! Machine models of the systems in the paper's evaluation (§VI).
//!
//! Parameters are calibrated to published 2008–2010 specifications and to the
//! sustained (not peak) rates dense tensor kernels achieved on them. They do
//! not need to be exact: the experiments compare *shapes* across processor
//! counts and machines, which depend on the ratios (flops : latency :
//! bandwidth), not on absolute values.

/// A parallel machine for the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained double-precision flop/s per core on DGEMM-shaped kernels.
    pub flops_per_core: f64,
    /// One-way network latency per message (seconds), including software
    /// overhead.
    pub net_latency: f64,
    /// Injection bandwidth available to one core (bytes/s) when the network
    /// is uncontended.
    pub link_bw_per_core: f64,
    /// Exponent of aggregate-bandwidth scaling: per-core effective bandwidth
    /// under full load is `link_bw_per_core · P^(net_scale_exp − 1)`.
    /// 1.0 = full-bisection fat tree; ~0.9 for large 3-D torus partitions.
    pub net_scale_exp: f64,
    /// Master service time per scheduler request (seconds of master CPU).
    pub master_service: f64,
    /// Master time per *iteration* handed out: the master enumerates the
    /// filtered iteration space and marshals each chunk's iteration list
    /// (exactly what the real SIP master does), so huge fine-grained pardos
    /// serialize on the master at extreme scale — the Figure 6 mechanism.
    pub master_per_iter: f64,
    /// Sustained disk bandwidth per I/O server (bytes/s).
    pub disk_bw: f64,
    /// Memory per core (bytes) — the resource Figure 7 varies.
    pub mem_per_core: u64,
    /// Cores per node (for reporting; contention is folded into
    /// `net_scale_exp`).
    pub cores_per_node: usize,
}

impl MachineModel {
    /// Effective per-core bandwidth with `p` cores communicating at once.
    pub fn effective_bw(&self, p: u64) -> f64 {
        let p = p.max(1) as f64;
        self.link_bw_per_core * p.powf(self.net_scale_exp - 1.0)
    }

    /// Time to move `bytes` in `messages` messages from one core, under load
    /// from `p` concurrently communicating cores.
    pub fn transfer_time(&self, messages: u64, bytes: u64, p: u64) -> f64 {
        messages as f64 * self.net_latency + bytes as f64 / self.effective_bw(p)
    }

    /// Log-tree barrier cost across `p` cores.
    pub fn barrier_time(&self, p: u64) -> f64 {
        let stages = (p.max(2) as f64).log2().ceil();
        2.0 * stages * self.net_latency
    }

    /// Returns a copy with a different per-core memory (Figure 7 sweeps
    /// 1/2/4 GB per core).
    pub fn with_mem_per_core(mut self, bytes: u64) -> Self {
        self.mem_per_core = bytes;
        self
    }
}

/// Sun Opteron cluster with InfiniBand — "midnight" at ARSC (Figure 2).
/// 2.6 GHz dual-core Opterons, SDR/DDR InfiniBand.
pub const SUN_OPTERON_IB: MachineModel = MachineModel {
    name: "Sun Opteron cluster (midnight, ARSC)",
    flops_per_core: 4.2e9,
    net_latency: 4.0e-6,
    link_bw_per_core: 700.0e6,
    net_scale_exp: 0.97,
    master_service: 3.0e-6,
    master_per_iter: 2.5e-6,
    disk_bw: 200.0e6,
    mem_per_core: 4 << 30,
    cores_per_node: 4,
};

/// Cray XT4 — "kraken" at NICS (Figure 3). Dual-core Opteron + SeaStar2.
pub const CRAY_XT4: MachineModel = MachineModel {
    name: "Cray XT4 (kraken, NICS)",
    flops_per_core: 4.4e9,
    net_latency: 6.5e-6,
    link_bw_per_core: 1.1e9,
    net_scale_exp: 0.93,
    master_service: 2.5e-6,
    master_per_iter: 2.5e-6,
    disk_bw: 400.0e6,
    mem_per_core: 2 << 30,
    cores_per_node: 4,
};

/// Cray XT5 — "jaguar" at ORNL / "pingo" at ARSC (Figures 3–6). Quad-core
/// Opteron + SeaStar2+.
pub const CRAY_XT5: MachineModel = MachineModel {
    name: "Cray XT5 (jaguar, ORNL)",
    flops_per_core: 8.8e9,
    net_latency: 5.0e-6,
    link_bw_per_core: 1.4e9,
    net_scale_exp: 0.93,
    master_service: 2.0e-6,
    master_per_iter: 2.5e-6,
    disk_bw: 600.0e6,
    mem_per_core: 2 << 30,
    cores_per_node: 8,
};

/// SGI Altix 4700 — "pople" at PSC (Figure 7). Itanium2 + NUMAlink.
pub const SGI_ALTIX: MachineModel = MachineModel {
    name: "SGI Altix 4700 (pople, PSC)",
    flops_per_core: 5.8e9,
    net_latency: 1.5e-6,
    link_bw_per_core: 1.8e9,
    net_scale_exp: 0.99,
    master_service: 2.0e-6,
    master_per_iter: 2.5e-6,
    disk_bw: 500.0e6,
    mem_per_core: 2 << 30,
    cores_per_node: 2,
};

/// BlueGene/P at Argonne (§VI-A port anecdote). 850 MHz PPC450: very slow
/// cores against a comparatively capable torus — "significantly different
/// processor/network performance ratios" — and little memory per core.
pub const BLUEGENE_P: MachineModel = MachineModel {
    name: "BlueGene/P (intrepid, ALCF)",
    // 850 MHz PPC450 with the double-hummer FPU: 3.4 GF peak, ~65%
    // sustained on DGEMM — about a quarter of an XT5 core, matching the
    // paper's "within a factor of four commensurate with the ratio of the
    // processor speeds".
    flops_per_core: 2.2e9,
    net_latency: 3.5e-6,
    link_bw_per_core: 0.9e9,
    net_scale_exp: 0.92,
    master_service: 6.0e-6,
    master_per_iter: 5.0e-6,
    disk_bw: 300.0e6,
    mem_per_core: 512 << 20,
    cores_per_node: 4,
};

/// All presets, for sweep harnesses.
pub const ALL_MACHINES: &[MachineModel] =
    &[SUN_OPTERON_IB, CRAY_XT4, CRAY_XT5, SGI_ALTIX, BLUEGENE_P];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bw_decreases_with_scale() {
        let m = CRAY_XT5;
        assert!(m.effective_bw(1) >= m.effective_bw(1000));
        assert!(m.effective_bw(1000) >= m.effective_bw(100_000));
        // Full-bisection machine does not lose bandwidth.
        let fat = MachineModel {
            net_scale_exp: 1.0,
            ..CRAY_XT5
        };
        assert_eq!(fat.effective_bw(1), fat.effective_bw(100_000));
    }

    #[test]
    fn transfer_time_composition() {
        let m = SUN_OPTERON_IB;
        let t = m.transfer_time(2, 1_000_000, 1);
        assert!((t - (2.0 * m.net_latency + 1.0e6 / m.link_bw_per_core)).abs() < 1e-12);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let m = CRAY_XT5;
        let b1k = m.barrier_time(1024);
        let b1m = m.barrier_time(1 << 20);
        assert!(b1m > b1k);
        assert!((b1m / b1k - 2.0).abs() < 0.01, "log2 scaling: {b1k} {b1m}");
    }

    #[test]
    fn bgp_ratio_differs_from_xt5() {
        // The §VI-A anecdote hinges on BG/P having a much lower
        // compute-to-network ratio than the XT5 (slow cores, capable torus).
        let xt5 = CRAY_XT5.flops_per_core / CRAY_XT5.link_bw_per_core;
        let bgp = BLUEGENE_P.flops_per_core / BLUEGENE_P.link_bw_per_core;
        assert!(xt5 > 2.0 * bgp, "xt5 ratio {xt5}, bgp ratio {bgp}");
        // And on BG/P cores being ~4× slower (the paper's "factor of four").
        let speed_ratio = CRAY_XT5.flops_per_core / BLUEGENE_P.flops_per_core;
        assert!((3.0..6.0).contains(&speed_ratio));
    }

    #[test]
    fn mem_override() {
        let m = SGI_ALTIX.with_mem_per_core(1 << 30);
        assert_eq!(m.mem_per_core, 1 << 30);
        assert_eq!(m.name, SGI_ALTIX.name);
    }
}
