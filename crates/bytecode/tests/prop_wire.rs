//! Property tests for the wire format: arbitrary programs round-trip
//! exactly, and corrupt streams never panic.

use proptest::prelude::*;
use sia_bytecode::ops::PrintItem;
use sia_bytecode::{
    decode_program, encode_program, Arg, ArrayDecl, ArrayId, ArrayKind, BinOp, BlockRef, BoolExpr,
    CmpOp, ConstId, IndexDecl, IndexId, IndexKind, Instruction, ProcDecl, ProcId, Program, PutMode,
    ScalarDecl, ScalarExpr, ScalarId, StringId, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Lit),
        (0u32..8).prop_map(|i| Value::Sym(ConstId(i))),
    ]
}

fn arb_index_kind() -> impl Strategy<Value = IndexKind> {
    prop_oneof![
        Just(IndexKind::AoIndex),
        Just(IndexKind::MoIndex),
        Just(IndexKind::MoAIndex),
        Just(IndexKind::MoBIndex),
        Just(IndexKind::LaIndex),
        Just(IndexKind::Simple),
        (0u32..4).prop_map(|i| IndexKind::Subindex { parent: IndexId(i) }),
    ]
}

fn arb_scalar_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (-1e6..1e6f64).prop_map(ScalarExpr::Lit),
        (0u32..8).prop_map(|i| ScalarExpr::Scalar(ScalarId(i))),
        (0u32..8).prop_map(|i| ScalarExpr::IndexVal(IndexId(i))),
        (0u32..8).prop_map(|i| ScalarExpr::Const(ConstId(i))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| ScalarExpr::Bin(op, Box::new(l), Box::new(r))),
            inner.prop_map(|x| ScalarExpr::Neg(Box::new(x))),
        ]
    })
}

fn arb_bool_expr() -> impl Strategy<Value = BoolExpr> {
    let cmp = (
        arb_scalar_expr(),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        arb_scalar_expr(),
    )
        .prop_map(|(l, op, r)| BoolExpr::Cmp(l, op, r));
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|x| BoolExpr::Not(Box::new(x))),
        ]
    })
}

fn arb_block_ref() -> impl Strategy<Value = BlockRef> {
    (0u32..8, prop::collection::vec(0u32..8, 0..5)).prop_map(|(a, idx)| BlockRef {
        array: ArrayId(a),
        indices: idx.into_iter().map(IndexId).collect(),
    })
}

fn arb_put_mode() -> impl Strategy<Value = PutMode> {
    prop_oneof![Just(PutMode::Replace), Just(PutMode::Accumulate)]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (
            prop::collection::vec(0u32..8, 1..4),
            prop::collection::vec(arb_bool_expr(), 0..2),
            any::<u32>()
        )
            .prop_map(|(idx, wheres, end)| Instruction::PardoStart {
                indices: idx.into_iter().map(IndexId).collect(),
                where_clauses: wheres,
                end_pc: end,
            }),
        any::<u32>().prop_map(|pc| Instruction::PardoEnd { start_pc: pc }),
        (0u32..8, any::<u32>()).prop_map(|(i, pc)| Instruction::DoStart {
            index: IndexId(i),
            end_pc: pc
        }),
        any::<u32>().prop_map(|pc| Instruction::DoEnd { start_pc: pc }),
        (0u32..8, 0u32..8, any::<u32>(), any::<bool>()).prop_map(|(s, p, pc, par)| {
            Instruction::DoInStart {
                sub: IndexId(s),
                parent: IndexId(p),
                end_pc: pc,
                parallel: par,
            }
        }),
        (arb_bool_expr(), any::<u32>())
            .prop_map(|(c, t)| Instruction::JumpIfFalse { cond: c, target: t }),
        any::<u32>().prop_map(|t| Instruction::Jump { target: t }),
        (0u32..4).prop_map(|p| Instruction::Call { proc: ProcId(p) }),
        Just(Instruction::Return),
        Just(Instruction::Halt),
        arb_block_ref().prop_map(|b| Instruction::Get { block: b }),
        (arb_block_ref(), arb_block_ref(), arb_put_mode()).prop_map(|(d, s, m)| Instruction::Put {
            dest: d,
            src: s,
            mode: m
        }),
        arb_block_ref().prop_map(|b| Instruction::Request { block: b }),
        (arb_block_ref(), arb_block_ref(), arb_put_mode()).prop_map(|(d, s, m)| {
            Instruction::Prepare {
                dest: d,
                src: s,
                mode: m,
            }
        }),
        (arb_block_ref(), arb_scalar_expr())
            .prop_map(|(d, v)| Instruction::BlockFill { dest: d, value: v }),
        (arb_block_ref(), arb_block_ref())
            .prop_map(|(d, s)| Instruction::BlockCopy { dest: d, src: s }),
        (arb_block_ref(), arb_block_ref(), -1.0..1.0f64).prop_map(|(d, s, sign)| {
            Instruction::BlockAccumulate {
                dest: d,
                src: s,
                sign,
            }
        }),
        (
            arb_block_ref(),
            arb_block_ref(),
            arb_block_ref(),
            any::<bool>()
        )
            .prop_map(|(d, a, b, acc)| Instruction::BlockContract {
                dest: d,
                a,
                b,
                accumulate: acc
            }),
        (0u32..8, arb_scalar_expr()).prop_map(|(d, e)| Instruction::ScalarAssign {
            dest: ScalarId(d),
            expr: e
        }),
        (
            0u32..4,
            prop::collection::vec(
                prop_oneof![
                    arb_block_ref().prop_map(Arg::Block),
                    (0u32..8).prop_map(|i| Arg::Scalar(ScalarId(i))),
                    (0u32..8).prop_map(|i| Arg::Index(IndexId(i))),
                ],
                0..4
            )
        )
            .prop_map(|(n, args)| Instruction::ExecuteSuper {
                name: StringId(n),
                args
            }),
        prop::collection::vec(
            prop_oneof![
                (0u32..4).prop_map(|i| PrintItem::Str(StringId(i))),
                arb_scalar_expr().prop_map(PrintItem::Expr),
            ],
            0..3
        )
        .prop_map(|items| Instruction::Print { items }),
        Just(Instruction::SipBarrier),
        Just(Instruction::ServerBarrier),
        (0u32..8, 0u32..4).prop_map(|(a, l)| Instruction::BlocksToList {
            array: ArrayId(a),
            label: StringId(l)
        }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        "[a-z_][a-z0-9_]{0,10}",
        prop::collection::vec(
            (
                "[a-zA-Z][a-zA-Z0-9]{0,6}",
                arb_index_kind(),
                arb_value(),
                arb_value(),
            ),
            0..6,
        ),
        prop::collection::vec(
            (
                "[a-zA-Z][a-zA-Z0-9]{0,6}",
                prop_oneof![
                    Just(ArrayKind::Static),
                    Just(ArrayKind::Temp),
                    Just(ArrayKind::Local),
                    Just(ArrayKind::Distributed),
                    Just(ArrayKind::Served)
                ],
                prop::collection::vec(0u32..6, 0..4),
                any::<bool>(),
            ),
            0..6,
        ),
        prop::collection::vec(("[a-z]{1,8}", -10.0..10.0f64), 0..4),
        prop::collection::vec("[a-z]{1,8}", 0..4),
        prop::collection::vec(("[a-z]{1,8}", any::<u32>()), 0..3),
        prop::collection::vec(".{0,12}", 0..4),
        prop::collection::vec(arb_instruction(), 0..20),
        (
            any::<bool>(),
            "[a-z]{1,8}",
            prop::collection::vec(0u32..40, 0..24),
        ),
    )
        .prop_map(
            |(name, indices, arrays, scalars, consts, procs, strings, code, lt)| Program {
                name,
                indices: indices
                    .into_iter()
                    .map(|(name, kind, low, high)| IndexDecl {
                        name,
                        kind,
                        low,
                        high,
                    })
                    .collect(),
                arrays: arrays
                    .into_iter()
                    .map(|(name, kind, dims, sparse)| ArrayDecl {
                        name,
                        kind,
                        dims: dims.into_iter().map(IndexId).collect(),
                        sparse,
                    })
                    .collect(),
                scalars: scalars
                    .into_iter()
                    .map(|(name, init)| ScalarDecl { name, init })
                    .collect(),
                consts,
                procs: procs
                    .into_iter()
                    .map(|(name, entry_pc)| ProcDecl { name, entry_pc })
                    .collect(),
                strings,
                code,
                line_table: if lt.0 {
                    Some(sia_bytecode::LineTable {
                        file: lt.1,
                        lines: lt.2,
                    })
                } else {
                    None
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for arbitrary programs.
    #[test]
    fn wire_roundtrip(p in arb_program()) {
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Truncating an encoded program anywhere yields an error, never a panic
    /// or a silent success.
    #[test]
    fn truncation_always_errors(p in arb_program(), cut_frac in 0.0..1.0f64) {
        let bytes = encode_program(&p);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_program(&bytes[..cut]).is_err());
        }
    }

    /// Flipping a byte never panics (may decode to a different program or
    /// error, but must not crash).
    #[test]
    fn corruption_never_panics(p in arb_program(), pos_frac in 0.0..1.0f64, flip in 1u8..255) {
        let mut bytes = encode_program(&p).to_vec();
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] ^= flip;
            let _ = decode_program(&bytes);
        }
    }

    /// The disassembler accepts any program without panicking, even with
    /// dangling table references.
    #[test]
    fn disassembler_total(p in arb_program()) {
        let listing = sia_bytecode::disassemble(&p);
        prop_assert!(listing.contains("code:"));
    }
}
