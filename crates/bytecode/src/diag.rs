//! Span-carrying diagnostics shared across the SIA toolchain.
//!
//! One diagnostic currency for the whole stack: the lexer, parser, semantic
//! analyzer, lowering, the bytecode verifier, and the runtime all report
//! problems as a [`Diagnostic`] carrying the file, a byte range, a resolved
//! `line:col`, a severity, and a stable machine-readable code. The `sial`
//! CLI renders them clang-style (`file:line:col: error[code]: message`), the
//! LSP server converts them to `publishDiagnostics`, and `sial check --json`
//! serializes them under the stable `sia.diag.v1` schema.
//!
//! This module lives in `sia-bytecode` because it is the lowest layer both
//! the front-end and the runtime depend on.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// `Debug` deliberately elides the offsets: the incremental front-end
/// fingerprints AST content through `Debug` formatting, and positions must
/// not perturb content hashes (a whitespace-only edit that shifts every
/// span downstream must still fingerprint as "unchanged"). Use [`fmt::Display`]
/// or the public fields when the offsets matter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First byte of the range.
    pub start: u32,
    /// One past the last byte of the range.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `offset`.
    pub fn point(offset: u32) -> Self {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `offset` falls inside the range (zero-width spans contain
    /// their own offset).
    pub fn contains(self, offset: u32) -> bool {
        offset >= self.start && (offset < self.end || self.start == self.end && offset == self.end)
    }

    /// Byte length of the range.
    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// True when the range is zero-width.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Positions are invisible to content fingerprints; see the type docs.
        write!(f, "Span")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational note attached to another finding.
    Note,
    /// Suspicious but not necessarily wrong (e.g. a *possible* race).
    Warning,
    /// The program is rejected.
    Error,
}

impl Severity {
    /// Lower-case name used in rendered output and the JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to a byte range of a source file.
///
/// `line`/`col` are 1-based and derived from `span` via a [`LineMap`]
/// (0 means "unknown" — e.g. a verifier finding on bytecode loaded without
/// a line table).
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Source file the finding refers to (may be a pseudo-name like
    /// `<memory>` for in-process compiles).
    pub file: String,
    /// Byte range in that file.
    pub span: Span,
    /// 1-based line of `span.start`; 0 when unknown.
    pub line: u32,
    /// 1-based column (byte offset within the line) of `span.start`; 0 when
    /// unknown.
    pub col: u32,
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, `stage/kebab-name`
    /// (e.g. `parse/expected-token`, `sema/unknown-array`,
    /// `verify/write-write-race`).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// A new diagnostic with no location resolved yet.
    pub fn new(severity: Severity, code: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            file: String::new(),
            span,
            line: 0,
            col: 0,
            severity,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Shorthand for an error diagnostic.
    pub fn error(code: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, span, message)
    }

    /// Shorthand for a warning diagnostic.
    pub fn warning(code: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, span, message)
    }

    /// Fills `file` and resolves `line:col` from the span against `map`.
    pub fn locate(mut self, file: &str, map: &LineMap) -> Self {
        self.file = file.to_string();
        let (line, col) = map.line_col(self.span.start);
        self.line = line;
        self.col = col;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let file = if self.file.is_empty() {
            "<unknown>"
        } else {
            &self.file
        };
        if self.line > 0 {
            write!(
                f,
                "{file}:{}:{}: {}[{}]: {}",
                self.line, self.col, self.severity, self.code, self.message
            )
        } else {
            write!(
                f,
                "{file}: {}[{}]: {}",
                self.severity, self.code, self.message
            )
        }
    }
}

/// Byte-offset → `line:col` resolver for one source text.
///
/// Built once per revision of a file; O(log n) lookups. Lines and columns
/// are 1-based; columns count bytes (SIAL source is ASCII).
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset of the start of each line (always starts with 0).
    line_starts: Vec<u32>,
    /// Total length of the text in bytes.
    len: u32,
}

impl LineMap {
    /// Indexes `text`.
    pub fn new(text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap {
            line_starts,
            len: text.len() as u32,
        }
    }

    /// Number of lines (a trailing newline does not start a counted line
    /// unless text follows it; an empty text has one line).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// 1-based `(line, col)` of a byte offset. Offsets past the end clamp
    /// to the last position.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// Byte offset of the start of a 1-based line (clamped).
    pub fn line_start(&self, line: u32) -> u32 {
        let idx = (line.max(1) as usize - 1).min(self.line_starts.len() - 1);
        self.line_starts[idx]
    }

    /// Byte offset of a 1-based `line:col` position (clamped to the text).
    pub fn offset(&self, line: u32, col: u32) -> u32 {
        (self.line_start(line) + col.saturating_sub(1)).min(self.len)
    }

    /// The byte span of a whole 1-based line, excluding its newline.
    pub fn line_span(&self, line: u32) -> Span {
        let start = self.line_start(line);
        let end = if (line as usize) < self.line_starts.len() {
            self.line_starts[line as usize].saturating_sub(1)
        } else {
            self.len
        };
        Span::new(start, end.max(start))
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serializes diagnostics under the stable `sia.diag.v1` schema:
///
/// ```json
/// {
///   "schema": "sia.diag.v1",
///   "file": "programs/mp2.sial",
///   "count": 1,
///   "diagnostics": [
///     {"file": "...", "start": 10, "end": 14, "line": 2, "col": 3,
///      "severity": "error", "code": "sema/unknown-array", "message": "..."}
///   ]
/// }
/// ```
///
/// Field meanings are frozen: `start`/`end` are byte offsets, `line`/`col`
/// are 1-based (0 = unknown), `severity` is one of `error|warning|note`.
/// Additive evolution only; breaking changes bump to `sia.diag.v2`.
pub fn diagnostics_to_json(file: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"sia.diag.v1\",\"file\":\"");
    json_escape(file, &mut out);
    out.push_str(&format!("\",\"count\":{},\"diagnostics\":[", diags.len()));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":\"");
        json_escape(&d.file, &mut out);
        out.push_str(&format!(
            "\",\"start\":{},\"end\":{},\"line\":{},\"col\":{},\"severity\":\"{}\",\"code\":\"",
            d.span.start, d.span.end, d.line, d.col, d.severity
        ));
        json_escape(&d.code, &mut out);
        out.push_str("\",\"message\":\"");
        json_escape(&d.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_map_resolves_positions() {
        let map = LineMap::new("ab\ncd\n\nxyz");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(1), (1, 2));
        assert_eq!(map.line_col(3), (2, 1));
        assert_eq!(map.line_col(6), (3, 1));
        assert_eq!(map.line_col(7), (4, 1));
        assert_eq!(map.line_col(9), (4, 3));
        // Past-the-end clamps.
        assert_eq!(map.line_col(999), (4, 4));
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_map_roundtrips_offsets() {
        let text = "sial t\nindex i = 1, 4\nendsial\n";
        let map = LineMap::new(text);
        for off in 0..text.len() as u32 {
            let (l, c) = map.line_col(off);
            assert_eq!(map.offset(l, c), off, "offset {off}");
        }
    }

    #[test]
    fn line_span_excludes_newline() {
        let map = LineMap::new("ab\ncd\n");
        assert_eq!(map.line_span(1), Span::new(0, 2));
        assert_eq!(map.line_span(2), Span::new(3, 5));
    }

    #[test]
    fn empty_text() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_count(), 1);
    }

    #[test]
    fn diagnostic_renders_clang_style() {
        let map = LineMap::new("sial t\nbad line here\n");
        let d = Diagnostic::error("parse/expected-token", Span::new(7, 10), "expected `index`")
            .locate("prog.sial", &map);
        assert_eq!(
            d.to_string(),
            "prog.sial:2:1: error[parse/expected-token]: expected `index`"
        );
    }

    #[test]
    fn diagnostic_without_location() {
        let d = Diagnostic::error("verify/bad-id", Span::point(0), "dangling array id");
        assert_eq!(
            d.to_string(),
            "<unknown>: error[verify/bad-id]: dangling array id"
        );
    }

    #[test]
    fn span_debug_elides_offsets() {
        // Content fingerprints rely on this; see the type docs.
        assert_eq!(format!("{:?}", Span::new(3, 9)), "Span");
        assert_eq!(format!("{}", Span::new(3, 9)), "3..9");
    }

    #[test]
    fn span_cover_and_contains() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert!(a.contains(2));
        assert!(a.contains(4));
        assert!(!a.contains(5));
        assert!(Span::point(3).contains(3));
    }

    #[test]
    fn json_schema_shape() {
        let map = LineMap::new("x\ny \"quoted\"\n");
        let d = Diagnostic::error("sema/unknown-array", Span::new(2, 3), "no array `y\"`")
            .locate("a.sial", &map);
        let s = diagnostics_to_json("a.sial", &[d]);
        assert!(s.starts_with("{\"schema\":\"sia.diag.v1\""), "{s}");
        assert!(s.contains("\"count\":1"));
        assert!(s.contains("\"severity\":\"error\""));
        assert!(s.contains("\\\""), "escaping: {s}");
    }

    #[test]
    fn json_empty_is_valid() {
        let s = diagnostics_to_json("a.sial", &[]);
        assert_eq!(
            s,
            "{\"schema\":\"sia.diag.v1\",\"file\":\"a.sial\",\"count\":0,\"diagnostics\":[]}"
        );
    }
}
