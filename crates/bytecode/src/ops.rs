//! The SIA instruction set.
//!
//! Instructions fall into the four classes the paper names: computational
//! super instructions, control, I/O, and synchronization (§V-A). Control
//! flow uses explicit program-counter targets; loop instructions carry both
//! ends so the interpreter (and the prefetcher, which "recognizes the loops
//! that provide opportunities for effective overlapping") can find the loop
//! body without re-scanning.

use crate::program::{ArrayId, ConstId, IndexId, ProcId, ScalarId, StringId};

/// A reference to one block of an array, addressed by index variables:
/// `T(L,S,I,J)` becomes `BlockRef { array: T, indices: [L,S,I,J] }`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockRef {
    /// The array being addressed.
    pub array: ArrayId,
    /// The index variable naming each dimension's segment.
    pub indices: Vec<IndexId>,
}

/// Comparison operators in `if`/`where` conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two doubles.
    pub fn eval(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// Binary arithmetic operators in scalar expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Applies the operator.
    pub fn eval(self, l: f64, r: f64) -> f64 {
        match self {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => l / r,
        }
    }
}

/// A scalar-valued expression (over scalar variables, index values, and
/// literals). Index variables evaluate to their current segment number.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalarExpr {
    /// Literal double.
    Lit(f64),
    /// Value of a named scalar variable.
    Scalar(ScalarId),
    /// Current value of an index variable (as a double).
    IndexVal(IndexId),
    /// Value of a symbolic constant (bound at initialization).
    Const(ConstId),
    /// Binary arithmetic.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Neg(Box<ScalarExpr>),
}

/// A boolean expression in `if` statements and pardo `where` clauses.
#[derive(Clone, PartialEq, Debug)]
pub enum BoolExpr {
    /// Comparison of two scalar expressions.
    Cmp(ScalarExpr, CmpOp, ScalarExpr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

/// Whether a `put`/`prepare` replaces the target block or accumulates into
/// it. Per the paper, accumulates (`+=`) are atomic and need no barrier
/// between them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PutMode {
    /// `put R(..) = src` — replace.
    Replace,
    /// `put R(..) += src` — atomic accumulate.
    Accumulate,
}

/// An argument to a user super instruction (`execute`).
#[derive(Clone, PartialEq, Debug)]
pub enum Arg {
    /// A block operand.
    Block(BlockRef),
    /// A named scalar operand.
    Scalar(ScalarId),
    /// The current value of an index variable.
    Index(IndexId),
}

/// The instruction classes of §V-A, used by the profiler.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstructionClass {
    /// Computationally intensive block operations.
    Compute,
    /// Loops, branches, procedure linkage.
    Control,
    /// Data movement: get/put/request/prepare/checkpoint.
    Io,
    /// Barriers.
    Sync,
}

/// One SIA bytecode instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Instruction {
    // ---- control ----------------------------------------------------------
    /// Start of a `pardo` over `indices`, filtered by `where_clauses`. The
    /// body is `(pc+1) .. end_pc`; `end_pc` holds the matching [`Instruction::PardoEnd`].
    PardoStart {
        /// Indices iterated in parallel.
        indices: Vec<IndexId>,
        /// Conjunction of `where` filters.
        where_clauses: Vec<BoolExpr>,
        /// Pc of the matching `PardoEnd`.
        end_pc: u32,
    },
    /// End of a `pardo` body; workers fetch their next assigned iteration.
    PardoEnd {
        /// Pc of the matching `PardoStart`.
        start_pc: u32,
    },
    /// Start of a sequential `do` over one index.
    DoStart {
        /// The loop index.
        index: IndexId,
        /// Pc of the matching `DoEnd`.
        end_pc: u32,
    },
    /// End of a `do` body.
    DoEnd {
        /// Pc of the matching `DoStart`.
        start_pc: u32,
    },
    /// Start of a `do sub in parent` loop over the subsegments of the
    /// current segment of `parent` (§IV-E.3). `parallel` marks `pardo in`.
    DoInStart {
        /// The subindex iterated.
        sub: IndexId,
        /// Its super (parent) index, which must currently be defined.
        parent: IndexId,
        /// Pc of the matching `DoInEnd`.
        end_pc: u32,
        /// True for `pardo … in`.
        parallel: bool,
    },
    /// End of a `do … in` body.
    DoInEnd {
        /// Pc of the matching `DoInStart`.
        start_pc: u32,
    },
    /// `exit` — leave the innermost sequential loop: pop its frame and jump
    /// past its end.
    ExitLoop {
        /// Pc of the `DoStart`/`DoInStart` being exited.
        loop_start_pc: u32,
        /// Branch target (one past the loop end).
        target: u32,
    },
    /// Conditional branch: if `cond` is false, jump to `target`.
    JumpIfFalse {
        /// The condition.
        cond: BoolExpr,
        /// Branch target when false.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Branch target.
        target: u32,
    },
    /// Call a procedure.
    Call {
        /// The callee.
        proc: ProcId,
    },
    /// Return from a procedure (or end the program at top level).
    Return,
    /// Normal end of program.
    Halt,

    // ---- data management --------------------------------------------------
    /// Bring a distributed/served array into existence (blocks allocate
    /// lazily, "only when actually filled with data").
    Create {
        /// The array.
        array: ArrayId,
    },
    /// Drop an array's blocks.
    Delete {
        /// The array.
        array: ArrayId,
    },

    // ---- I/O super instructions -------------------------------------------
    /// `get T(..)` — asynchronously fetch a block of a distributed array.
    Get {
        /// The block fetched.
        block: BlockRef,
    },
    /// `put R(..) = src` / `put R(..) += src` — send a block to its home
    /// worker.
    Put {
        /// Destination block of a distributed array.
        dest: BlockRef,
        /// Source block (local).
        src: BlockRef,
        /// Replace or accumulate.
        mode: PutMode,
    },
    /// `request T(..)` — asynchronously fetch a block of a served array from
    /// its I/O server.
    Request {
        /// The block fetched.
        block: BlockRef,
    },
    /// `prepare S(..) = src` / `+=` — send a block to its I/O server.
    Prepare {
        /// Destination block of a served array.
        dest: BlockRef,
        /// Source block (local).
        src: BlockRef,
        /// Replace or accumulate.
        mode: PutMode,
    },
    /// Serialize a distributed array to a named checkpoint list.
    BlocksToList {
        /// The array serialized.
        array: ArrayId,
        /// Checkpoint label (string table).
        label: StringId,
    },
    /// Restore a distributed array from a named checkpoint list.
    ListToBlocks {
        /// The array restored.
        array: ArrayId,
        /// Checkpoint label (string table).
        label: StringId,
    },

    // ---- computational super instructions ----------------------------------
    /// `dest = s` — fill a block with a scalar.
    BlockFill {
        /// Destination block.
        dest: BlockRef,
        /// Fill value.
        value: ScalarExpr,
    },
    /// `dest = src` — copy with an implicit permutation when the index
    /// orders differ, or a slice/insertion when ranks mix sub- and
    /// super-indices.
    BlockCopy {
        /// Destination block.
        dest: BlockRef,
        /// Source block.
        src: BlockRef,
    },
    /// `dest += sign * src` (sign −1 for `-=`).
    BlockAccumulate {
        /// Destination block.
        dest: BlockRef,
        /// Source block.
        src: BlockRef,
        /// `+1.0` or `-1.0`.
        sign: f64,
    },
    /// `dest *= factor`.
    BlockScale {
        /// The block scaled in place.
        dest: BlockRef,
        /// Scale factor.
        factor: ScalarExpr,
    },
    /// `dest (+)= a * b` — the block contraction super instruction.
    BlockContract {
        /// Destination block.
        dest: BlockRef,
        /// Left operand.
        a: BlockRef,
        /// Right operand.
        b: BlockRef,
        /// True for `+=` (accumulate into dest).
        accumulate: bool,
    },
    /// `scalar = expr` — scalar assignment.
    ScalarAssign {
        /// Destination scalar.
        dest: ScalarId,
        /// Value.
        expr: ScalarExpr,
    },
    /// `scalar (+)= block · block` style reductions are lowered by the
    /// compiler into contractions to scalar blocks; this instruction folds a
    /// scalar-shaped block into a scalar variable.
    ScalarFromBlock {
        /// Destination scalar.
        dest: ScalarId,
        /// Source block (must be scalar-shaped).
        src: BlockRef,
        /// Accumulate rather than replace.
        accumulate: bool,
    },
    /// `execute name args…` — invoke a registered user super instruction.
    ExecuteSuper {
        /// Name (string table) resolved in the SIP registry.
        name: StringId,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// `print items…` — diagnostic output through the SIP console.
    Print {
        /// Format items: scalar expressions or literal strings.
        items: Vec<PrintItem>,
    },

    // ---- synchronization ---------------------------------------------------
    /// Barrier ordering conflicting accesses to *distributed* arrays.
    SipBarrier,
    /// Barrier ordering conflicting accesses to *served* arrays.
    ServerBarrier,
}

/// One item of a `print` statement.
#[derive(Clone, PartialEq, Debug)]
pub enum PrintItem {
    /// A literal string (string table).
    Str(StringId),
    /// A scalar expression.
    Expr(ScalarExpr),
}

impl Instruction {
    /// The profiler class of this instruction (§V-A).
    pub fn class(&self) -> InstructionClass {
        use Instruction::*;
        match self {
            PardoStart { .. }
            | PardoEnd { .. }
            | DoStart { .. }
            | DoEnd { .. }
            | DoInStart { .. }
            | DoInEnd { .. }
            | ExitLoop { .. }
            | JumpIfFalse { .. }
            | Jump { .. }
            | Call { .. }
            | Return
            | Halt
            | Create { .. }
            | Delete { .. } => InstructionClass::Control,
            Get { .. }
            | Put { .. }
            | Request { .. }
            | Prepare { .. }
            | BlocksToList { .. }
            | ListToBlocks { .. }
            | Print { .. } => InstructionClass::Io,
            BlockFill { .. }
            | BlockCopy { .. }
            | BlockAccumulate { .. }
            | BlockScale { .. }
            | BlockContract { .. }
            | ScalarAssign { .. }
            | ScalarFromBlock { .. }
            | ExecuteSuper { .. } => InstructionClass::Compute,
            SipBarrier | ServerBarrier => InstructionClass::Sync,
        }
    }

    /// Short mnemonic for profiles and the disassembler.
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            PardoStart { .. } => "pardo",
            PardoEnd { .. } => "endpardo",
            DoStart { .. } => "do",
            DoEnd { .. } => "enddo",
            DoInStart {
                parallel: false, ..
            } => "do_in",
            DoInStart { parallel: true, .. } => "pardo_in",
            DoInEnd { .. } => "enddo_in",
            ExitLoop { .. } => "exit",
            JumpIfFalse { .. } => "jf",
            Jump { .. } => "jmp",
            Call { .. } => "call",
            Return => "ret",
            Halt => "halt",
            Create { .. } => "create",
            Delete { .. } => "delete",
            Get { .. } => "get",
            Put { .. } => "put",
            Request { .. } => "request",
            Prepare { .. } => "prepare",
            BlocksToList { .. } => "blocks_to_list",
            ListToBlocks { .. } => "list_to_blocks",
            BlockFill { .. } => "bfill",
            BlockCopy { .. } => "bcopy",
            BlockAccumulate { .. } => "baccum",
            BlockScale { .. } => "bscale",
            BlockContract { .. } => "bcontract",
            ScalarAssign { .. } => "sassign",
            ScalarFromBlock { .. } => "sfold",
            ExecuteSuper { .. } => "execute",
            Print { .. } => "print",
            SipBarrier => "sip_barrier",
            ServerBarrier => "server_barrier",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1.0, 2.0));
        assert!(CmpOp::Ge.eval(2.0, 2.0));
        assert!(!CmpOp::Ne.eval(2.0, 2.0));
        assert!(CmpOp::Eq.eval(2.0, 2.0));
        assert!(CmpOp::Le.eval(1.0, 2.0));
        assert!(CmpOp::Gt.eval(3.0, 2.0));
    }

    #[test]
    fn bin_eval() {
        assert_eq!(BinOp::Add.eval(1.0, 2.0), 3.0);
        assert_eq!(BinOp::Sub.eval(1.0, 2.0), -1.0);
        assert_eq!(BinOp::Mul.eval(3.0, 2.0), 6.0);
        assert_eq!(BinOp::Div.eval(3.0, 2.0), 1.5);
    }

    #[test]
    fn classes() {
        assert_eq!(Instruction::Halt.class(), InstructionClass::Control);
        assert_eq!(Instruction::SipBarrier.class(), InstructionClass::Sync);
        assert_eq!(
            Instruction::Get {
                block: BlockRef {
                    array: ArrayId(0),
                    indices: vec![]
                }
            }
            .class(),
            InstructionClass::Io
        );
        assert_eq!(
            Instruction::ScalarAssign {
                dest: ScalarId(0),
                expr: ScalarExpr::Lit(0.0)
            }
            .class(),
            InstructionClass::Compute
        );
    }

    #[test]
    fn mnemonics_distinct_for_do_in() {
        let d = Instruction::DoInStart {
            sub: IndexId(0),
            parent: IndexId(1),
            end_pc: 0,
            parallel: false,
        };
        let p = Instruction::DoInStart {
            sub: IndexId(0),
            parent: IndexId(1),
            end_pc: 0,
            parallel: true,
        };
        assert_eq!(d.mnemonic(), "do_in");
        assert_eq!(p.mnemonic(), "pardo_in");
    }
}
