//! Descriptor tables and the [`Program`] container.
//!
//! A compiled SIAL program is its instruction table plus the data descriptor
//! tables the instructions address by id. Index ranges may reference symbolic
//! constants whose concrete values arrive at initialization time (the SIP's
//! "predefined constants").

use crate::ops::Instruction;
use std::collections::BTreeMap;
use std::fmt;

macro_rules! table_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a table offset.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

table_id!(
    /// Id of an index variable in the index table.
    IndexId
);
table_id!(
    /// Id of an array in the array table.
    ArrayId
);
table_id!(
    /// Id of a named scalar variable in the scalar table.
    ScalarId
);
table_id!(
    /// Id of a symbolic constant in the constant table.
    ConstId
);
table_id!(
    /// Id of an interned string in the string table.
    StringId
);
table_id!(
    /// Id of a procedure in the procedure table.
    ProcId
);

/// A literal or symbolic integer appearing in a declaration (index bounds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Value {
    /// A concrete integer known at compile time.
    Lit(i64),
    /// A symbolic constant resolved at initialization.
    Sym(ConstId),
}

/// The domain type of an index variable.
///
/// SIAL gives segment indices domain types ("aoindex and moindex represent
/// atomic orbital and molecular orbital"), letting the type system check
/// consistent use. `Simple` indices count iterations and do not address
/// segments; `Subindex` addresses subsegments of its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Atomic-orbital segment index.
    AoIndex,
    /// Molecular-orbital segment index.
    MoIndex,
    /// Alpha-spin molecular-orbital segment index.
    MoAIndex,
    /// Beta-spin molecular-orbital segment index.
    MoBIndex,
    /// Auxiliary (large-array) segment index.
    LaIndex,
    /// Plain iteration counter; not a segment index.
    Simple,
    /// Subsegment index of a parent segment index.
    Subindex {
        /// The segment index this subindex refines.
        parent: IndexId,
    },
}

impl IndexKind {
    /// True for kinds that address segments of arrays (everything except
    /// `Simple`).
    pub fn is_segment(&self) -> bool {
        !matches!(self, IndexKind::Simple)
    }

    /// Whether two kinds may be used interchangeably in an array dimension.
    pub fn compatible(&self, other: &IndexKind) -> bool {
        match (self, other) {
            (IndexKind::Subindex { .. }, _) | (_, IndexKind::Subindex { .. }) => true,
            _ => self == other,
        }
    }
}

/// Declaration of an index variable: a kind and an inclusive segment range.
#[derive(Clone, PartialEq, Debug)]
pub struct IndexDecl {
    /// Source name.
    pub name: String,
    /// Domain type.
    pub kind: IndexKind,
    /// First segment number (inclusive; SIAL ranges are 1-based).
    pub low: Value,
    /// Last segment number (inclusive).
    pub high: Value,
}

/// The five SIAL array kinds (§IV-A of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrayKind {
    /// Small, replicated on every worker.
    Static,
    /// A single block of intermediate results, local to an iteration.
    Temp,
    /// Node-local array, fully formed in at least one dimension.
    Local,
    /// Partitioned into blocks distributed across workers (`get`/`put`).
    Distributed,
    /// Partitioned into blocks stored on disk by the I/O servers
    /// (`request`/`prepare`).
    Served,
}

impl ArrayKind {
    /// Arrays whose blocks move through the fabric.
    pub fn is_remote(&self) -> bool {
        matches!(self, ArrayKind::Distributed | ArrayKind::Served)
    }
}

/// Declaration of an array: a kind and the index variables defining its
/// shape ("the shape of an array is defined in its declaration by specifying
/// index variables for each dimension").
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayDecl {
    /// Source name.
    pub name: String,
    /// Storage class.
    pub kind: ArrayKind,
    /// Index variable of each dimension.
    pub dims: Vec<IndexId>,
    /// Block-sparse storage: blocks may be absent (exactly zero) and the
    /// runtime may drop blocks whose Frobenius norm falls under the
    /// configured screening threshold. Only meaningful on remote kinds
    /// (`Distributed`/`Served`); always `false` otherwise.
    pub sparse: bool,
}

/// Declaration of a named scalar (double) variable.
#[derive(Clone, PartialEq, Debug)]
pub struct ScalarDecl {
    /// Source name.
    pub name: String,
    /// Initial value.
    pub init: f64,
}

/// Declaration of a procedure: a name and the pc of its first instruction.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcDecl {
    /// Source name.
    pub name: String,
    /// Entry program counter.
    pub entry_pc: u32,
}

/// Optional per-instruction source mapping (wire format v3).
///
/// `lines[pc]` is the 1-based source line the instruction at `pc` was
/// lowered from (0 = synthetic/unknown). The table is parallel to
/// [`Program::code`]; decoders tolerate short tables (missing entries read
/// as unknown). This is what lets `sial check`, the disassembler, and
/// runtime `BadBytecode`/race diagnostics print `file:line` instead of a
/// bare pc.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LineTable {
    /// Source file the program was compiled from.
    pub file: String,
    /// 1-based source line per instruction (0 = unknown).
    pub lines: Vec<u32>,
}

impl LineTable {
    /// The source line of the instruction at `pc`, if known.
    pub fn line_of(&self, pc: u32) -> Option<u32> {
        match self.lines.get(pc as usize) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }
}

/// A compiled SIAL program: descriptor tables plus the instruction table.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Program name (from the `sial` header line).
    pub name: String,
    /// Index variable descriptors.
    pub indices: Vec<IndexDecl>,
    /// Array descriptors.
    pub arrays: Vec<ArrayDecl>,
    /// Named scalar descriptors.
    pub scalars: Vec<ScalarDecl>,
    /// Symbolic constant names, bound at initialization.
    pub consts: Vec<String>,
    /// Procedure descriptors.
    pub procs: Vec<ProcDecl>,
    /// Interned strings (super-instruction names, checkpoint labels, …).
    pub strings: Vec<String>,
    /// The instruction table.
    pub code: Vec<Instruction>,
    /// Optional per-instruction source line mapping (wire v3; absent for
    /// bytecode produced before the mapping existed).
    pub line_table: Option<LineTable>,
}

/// Concrete values for the symbolic constants, supplied at initialization.
pub type ConstBindings = BTreeMap<String, i64>;

/// Errors resolving symbolic constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A constant used by the program has no binding.
    Unbound {
        /// The constant's name.
        name: String,
    },
    /// An index range resolved to `low > high` or non-positive bounds.
    BadRange {
        /// The index variable's name.
        index: String,
        /// Resolved lower bound.
        low: i64,
        /// Resolved upper bound.
        high: i64,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Unbound { name } => {
                write!(f, "symbolic constant `{name}` has no binding")
            }
            ResolveError::BadRange { index, low, high } => {
                write!(f, "index `{index}` resolved to invalid range {low}..{high}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

impl Program {
    /// Looks up an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// Looks up an index variable by source name.
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.indices
            .iter()
            .position(|a| a.name == name)
            .map(|i| IndexId(i as u32))
    }

    /// Looks up a scalar by source name.
    pub fn scalar_by_name(&self, name: &str) -> Option<ScalarId> {
        self.scalars
            .iter()
            .position(|a| a.name == name)
            .map(|i| ScalarId(i as u32))
    }

    /// Looks up a procedure by source name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|a| a.name == name)
            .map(|i| ProcId(i as u32))
    }

    /// Resolves every symbolic constant against `bindings`, returning the
    /// concrete constant table (indexed by [`ConstId`]).
    pub fn resolve_consts(&self, bindings: &ConstBindings) -> Result<Vec<i64>, ResolveError> {
        let mut out = Vec::with_capacity(self.consts.len());
        for name in &self.consts {
            match bindings.get(name) {
                Some(&v) => out.push(v),
                None => {
                    return Err(ResolveError::Unbound { name: name.clone() });
                }
            }
        }
        Ok(out)
    }

    /// Evaluates a [`Value`] against a resolved constant table.
    pub fn eval_value(&self, v: Value, consts: &[i64]) -> i64 {
        match v {
            Value::Lit(x) => x,
            Value::Sym(id) => consts[id.index()],
        }
    }

    /// The inclusive segment range of an index variable under the resolved
    /// constants, validating it.
    pub fn index_range(&self, id: IndexId, consts: &[i64]) -> Result<(i64, i64), ResolveError> {
        let decl = &self.indices[id.index()];
        let low = self.eval_value(decl.low, consts);
        let high = self.eval_value(decl.high, consts);
        if low < 1 || high < low {
            return Err(ResolveError::BadRange {
                index: decl.name.clone(),
                low,
                high,
            });
        }
        Ok((low, high))
    }

    /// The source `(file, line)` of the instruction at `pc`, when the
    /// program carries a line table.
    pub fn source_of(&self, pc: u32) -> Option<(&str, u32)> {
        let t = self.line_table.as_ref()?;
        Some((t.file.as_str(), t.line_of(pc)?))
    }

    /// Renders a program location: `file:line` when the line table knows the
    /// pc, otherwise `pc N`.
    pub fn locate_pc(&self, pc: u32) -> String {
        match self.source_of(pc) {
            Some((file, line)) => format!("{file}:{line}"),
            None => format!("pc {pc}"),
        }
    }

    /// Interns a string, returning its id (compiler helper).
    pub fn intern(&mut self, s: &str) -> StringId {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            StringId(i as u32)
        } else {
            self.strings.push(s.to_string());
            StringId((self.strings.len() - 1) as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            name: "t".into(),
            indices: vec![
                IndexDecl {
                    name: "i".into(),
                    kind: IndexKind::MoIndex,
                    low: Value::Lit(1),
                    high: Value::Sym(ConstId(0)),
                },
                IndexDecl {
                    name: "n".into(),
                    kind: IndexKind::Simple,
                    low: Value::Lit(1),
                    high: Value::Lit(10),
                },
            ],
            arrays: vec![ArrayDecl {
                name: "X".into(),
                kind: ArrayKind::Distributed,
                dims: vec![IndexId(0), IndexId(0)],
                sparse: false,
            }],
            scalars: vec![ScalarDecl {
                name: "e".into(),
                init: 0.0,
            }],
            consts: vec!["norb".into()],
            procs: vec![],
            strings: vec![],
            code: vec![],
            line_table: None,
        }
    }

    #[test]
    fn lookup_by_name() {
        let p = sample();
        assert_eq!(p.array_by_name("X"), Some(ArrayId(0)));
        assert_eq!(p.index_by_name("n"), Some(IndexId(1)));
        assert_eq!(p.scalar_by_name("e"), Some(ScalarId(0)));
        assert_eq!(p.array_by_name("nope"), None);
    }

    #[test]
    fn resolve_consts_binds() {
        let p = sample();
        let mut b = ConstBindings::new();
        b.insert("norb".into(), 8);
        let c = p.resolve_consts(&b).unwrap();
        assert_eq!(c, vec![8]);
        assert_eq!(p.index_range(IndexId(0), &c).unwrap(), (1, 8));
    }

    #[test]
    fn unbound_const_is_error() {
        let p = sample();
        let b = ConstBindings::new();
        assert!(matches!(
            p.resolve_consts(&b),
            Err(ResolveError::Unbound { .. })
        ));
    }

    #[test]
    fn bad_range_detected() {
        let p = sample();
        let mut b = ConstBindings::new();
        b.insert("norb".into(), 0);
        let c = p.resolve_consts(&b).unwrap();
        assert!(matches!(
            p.index_range(IndexId(0), &c),
            Err(ResolveError::BadRange { .. })
        ));
    }

    #[test]
    fn intern_dedups() {
        let mut p = sample();
        let a = p.intern("foo");
        let b = p.intern("bar");
        let c = p.intern("foo");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.strings.len(), 2);
    }

    #[test]
    fn line_table_lookup() {
        let mut p = sample();
        assert_eq!(p.source_of(0), None);
        assert_eq!(p.locate_pc(3), "pc 3");
        p.line_table = Some(LineTable {
            file: "t.sial".into(),
            lines: vec![2, 0, 5],
        });
        assert_eq!(p.source_of(0), Some(("t.sial", 2)));
        assert_eq!(p.source_of(1), None, "0 means unknown");
        assert_eq!(p.locate_pc(2), "t.sial:5");
        assert_eq!(p.locate_pc(9), "pc 9", "past the table");
    }

    #[test]
    fn subindex_compatibility() {
        let sub = IndexKind::Subindex { parent: IndexId(0) };
        assert!(sub.compatible(&IndexKind::MoIndex));
        assert!(IndexKind::AoIndex.compatible(&IndexKind::AoIndex));
        assert!(!IndexKind::AoIndex.compatible(&IndexKind::MoIndex));
        assert!(sub.is_segment());
        assert!(!IndexKind::Simple.is_segment());
    }
}
