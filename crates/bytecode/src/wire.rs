//! The on-disk wire format for SIA bytecode.
//!
//! A compact little-endian binary encoding with a magic/version header, so
//! compiled SIAL programs can be shipped to the SIP master exactly as the
//! original system shipped `.sio` files. The format is hand-rolled (no
//! external codec) and round-trip tested, including a property test in
//! `tests/`.

use crate::ops::{
    Arg, BinOp, BlockRef, BoolExpr, CmpOp, Instruction, PrintItem, PutMode, ScalarExpr,
};
use crate::program::{
    ArrayDecl, ArrayId, ArrayKind, ConstId, IndexDecl, IndexId, IndexKind, LineTable, ProcDecl,
    ProcId, Program, ScalarDecl, ScalarId, StringId, Value,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes of a serialized program.
pub const MAGIC: &[u8; 4] = b"SIAB";
/// Current format version. Version 2 added the per-array `sparse` flag;
/// version 3 added the optional per-instruction source line table. Version-1
/// and version-2 streams still decode (dense arrays / no line table).
pub const VERSION: u32 = 3;

/// Errors decoding a serialized program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended prematurely.
    Truncated,
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// An enum tag byte was out of range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated bytecode stream"),
            WireError::BadMagic => write!(f, "not a SIA bytecode file (bad magic)"),
            WireError::BadVersion(v) => write!(f, "unsupported bytecode version {v}"),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} decoding {what}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string table"),
        }
    }
}

impl std::error::Error for WireError {}

type R<T> = Result<T, WireError>;

// ---- primitive helpers -----------------------------------------------------

fn need(buf: &Bytes, n: usize) -> R<()> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut Bytes) -> R<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> R<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_i64(buf: &mut Bytes) -> R<i64> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

fn get_f64(buf: &mut Bytes) -> R<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> R<String> {
    let n = get_u32(buf)? as usize;
    need(buf, n)?;
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
}

fn put_vec<T>(out: &mut BytesMut, items: &[T], mut f: impl FnMut(&mut BytesMut, &T)) {
    out.put_u32_le(items.len() as u32);
    for item in items {
        f(out, item);
    }
}

fn get_vec<T>(buf: &mut Bytes, mut f: impl FnMut(&mut Bytes) -> R<T>) -> R<Vec<T>> {
    let n = get_u32(buf)? as usize;
    // Guard against absurd lengths from corrupt streams.
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(f(buf)?);
    }
    Ok(v)
}

// ---- component codecs -------------------------------------------------------

fn put_value(out: &mut BytesMut, v: &Value) {
    match v {
        Value::Lit(x) => {
            out.put_u8(0);
            out.put_i64_le(*x);
        }
        Value::Sym(id) => {
            out.put_u8(1);
            out.put_u32_le(id.0);
        }
    }
}

fn get_value(buf: &mut Bytes) -> R<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Lit(get_i64(buf)?)),
        1 => Ok(Value::Sym(ConstId(get_u32(buf)?))),
        t => Err(WireError::BadTag {
            what: "Value",
            tag: t,
        }),
    }
}

fn put_index_kind(out: &mut BytesMut, k: &IndexKind) {
    match k {
        IndexKind::AoIndex => out.put_u8(0),
        IndexKind::MoIndex => out.put_u8(1),
        IndexKind::MoAIndex => out.put_u8(2),
        IndexKind::MoBIndex => out.put_u8(3),
        IndexKind::LaIndex => out.put_u8(4),
        IndexKind::Simple => out.put_u8(5),
        IndexKind::Subindex { parent } => {
            out.put_u8(6);
            out.put_u32_le(parent.0);
        }
    }
}

fn get_index_kind(buf: &mut Bytes) -> R<IndexKind> {
    Ok(match get_u8(buf)? {
        0 => IndexKind::AoIndex,
        1 => IndexKind::MoIndex,
        2 => IndexKind::MoAIndex,
        3 => IndexKind::MoBIndex,
        4 => IndexKind::LaIndex,
        5 => IndexKind::Simple,
        6 => IndexKind::Subindex {
            parent: IndexId(get_u32(buf)?),
        },
        t => {
            return Err(WireError::BadTag {
                what: "IndexKind",
                tag: t,
            })
        }
    })
}

fn put_array_kind(out: &mut BytesMut, k: &ArrayKind) {
    out.put_u8(match k {
        ArrayKind::Static => 0,
        ArrayKind::Temp => 1,
        ArrayKind::Local => 2,
        ArrayKind::Distributed => 3,
        ArrayKind::Served => 4,
    });
}

fn get_array_kind(buf: &mut Bytes) -> R<ArrayKind> {
    Ok(match get_u8(buf)? {
        0 => ArrayKind::Static,
        1 => ArrayKind::Temp,
        2 => ArrayKind::Local,
        3 => ArrayKind::Distributed,
        4 => ArrayKind::Served,
        t => {
            return Err(WireError::BadTag {
                what: "ArrayKind",
                tag: t,
            })
        }
    })
}

fn put_block_ref(out: &mut BytesMut, b: &BlockRef) {
    out.put_u32_le(b.array.0);
    put_vec(out, &b.indices, |o, id| o.put_u32_le(id.0));
}

fn get_block_ref(buf: &mut Bytes) -> R<BlockRef> {
    let array = ArrayId(get_u32(buf)?);
    let indices = get_vec(buf, |b| Ok(IndexId(get_u32(b)?)))?;
    Ok(BlockRef { array, indices })
}

fn put_scalar_expr(out: &mut BytesMut, e: &ScalarExpr) {
    match e {
        ScalarExpr::Lit(x) => {
            out.put_u8(0);
            out.put_f64_le(*x);
        }
        ScalarExpr::Scalar(id) => {
            out.put_u8(1);
            out.put_u32_le(id.0);
        }
        ScalarExpr::IndexVal(id) => {
            out.put_u8(2);
            out.put_u32_le(id.0);
        }
        ScalarExpr::Bin(op, l, r) => {
            out.put_u8(3);
            out.put_u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
            });
            put_scalar_expr(out, l);
            put_scalar_expr(out, r);
        }
        ScalarExpr::Neg(x) => {
            out.put_u8(4);
            put_scalar_expr(out, x);
        }
        ScalarExpr::Const(id) => {
            out.put_u8(5);
            out.put_u32_le(id.0);
        }
    }
}

fn get_scalar_expr(buf: &mut Bytes) -> R<ScalarExpr> {
    Ok(match get_u8(buf)? {
        0 => ScalarExpr::Lit(get_f64(buf)?),
        1 => ScalarExpr::Scalar(ScalarId(get_u32(buf)?)),
        2 => ScalarExpr::IndexVal(IndexId(get_u32(buf)?)),
        3 => {
            let op = match get_u8(buf)? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                t => {
                    return Err(WireError::BadTag {
                        what: "BinOp",
                        tag: t,
                    })
                }
            };
            let l = get_scalar_expr(buf)?;
            let r = get_scalar_expr(buf)?;
            ScalarExpr::Bin(op, Box::new(l), Box::new(r))
        }
        4 => ScalarExpr::Neg(Box::new(get_scalar_expr(buf)?)),
        5 => ScalarExpr::Const(ConstId(get_u32(buf)?)),
        t => {
            return Err(WireError::BadTag {
                what: "ScalarExpr",
                tag: t,
            })
        }
    })
}

fn put_cmp(out: &mut BytesMut, c: &CmpOp) {
    out.put_u8(match c {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn get_cmp(buf: &mut Bytes) -> R<CmpOp> {
    Ok(match get_u8(buf)? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => {
            return Err(WireError::BadTag {
                what: "CmpOp",
                tag: t,
            })
        }
    })
}

fn put_bool_expr(out: &mut BytesMut, e: &BoolExpr) {
    match e {
        BoolExpr::Cmp(l, op, r) => {
            out.put_u8(0);
            put_scalar_expr(out, l);
            put_cmp(out, op);
            put_scalar_expr(out, r);
        }
        BoolExpr::And(l, r) => {
            out.put_u8(1);
            put_bool_expr(out, l);
            put_bool_expr(out, r);
        }
        BoolExpr::Or(l, r) => {
            out.put_u8(2);
            put_bool_expr(out, l);
            put_bool_expr(out, r);
        }
        BoolExpr::Not(x) => {
            out.put_u8(3);
            put_bool_expr(out, x);
        }
    }
}

fn get_bool_expr(buf: &mut Bytes) -> R<BoolExpr> {
    Ok(match get_u8(buf)? {
        0 => {
            let l = get_scalar_expr(buf)?;
            let op = get_cmp(buf)?;
            let r = get_scalar_expr(buf)?;
            BoolExpr::Cmp(l, op, r)
        }
        1 => BoolExpr::And(Box::new(get_bool_expr(buf)?), Box::new(get_bool_expr(buf)?)),
        2 => BoolExpr::Or(Box::new(get_bool_expr(buf)?), Box::new(get_bool_expr(buf)?)),
        3 => BoolExpr::Not(Box::new(get_bool_expr(buf)?)),
        t => {
            return Err(WireError::BadTag {
                what: "BoolExpr",
                tag: t,
            })
        }
    })
}

fn put_put_mode(out: &mut BytesMut, m: &PutMode) {
    out.put_u8(match m {
        PutMode::Replace => 0,
        PutMode::Accumulate => 1,
    });
}

fn get_put_mode(buf: &mut Bytes) -> R<PutMode> {
    Ok(match get_u8(buf)? {
        0 => PutMode::Replace,
        1 => PutMode::Accumulate,
        t => {
            return Err(WireError::BadTag {
                what: "PutMode",
                tag: t,
            })
        }
    })
}

fn put_arg(out: &mut BytesMut, a: &Arg) {
    match a {
        Arg::Block(b) => {
            out.put_u8(0);
            put_block_ref(out, b);
        }
        Arg::Scalar(id) => {
            out.put_u8(1);
            out.put_u32_le(id.0);
        }
        Arg::Index(id) => {
            out.put_u8(2);
            out.put_u32_le(id.0);
        }
    }
}

fn get_arg(buf: &mut Bytes) -> R<Arg> {
    Ok(match get_u8(buf)? {
        0 => Arg::Block(get_block_ref(buf)?),
        1 => Arg::Scalar(ScalarId(get_u32(buf)?)),
        2 => Arg::Index(IndexId(get_u32(buf)?)),
        t => {
            return Err(WireError::BadTag {
                what: "Arg",
                tag: t,
            })
        }
    })
}

#[allow(clippy::too_many_lines)]
fn put_instruction(out: &mut BytesMut, ins: &Instruction) {
    use Instruction::*;
    match ins {
        PardoStart {
            indices,
            where_clauses,
            end_pc,
        } => {
            out.put_u8(0);
            put_vec(out, indices, |o, id| o.put_u32_le(id.0));
            put_vec(out, where_clauses, put_bool_expr);
            out.put_u32_le(*end_pc);
        }
        PardoEnd { start_pc } => {
            out.put_u8(1);
            out.put_u32_le(*start_pc);
        }
        DoStart { index, end_pc } => {
            out.put_u8(2);
            out.put_u32_le(index.0);
            out.put_u32_le(*end_pc);
        }
        DoEnd { start_pc } => {
            out.put_u8(3);
            out.put_u32_le(*start_pc);
        }
        DoInStart {
            sub,
            parent,
            end_pc,
            parallel,
        } => {
            out.put_u8(4);
            out.put_u32_le(sub.0);
            out.put_u32_le(parent.0);
            out.put_u32_le(*end_pc);
            out.put_u8(u8::from(*parallel));
        }
        DoInEnd { start_pc } => {
            out.put_u8(5);
            out.put_u32_le(*start_pc);
        }
        JumpIfFalse { cond, target } => {
            out.put_u8(6);
            put_bool_expr(out, cond);
            out.put_u32_le(*target);
        }
        Jump { target } => {
            out.put_u8(7);
            out.put_u32_le(*target);
        }
        Call { proc } => {
            out.put_u8(8);
            out.put_u32_le(proc.0);
        }
        Return => out.put_u8(9),
        Halt => out.put_u8(10),
        Create { array } => {
            out.put_u8(11);
            out.put_u32_le(array.0);
        }
        Delete { array } => {
            out.put_u8(12);
            out.put_u32_le(array.0);
        }
        Get { block } => {
            out.put_u8(13);
            put_block_ref(out, block);
        }
        Put { dest, src, mode } => {
            out.put_u8(14);
            put_block_ref(out, dest);
            put_block_ref(out, src);
            put_put_mode(out, mode);
        }
        Request { block } => {
            out.put_u8(15);
            put_block_ref(out, block);
        }
        Prepare { dest, src, mode } => {
            out.put_u8(16);
            put_block_ref(out, dest);
            put_block_ref(out, src);
            put_put_mode(out, mode);
        }
        BlocksToList { array, label } => {
            out.put_u8(17);
            out.put_u32_le(array.0);
            out.put_u32_le(label.0);
        }
        ListToBlocks { array, label } => {
            out.put_u8(18);
            out.put_u32_le(array.0);
            out.put_u32_le(label.0);
        }
        BlockFill { dest, value } => {
            out.put_u8(19);
            put_block_ref(out, dest);
            put_scalar_expr(out, value);
        }
        BlockCopy { dest, src } => {
            out.put_u8(20);
            put_block_ref(out, dest);
            put_block_ref(out, src);
        }
        BlockAccumulate { dest, src, sign } => {
            out.put_u8(21);
            put_block_ref(out, dest);
            put_block_ref(out, src);
            out.put_f64_le(*sign);
        }
        BlockScale { dest, factor } => {
            out.put_u8(22);
            put_block_ref(out, dest);
            put_scalar_expr(out, factor);
        }
        BlockContract {
            dest,
            a,
            b,
            accumulate,
        } => {
            out.put_u8(23);
            put_block_ref(out, dest);
            put_block_ref(out, a);
            put_block_ref(out, b);
            out.put_u8(u8::from(*accumulate));
        }
        ScalarAssign { dest, expr } => {
            out.put_u8(24);
            out.put_u32_le(dest.0);
            put_scalar_expr(out, expr);
        }
        ScalarFromBlock {
            dest,
            src,
            accumulate,
        } => {
            out.put_u8(25);
            out.put_u32_le(dest.0);
            put_block_ref(out, src);
            out.put_u8(u8::from(*accumulate));
        }
        ExecuteSuper { name, args } => {
            out.put_u8(26);
            out.put_u32_le(name.0);
            put_vec(out, args, put_arg);
        }
        Print { items } => {
            out.put_u8(27);
            put_vec(out, items, |o, item| match item {
                PrintItem::Str(id) => {
                    o.put_u8(0);
                    o.put_u32_le(id.0);
                }
                PrintItem::Expr(e) => {
                    o.put_u8(1);
                    put_scalar_expr(o, e);
                }
            });
        }
        SipBarrier => out.put_u8(28),
        ServerBarrier => out.put_u8(29),
        ExitLoop {
            loop_start_pc,
            target,
        } => {
            out.put_u8(30);
            out.put_u32_le(*loop_start_pc);
            out.put_u32_le(*target);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn get_instruction(buf: &mut Bytes) -> R<Instruction> {
    use Instruction::*;
    Ok(match get_u8(buf)? {
        0 => PardoStart {
            indices: get_vec(buf, |b| Ok(IndexId(get_u32(b)?)))?,
            where_clauses: get_vec(buf, get_bool_expr)?,
            end_pc: get_u32(buf)?,
        },
        1 => PardoEnd {
            start_pc: get_u32(buf)?,
        },
        2 => DoStart {
            index: IndexId(get_u32(buf)?),
            end_pc: get_u32(buf)?,
        },
        3 => DoEnd {
            start_pc: get_u32(buf)?,
        },
        4 => DoInStart {
            sub: IndexId(get_u32(buf)?),
            parent: IndexId(get_u32(buf)?),
            end_pc: get_u32(buf)?,
            parallel: get_u8(buf)? != 0,
        },
        5 => DoInEnd {
            start_pc: get_u32(buf)?,
        },
        6 => JumpIfFalse {
            cond: get_bool_expr(buf)?,
            target: get_u32(buf)?,
        },
        7 => Jump {
            target: get_u32(buf)?,
        },
        8 => Call {
            proc: ProcId(get_u32(buf)?),
        },
        9 => Return,
        10 => Halt,
        11 => Create {
            array: ArrayId(get_u32(buf)?),
        },
        12 => Delete {
            array: ArrayId(get_u32(buf)?),
        },
        13 => Get {
            block: get_block_ref(buf)?,
        },
        14 => Put {
            dest: get_block_ref(buf)?,
            src: get_block_ref(buf)?,
            mode: get_put_mode(buf)?,
        },
        15 => Request {
            block: get_block_ref(buf)?,
        },
        16 => Prepare {
            dest: get_block_ref(buf)?,
            src: get_block_ref(buf)?,
            mode: get_put_mode(buf)?,
        },
        17 => BlocksToList {
            array: ArrayId(get_u32(buf)?),
            label: StringId(get_u32(buf)?),
        },
        18 => ListToBlocks {
            array: ArrayId(get_u32(buf)?),
            label: StringId(get_u32(buf)?),
        },
        19 => BlockFill {
            dest: get_block_ref(buf)?,
            value: get_scalar_expr(buf)?,
        },
        20 => BlockCopy {
            dest: get_block_ref(buf)?,
            src: get_block_ref(buf)?,
        },
        21 => BlockAccumulate {
            dest: get_block_ref(buf)?,
            src: get_block_ref(buf)?,
            sign: get_f64(buf)?,
        },
        22 => BlockScale {
            dest: get_block_ref(buf)?,
            factor: get_scalar_expr(buf)?,
        },
        23 => BlockContract {
            dest: get_block_ref(buf)?,
            a: get_block_ref(buf)?,
            b: get_block_ref(buf)?,
            accumulate: get_u8(buf)? != 0,
        },
        24 => ScalarAssign {
            dest: ScalarId(get_u32(buf)?),
            expr: get_scalar_expr(buf)?,
        },
        25 => ScalarFromBlock {
            dest: ScalarId(get_u32(buf)?),
            src: get_block_ref(buf)?,
            accumulate: get_u8(buf)? != 0,
        },
        26 => ExecuteSuper {
            name: StringId(get_u32(buf)?),
            args: get_vec(buf, get_arg)?,
        },
        27 => Print {
            items: get_vec(buf, |b| {
                Ok(match get_u8(b)? {
                    0 => PrintItem::Str(StringId(get_u32(b)?)),
                    1 => PrintItem::Expr(get_scalar_expr(b)?),
                    t => {
                        return Err(WireError::BadTag {
                            what: "PrintItem",
                            tag: t,
                        })
                    }
                })
            })?,
        },
        28 => SipBarrier,
        29 => ServerBarrier,
        30 => ExitLoop {
            loop_start_pc: get_u32(buf)?,
            target: get_u32(buf)?,
        },
        t => {
            return Err(WireError::BadTag {
                what: "Instruction",
                tag: t,
            })
        }
    })
}

// ---- program codec -----------------------------------------------------------

/// Serializes a [`Program`] to the SIA bytecode wire format.
pub fn encode_program(p: &Program) -> Bytes {
    let mut out = BytesMut::with_capacity(4096);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    put_str(&mut out, &p.name);
    put_vec(&mut out, &p.indices, |o, d| {
        put_str(o, &d.name);
        put_index_kind(o, &d.kind);
        put_value(o, &d.low);
        put_value(o, &d.high);
    });
    put_vec(&mut out, &p.arrays, |o, d| {
        put_str(o, &d.name);
        put_array_kind(o, &d.kind);
        put_vec(o, &d.dims, |o2, id| o2.put_u32_le(id.0));
        o.put_u8(u8::from(d.sparse));
    });
    put_vec(&mut out, &p.scalars, |o, d| {
        put_str(o, &d.name);
        o.put_f64_le(d.init);
    });
    put_vec(&mut out, &p.consts, |o, s| put_str(o, s));
    put_vec(&mut out, &p.procs, |o, d| {
        put_str(o, &d.name);
        o.put_u32_le(d.entry_pc);
    });
    put_vec(&mut out, &p.strings, |o, s| put_str(o, s));
    put_vec(&mut out, &p.code, put_instruction);
    // v3: optional source line table (presence byte, then file + lines).
    match &p.line_table {
        Some(t) => {
            out.put_u8(1);
            put_str(&mut out, &t.file);
            put_vec(&mut out, &t.lines, |o, &l| o.put_u32_le(l));
        }
        None => out.put_u8(0),
    }
    out.freeze()
}

/// Decodes a [`Program`] from the SIA bytecode wire format.
pub fn decode_program(data: &[u8]) -> R<Program> {
    let mut buf = Bytes::copy_from_slice(data);
    need(&buf, 4)?;
    let magic = buf.copy_to_bytes(4);
    if magic.as_ref() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = get_u32(&mut buf)?;
    if version == 0 || version > VERSION {
        return Err(WireError::BadVersion(version));
    }
    let name = get_str(&mut buf)?;
    let indices = get_vec(&mut buf, |b| {
        Ok(IndexDecl {
            name: get_str(b)?,
            kind: get_index_kind(b)?,
            low: get_value(b)?,
            high: get_value(b)?,
        })
    })?;
    let arrays = get_vec(&mut buf, |b| {
        Ok(ArrayDecl {
            name: get_str(b)?,
            kind: get_array_kind(b)?,
            dims: get_vec(b, |b2| Ok(IndexId(get_u32(b2)?)))?,
            sparse: if version >= 2 { get_u8(b)? != 0 } else { false },
        })
    })?;
    let scalars = get_vec(&mut buf, |b| {
        Ok(ScalarDecl {
            name: get_str(b)?,
            init: get_f64(b)?,
        })
    })?;
    let consts = get_vec(&mut buf, get_str)?;
    let procs = get_vec(&mut buf, |b| {
        Ok(ProcDecl {
            name: get_str(b)?,
            entry_pc: get_u32(b)?,
        })
    })?;
    let strings = get_vec(&mut buf, get_str)?;
    let code = get_vec(&mut buf, get_instruction)?;
    let line_table = if version >= 3 {
        match get_u8(&mut buf)? {
            0 => None,
            1 => Some(LineTable {
                file: get_str(&mut buf)?,
                lines: get_vec(&mut buf, get_u32)?,
            }),
            t => {
                return Err(WireError::BadTag {
                    what: "LineTable",
                    tag: t,
                })
            }
        }
    } else {
        None
    };
    Ok(Program {
        name,
        indices,
        arrays,
        scalars,
        consts,
        procs,
        strings,
        code,
        line_table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ScalarId, Value};

    fn sample_program() -> Program {
        let mut p = Program {
            name: "roundtrip".into(),
            indices: vec![
                IndexDecl {
                    name: "i".into(),
                    kind: IndexKind::AoIndex,
                    low: Value::Lit(1),
                    high: Value::Sym(ConstId(0)),
                },
                IndexDecl {
                    name: "ii".into(),
                    kind: IndexKind::Subindex { parent: IndexId(0) },
                    low: Value::Lit(1),
                    high: Value::Lit(4),
                },
            ],
            arrays: vec![ArrayDecl {
                name: "T".into(),
                kind: ArrayKind::Served,
                dims: vec![IndexId(0), IndexId(0)],
                sparse: true,
            }],
            scalars: vec![ScalarDecl {
                name: "energy".into(),
                init: 1.5,
            }],
            consts: vec!["norb".into()],
            procs: vec![ProcDecl {
                name: "main".into(),
                entry_pc: 0,
            }],
            strings: vec![],
            code: vec![],
            line_table: Some(LineTable {
                file: "roundtrip.sial".into(),
                lines: vec![3, 4, 5, 6, 7, 8, 9, 10, 11, 3, 12, 13, 0],
            }),
        };
        let label = p.intern("ckpt");
        let sup = p.intern("compute_integrals");
        let b = BlockRef {
            array: ArrayId(0),
            indices: vec![IndexId(0), IndexId(0)],
        };
        p.code = vec![
            Instruction::PardoStart {
                indices: vec![IndexId(0)],
                where_clauses: vec![BoolExpr::Cmp(
                    ScalarExpr::IndexVal(IndexId(0)),
                    CmpOp::Le,
                    ScalarExpr::Bin(
                        BinOp::Add,
                        Box::new(ScalarExpr::Lit(2.0)),
                        Box::new(ScalarExpr::Scalar(ScalarId(0))),
                    ),
                )],
                end_pc: 9,
            },
            Instruction::Get { block: b.clone() },
            Instruction::Request { block: b.clone() },
            Instruction::BlockContract {
                dest: b.clone(),
                a: b.clone(),
                b: b.clone(),
                accumulate: true,
            },
            Instruction::Put {
                dest: b.clone(),
                src: b.clone(),
                mode: PutMode::Accumulate,
            },
            Instruction::Prepare {
                dest: b.clone(),
                src: b.clone(),
                mode: PutMode::Replace,
            },
            Instruction::ExecuteSuper {
                name: sup,
                args: vec![
                    Arg::Block(b.clone()),
                    Arg::Scalar(ScalarId(0)),
                    Arg::Index(IndexId(0)),
                ],
            },
            Instruction::BlocksToList {
                array: ArrayId(0),
                label,
            },
            Instruction::Print {
                items: vec![
                    PrintItem::Str(label),
                    PrintItem::Expr(ScalarExpr::Neg(Box::new(ScalarExpr::Lit(3.0)))),
                ],
            },
            Instruction::PardoEnd { start_pc: 0 },
            Instruction::SipBarrier,
            Instruction::ServerBarrier,
            Instruction::Halt,
        ];
        p
    }

    #[test]
    fn roundtrip_identity() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_program(&sample_program()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_program(&bytes).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_program(&sample_program()).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_program(&bytes).unwrap_err(),
            WireError::BadVersion(_)
        ));
    }

    #[test]
    fn truncation_detected_at_any_cut() {
        let bytes = encode_program(&sample_program()).to_vec();
        // Cut the stream at a few interior positions; decode must error, not
        // panic.
        for cut in [5, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_program(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn v2_stream_without_line_table_still_loads() {
        // Encode, then strip the v3 tail (presence byte + table) and patch
        // the header back to version 2 — exactly what a pre-v3 writer
        // produced.
        let mut p = sample_program();
        let with = encode_program(&p).to_vec();
        p.line_table = None;
        let without = encode_program(&p).to_vec();
        let tail = with.len() - (without.len() - 1);
        let mut v2 = with[..with.len() - tail].to_vec();
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let q = decode_program(&v2).unwrap();
        assert_eq!(q.line_table, None);
        assert_eq!(q.code, sample_program().code);
    }

    #[test]
    fn v1_stream_still_loads_dense() {
        // A v1 stream has neither per-array sparse flags nor the v3 tail;
        // use an array-free program so the only difference is the tail.
        let mut p = sample_program();
        p.line_table = None;
        p.arrays.clear();
        p.code.clear();
        let mut bytes = encode_program(&p).to_vec();
        bytes.truncate(bytes.len() - 1); // drop v3 presence byte
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let q = decode_program(&bytes).unwrap();
        assert_eq!(q.name, "roundtrip");
        assert_eq!(q.line_table, None);
    }

    #[test]
    fn line_table_roundtrips_exactly() {
        let p = sample_program();
        let q = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(p.line_table, q.line_table);
        assert_eq!(q.source_of(0), Some(("roundtrip.sial", 3)));
        assert_eq!(q.source_of(12), None, "0 entry means unknown");
    }

    #[test]
    fn empty_program_roundtrips() {
        let p = Program {
            name: String::new(),
            ..Default::default()
        };
        let q = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(p, q);
    }
}
