//! A human-readable disassembler for SIA bytecode.
//!
//! The SIP's per-instruction profiles reference program locations; the paper
//! stresses that "the relationship between the source code and the profile
//! data is transparent". The disassembler renders instructions with source
//! names recovered from the descriptor tables so a profile line like
//! `pc 12 bcontract tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)` reads like the
//! SIAL statement it came from.

use crate::ops::{
    Arg, BinOp, BlockRef, BoolExpr, CmpOp, Instruction, PrintItem, PutMode, ScalarExpr,
};
use crate::program::Program;
use std::fmt::Write as _;

fn index_name(p: &Program, id: crate::program::IndexId) -> &str {
    p.indices
        .get(id.index())
        .map(|d| d.name.as_str())
        .unwrap_or("?idx")
}

fn block_ref(p: &Program, b: &BlockRef) -> String {
    let arr = p
        .arrays
        .get(b.array.index())
        .map(|d| d.name.as_str())
        .unwrap_or("?arr");
    let idxs: Vec<&str> = b.indices.iter().map(|&i| index_name(p, i)).collect();
    format!("{arr}({})", idxs.join(","))
}

fn scalar_name(p: &Program, id: crate::program::ScalarId) -> &str {
    p.scalars
        .get(id.index())
        .map(|d| d.name.as_str())
        .unwrap_or("?scl")
}

fn scalar_expr(p: &Program, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Lit(x) => format!("{x}"),
        ScalarExpr::Scalar(id) => scalar_name(p, *id).to_string(),
        ScalarExpr::IndexVal(id) => index_name(p, *id).to_string(),
        ScalarExpr::Bin(op, l, r) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {o} {})", scalar_expr(p, l), scalar_expr(p, r))
        }
        ScalarExpr::Neg(x) => format!("(-{})", scalar_expr(p, x)),
        ScalarExpr::Const(id) => p
            .consts
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| "?const".into()),
    }
}

fn bool_expr(p: &Program, e: &BoolExpr) -> String {
    match e {
        BoolExpr::Cmp(l, op, r) => {
            let o = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {o} {}", scalar_expr(p, l), scalar_expr(p, r))
        }
        BoolExpr::And(l, r) => format!("({} && {})", bool_expr(p, l), bool_expr(p, r)),
        BoolExpr::Or(l, r) => format!("({} || {})", bool_expr(p, l), bool_expr(p, r)),
        BoolExpr::Not(x) => format!("!({})", bool_expr(p, x)),
    }
}

fn string(p: &Program, id: crate::program::StringId) -> &str {
    p.strings
        .get(id.index())
        .map(String::as_str)
        .unwrap_or("?str")
}

/// Renders one instruction with names resolved against the program's tables.
pub fn disassemble_instruction(p: &Program, ins: &Instruction) -> String {
    use Instruction::*;
    match ins {
        PardoStart {
            indices,
            where_clauses,
            end_pc,
        } => {
            let idxs: Vec<&str> = indices.iter().map(|&i| index_name(p, i)).collect();
            let mut s = format!("pardo {}", idxs.join(","));
            for w in where_clauses {
                let _ = write!(s, " where {}", bool_expr(p, w));
            }
            let _ = write!(s, "  ; end={end_pc}");
            s
        }
        PardoEnd { start_pc } => format!("endpardo  ; start={start_pc}"),
        DoStart { index, end_pc } => {
            format!("do {}  ; end={end_pc}", index_name(p, *index))
        }
        DoEnd { start_pc } => format!("enddo  ; start={start_pc}"),
        DoInStart {
            sub,
            parent,
            end_pc,
            parallel,
        } => format!(
            "{} {} in {}  ; end={end_pc}",
            if *parallel { "pardo" } else { "do" },
            index_name(p, *sub),
            index_name(p, *parent)
        ),
        DoInEnd { start_pc } => format!("enddo_in  ; start={start_pc}"),
        ExitLoop {
            loop_start_pc,
            target,
        } => {
            format!("exit  ; loop={loop_start_pc} -> {target}")
        }
        JumpIfFalse { cond, target } => {
            format!("jf ({}) -> {target}", bool_expr(p, cond))
        }
        Jump { target } => format!("jmp -> {target}"),
        Call { proc } => format!(
            "call {}",
            p.procs
                .get(proc.index())
                .map(|d| d.name.as_str())
                .unwrap_or("?proc")
        ),
        Return => "ret".into(),
        Halt => "halt".into(),
        Create { array } => format!(
            "create {}",
            p.arrays
                .get(array.index())
                .map(|d| d.name.as_str())
                .unwrap_or("?arr")
        ),
        Delete { array } => format!(
            "delete {}",
            p.arrays
                .get(array.index())
                .map(|d| d.name.as_str())
                .unwrap_or("?arr")
        ),
        Get { block } => format!("get {}", block_ref(p, block)),
        Put { dest, src, mode } => format!(
            "put {} {} {}",
            block_ref(p, dest),
            match mode {
                PutMode::Replace => "=",
                PutMode::Accumulate => "+=",
            },
            block_ref(p, src)
        ),
        Request { block } => format!("request {}", block_ref(p, block)),
        Prepare { dest, src, mode } => format!(
            "prepare {} {} {}",
            block_ref(p, dest),
            match mode {
                PutMode::Replace => "=",
                PutMode::Accumulate => "+=",
            },
            block_ref(p, src)
        ),
        BlocksToList { array, label } => format!(
            "blocks_to_list {} \"{}\"",
            p.arrays
                .get(array.index())
                .map(|d| d.name.as_str())
                .unwrap_or("?arr"),
            string(p, *label)
        ),
        ListToBlocks { array, label } => format!(
            "list_to_blocks {} \"{}\"",
            p.arrays
                .get(array.index())
                .map(|d| d.name.as_str())
                .unwrap_or("?arr"),
            string(p, *label)
        ),
        BlockFill { dest, value } => {
            format!("{} = {}", block_ref(p, dest), scalar_expr(p, value))
        }
        BlockCopy { dest, src } => {
            format!("{} = {}", block_ref(p, dest), block_ref(p, src))
        }
        BlockAccumulate { dest, src, sign } => format!(
            "{} {}= {}",
            block_ref(p, dest),
            if *sign < 0.0 { "-" } else { "+" },
            block_ref(p, src)
        ),
        BlockScale { dest, factor } => {
            format!("{} *= {}", block_ref(p, dest), scalar_expr(p, factor))
        }
        BlockContract {
            dest,
            a,
            b,
            accumulate,
        } => format!(
            "{} {}= {} * {}",
            block_ref(p, dest),
            if *accumulate { "+" } else { "" },
            block_ref(p, a),
            block_ref(p, b)
        ),
        ScalarAssign { dest, expr } => {
            format!("{} = {}", scalar_name(p, *dest), scalar_expr(p, expr))
        }
        ScalarFromBlock {
            dest,
            src,
            accumulate,
        } => format!(
            "{} {}= fold {}",
            scalar_name(p, *dest),
            if *accumulate { "+" } else { "" },
            block_ref(p, src)
        ),
        ExecuteSuper { name, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Arg::Block(b) => block_ref(p, b),
                    Arg::Scalar(id) => scalar_name(p, *id).to_string(),
                    Arg::Index(id) => index_name(p, *id).to_string(),
                })
                .collect();
            format!("execute {} {}", string(p, *name), rendered.join(" "))
        }
        Print { items } => {
            let rendered: Vec<String> = items
                .iter()
                .map(|i| match i {
                    PrintItem::Str(id) => format!("\"{}\"", string(p, *id)),
                    PrintItem::Expr(e) => scalar_expr(p, e),
                })
                .collect();
            format!("print {}", rendered.join(" "))
        }
        SipBarrier => "sip_barrier".into(),
        ServerBarrier => "server_barrier".into(),
    }
}

/// Renders a full program listing: header, tables, and numbered code.
///
/// When the program carries a line table (wire v3), source lines are
/// interleaved: each run of instructions lowered from the same line is
/// preceded by a `; file:line` marker, so the listing reads against the
/// SIAL source.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sial {}", p.name);
    for (i, d) in p.indices.iter().enumerate() {
        let _ = writeln!(
            out,
            "  index[{i}] {} : {:?} = {:?}..{:?}",
            d.name, d.kind, d.low, d.high
        );
    }
    for (i, d) in p.arrays.iter().enumerate() {
        let dims: Vec<&str> = d.dims.iter().map(|&x| index_name(p, x)).collect();
        let _ = writeln!(
            out,
            "  array[{i}] {}{:?} {}({})",
            if d.sparse { "sparse " } else { "" },
            d.kind,
            d.name,
            dims.join(",")
        );
    }
    for (i, d) in p.scalars.iter().enumerate() {
        let _ = writeln!(out, "  scalar[{i}] {} = {}", d.name, d.init);
    }
    for (i, c) in p.consts.iter().enumerate() {
        let _ = writeln!(out, "  const[{i}] {c}");
    }
    for (i, d) in p.procs.iter().enumerate() {
        let _ = writeln!(out, "  proc[{i}] {} @ {}", d.name, d.entry_pc);
    }
    let _ = writeln!(out, "code:");
    let mut last_line = 0u32;
    for (pc, ins) in p.code.iter().enumerate() {
        if let Some((file, line)) = p.source_of(pc as u32) {
            if line != last_line {
                let _ = writeln!(out, "        ; {file}:{line}");
                last_line = line;
            }
        }
        let _ = writeln!(out, "  {pc:4}  {}", disassemble_instruction(p, ins));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, ArrayId, ArrayKind, IndexDecl, IndexId, IndexKind, Value};

    fn tiny() -> Program {
        Program {
            name: "t".into(),
            indices: vec![IndexDecl {
                name: "M".into(),
                kind: IndexKind::AoIndex,
                low: Value::Lit(1),
                high: Value::Lit(4),
            }],
            arrays: vec![ArrayDecl {
                name: "R".into(),
                kind: ArrayKind::Distributed,
                dims: vec![IndexId(0), IndexId(0)],
                sparse: false,
            }],
            scalars: vec![],
            consts: vec![],
            procs: vec![],
            strings: vec![],
            code: vec![
                Instruction::Get {
                    block: BlockRef {
                        array: ArrayId(0),
                        indices: vec![IndexId(0), IndexId(0)],
                    },
                },
                Instruction::Halt,
            ],
            line_table: None,
        }
    }

    #[test]
    fn listing_contains_source_names() {
        let text = disassemble(&tiny());
        assert!(text.contains("get R(M,M)"), "{text}");
        assert!(text.contains("halt"));
        assert!(text.contains("array[0]"));
    }

    #[test]
    fn contraction_reads_like_sial() {
        let p = tiny();
        let ins = Instruction::BlockContract {
            dest: BlockRef {
                array: ArrayId(0),
                indices: vec![IndexId(0), IndexId(0)],
            },
            a: BlockRef {
                array: ArrayId(0),
                indices: vec![IndexId(0), IndexId(0)],
            },
            b: BlockRef {
                array: ArrayId(0),
                indices: vec![IndexId(0), IndexId(0)],
            },
            accumulate: false,
        };
        assert_eq!(
            disassemble_instruction(&p, &ins),
            "R(M,M) = R(M,M) * R(M,M)"
        );
    }

    #[test]
    fn listing_interleaves_source_lines() {
        let mut p = tiny();
        p.line_table = Some(crate::program::LineTable {
            file: "t.sial".into(),
            lines: vec![7, 7],
        });
        let text = disassemble(&p);
        assert!(text.contains("; t.sial:7"), "{text}");
        // Consecutive instructions from the same line share one marker.
        assert_eq!(text.matches("; t.sial:7").count(), 1, "{text}");
    }

    #[test]
    fn robust_against_dangling_ids() {
        let p = Program::default();
        let ins = Instruction::Get {
            block: BlockRef {
                array: ArrayId(7),
                indices: vec![IndexId(9)],
            },
        };
        let s = disassemble_instruction(&p, &ins);
        assert!(s.contains("?arr"));
        assert!(s.contains("?idx"));
    }
}
