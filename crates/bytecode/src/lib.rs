//! # sia-bytecode — the compiled form of SIAL programs
//!
//! "SIAL programs are compiled into SIA bytecode, which is interpreted by the
//! SIP." This crate defines that bytecode: a table of [`Instruction`]s plus
//! descriptor tables for index variables, arrays, scalars, symbolic
//! constants, procedures, and strings. Operands are table ids, exactly like
//! the original's "operand addresses given as entries in data descriptor
//! tables".
//!
//! Symbolic constants (e.g. `norb`) are placeholders "replaced with a
//! concrete value during initialization" — see [`Program::resolve_consts`].
//!
//! The crate also provides the on-disk wire format ([`wire`]) and a
//! disassembler ([`disasm`]) whose output the SIP profiler references, since
//! "the relationship between the source code and the profile data is
//! transparent".

pub mod diag;
pub mod disasm;
pub mod ops;
pub mod program;
pub mod wire;

pub use diag::{diagnostics_to_json, Diagnostic, LineMap, Severity, Span};
pub use disasm::disassemble;
pub use ops::{
    Arg, BinOp, BlockRef, BoolExpr, CmpOp, Instruction, InstructionClass, PutMode, ScalarExpr,
};
pub use program::{
    ArrayDecl, ArrayId, ArrayKind, ConstBindings, ConstId, IndexDecl, IndexId, IndexKind,
    LineTable, ProcDecl, ProcId, Program, ResolveError, ScalarDecl, ScalarId, StringId, Value,
};
pub use wire::{decode_program, encode_program, WireError};
