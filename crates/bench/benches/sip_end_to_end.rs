//! End-to-end benchmark of the real SIP: the paper's contraction on a small
//! problem, across worker counts and prefetch settings. (Threads share one
//! host, so this measures runtime overheads — scheduling, messaging, cache —
//! rather than parallel speedup.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sia_chem::{contraction_demo, Molecule};
use sia_runtime::SipConfig;

fn molecule() -> Molecule {
    Molecule {
        name: "bench",
        formula: "—",
        electrons: 8,
        n_occ: 4,
        n_ao: 12,
        open_shell: false,
    }
}

fn bench_real_sip(c: &mut Criterion) {
    let workload = contraction_demo(&molecule(), 4);
    let mut group = c.benchmark_group("sip_real_contraction");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let config = SipConfig::builder()
                        .workers(workers)
                        .io_servers(0)
                        .collect_distributed(false)
                        .build()
                        .unwrap();
                    workload.run_real(config).expect("run succeeds")
                });
            },
        );
    }
    for depth in [0usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("prefetch_depth", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let config = SipConfig::builder()
                        .workers(2)
                        .io_servers(0)
                        .prefetch_depth(depth)
                        .collect_distributed(false)
                        .build()
                        .unwrap();
                    workload.run_real(config).expect("run succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_real_sip);
criterion_main!(benches);
