//! Benchmarks of the scale-simulation path: trace generation from bytecode
//! and discrete-event replay at large worker counts (the cost of
//! regenerating a paper figure).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sia_chem::{ccsd_iteration, fock_build, RDX};
use sia_sim::{machine::CRAY_XT5, simulate, SimConfig};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let ccsd = ccsd_iteration(&RDX, 20, 1);
    group.bench_function("rdx_ccsd", |b| {
        b.iter(|| ccsd.trace(1000, 1).unwrap());
    });
    group.finish();
}

fn bench_des_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_replay");
    group.sample_size(10);
    let trace = ccsd_iteration(&RDX, 15, 1).trace(1000, 1).unwrap();
    for workers in [1_000u64, 8_000, 64_000] {
        group.bench_with_input(
            BenchmarkId::new("rdx_ccsd", workers),
            &workers,
            |b, &workers| {
                b.iter(|| simulate(black_box(&trace), &SimConfig::sip(CRAY_XT5, workers)));
            },
        );
    }
    group.finish();
}

fn bench_des_fine_grained(c: &mut Criterion) {
    // The Figure 6 workload: tens of millions of tiny tasks — the DES's
    // stress case (chunk events through the serialized master model).
    let mut group = c.benchmark_group("des_fine_grained");
    group.sample_size(10);
    let trace = fock_build(&sia_chem::DIAMOND_NC, 48)
        .trace(1024, 1)
        .unwrap();
    group.bench_function("diamond_fock_72k", |b| {
        b.iter(|| simulate(black_box(&trace), &SimConfig::sip(CRAY_XT5, 72_000)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_des_replay,
    bench_des_fine_grained
);
criterion_main!(benches);
