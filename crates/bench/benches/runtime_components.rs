//! Micro-benchmarks of the SIP's management machinery: block cache, guided
//! scheduler, iteration-space enumeration, bytecode wire codec, block pool,
//! and fabric round trips.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sia_blocks::{Block, BlockPool, PoolConfig, Shape};
use sia_bytecode::{ArrayId, BoolExpr, CmpOp, IndexId, ScalarExpr};
use sia_fabric::{Message, Rank};
use sia_runtime::cache::BlockCache;
use sia_runtime::scheduler::{GuidedScheduler, IterationSpace};
use sia_runtime::BlockKey;
use std::time::Duration;

fn bench_block_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_cache");
    group.bench_function("fill_lookup_evict_1k", |b| {
        b.iter(|| {
            let mut cache = BlockCache::new(128);
            for i in 0..1000i64 {
                let key = BlockKey::new(ArrayId(0), &[i % 300, i / 300]);
                if cache.lookup(&key).is_none() {
                    cache.fill(key, Block::zeros(Shape::new(&[8])).into());
                }
            }
            black_box(cache.stats())
        });
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("guided_scheduler");
    for total in [10_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &total| {
            b.iter(|| {
                let mut s = GuidedScheduler::new(total, 256, 2);
                let mut chunks = 0u64;
                while let Some(r) = s.next_chunk() {
                    chunks += 1;
                    black_box(r);
                }
                chunks
            });
        });
    }
    group.finish();
}

fn bench_iteration_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration_space");
    // Triangular filter over a 64×64 space (the Fock build's shape).
    let clause = BoolExpr::Cmp(
        ScalarExpr::IndexVal(IndexId(0)),
        CmpOp::Le,
        ScalarExpr::IndexVal(IndexId(1)),
    );
    group.throughput(Throughput::Elements(64 * 64));
    group.bench_function("triangle_64x64", |b| {
        b.iter(|| {
            IterationSpace::enumerate(
                &[IndexId(0), IndexId(1)],
                &[(1, 64), (1, 64)],
                std::slice::from_ref(&clause),
                &|_| 0.0,
                &|_| 0,
            )
        });
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    // A representative compiled program (the paper's contraction).
    let src = r#"
sial bench
aoindex M = 1, n
aoindex N = 1, n
aoindex L = 1, n
aoindex S = 1, n
moindex I = 1, o
moindex J = 1, o
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp t(M,N,I,J)
scalar s
pardo M, N, I, J
  t(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      t(M,N,I,J) += V(M,N,L,S) * T(L,S,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = t(M,N,I,J)
endpardo M, N, I, J
sip_barrier
endsial
"#;
    let program = sial_frontend::compile(src).unwrap();
    let bytes = sia_bytecode::encode_program(&program);
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| sia_bytecode::encode_program(black_box(&program)));
    });
    group.bench_function("decode", |b| {
        b.iter(|| sia_bytecode::decode_program(black_box(&bytes)).unwrap());
    });
    group.bench_function("compile_from_source", |b| {
        b.iter(|| sial_frontend::compile(black_box(src)).unwrap());
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_pool");
    group.bench_function("acquire_release_recycled", |b| {
        let pool = BlockPool::new(PoolConfig {
            max_bytes: 64 << 20,
        });
        let shape = Shape::cube(4, 8);
        // Prime the size class.
        pool.release(Block::zeros(shape));
        b.iter(|| {
            let blk = pool.acquire_raw(shape).unwrap();
            pool.release(black_box(blk));
        });
    });
    group.finish();
}

struct Ping(Vec<u8>);
impl Message for Ping {
    fn approx_bytes(&self) -> usize {
        self.0.len()
    }
}

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    for size in [1024usize, 64 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("same_thread_roundtrip", size),
            &size,
            |b, &size| {
                let (mut eps, _stats) = sia_fabric::build::<Ping>(2);
                let b2 = eps.pop().unwrap();
                let a = eps.pop().unwrap();
                b.iter(|| {
                    a.send(Rank(1), Ping(vec![0u8; size])).unwrap();
                    let env = b2.recv_timeout(Duration::from_secs(1)).unwrap();
                    black_box(env.msg.0.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_cache,
    bench_scheduler,
    bench_iteration_space,
    bench_wire,
    bench_pool,
    bench_fabric
);
criterion_main!(benches);
