//! Micro-benchmarks of the computational super instructions: the block
//! contraction (permute→GEMM→permute) across segment sizes — the paper's
//! central tuning parameter — plus raw GEMM and permutation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sia_blocks::{
    contract, contract_into_ctx, dgemm, dgemm_with, permute, Block, BlockPool, ContractCtx,
    ContractionPlan, GemmConfig, GemmLayout, PoolConfig, Shape,
};

fn ramp(shape: Shape) -> Block {
    let mut v = 0.3;
    Block::from_fn(shape, |_| {
        v = (v * 1.3 + 0.7) % 5.0 - 2.0;
        v
    })
}

/// The paper's contraction: R(M,N,I,J) = V(M,N,L,S)·T(L,S,I,J) on one block
/// pair, at several segment sizes (§III: "one super instruction … requires
/// 2·100³ to 2·2500³ floating point operations").
fn bench_block_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_contraction_rank4");
    for seg in [4usize, 8, 12, 16] {
        let plan = ContractionPlan::infer(&[0, 1, 2, 3], &[0, 1, 4, 5], &[4, 5, 2, 3]).unwrap();
        let a = ramp(Shape::cube(4, seg));
        let b = ramp(Shape::cube(4, seg));
        let flops = plan.flops(a.shape(), b.shape());
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::from_parameter(seg), &seg, |bench, _| {
            bench.iter(|| contract(&plan, black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

/// Matrix-multiply-shaped contraction (rank 2), closest to raw DGEMM.
fn bench_matrix_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_contraction_rank2");
    for n in [32usize, 64, 128, 256] {
        let plan = ContractionPlan::infer(&[0, 2], &[0, 1], &[1, 2]).unwrap();
        let a = ramp(Shape::new(&[n, n]));
        let b = ramp(Shape::new(&[n, n]));
        group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| contract(&plan, black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgemm");
    for n in [64usize, 128, 256] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 13) as f64 - 6.0).collect();
        let b = a.clone();
        group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = vec![0.0f64; n * n];
            bench.iter(|| {
                dgemm(
                    n,
                    n,
                    n,
                    1.0,
                    black_box(&a),
                    GemmLayout::NoTrans,
                    black_box(&b),
                    GemmLayout::NoTrans,
                    0.0,
                    &mut out,
                );
            });
        });
    }
    group.finish();
}

/// Transpose folding on vs off, on the fold-friendly `C(M,N) = A(L,M)*B(L,N)`
/// shape: the ablation shows what the planner saves over always materializing
/// operands in GEMM order.
fn bench_fold_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_fold");
    for n in [64usize, 128, 256] {
        let plan = ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap();
        let a = ramp(Shape::new(&[n, n]));
        let b = ramp(Shape::new(&[n, n]));
        let pool = BlockPool::new(PoolConfig {
            max_bytes: 64 << 20,
        });
        group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));
        for fold in [true, false] {
            let name = if fold { "fold" } else { "no_fold" };
            let mut ctx = ContractCtx::with_pool(pool.clone()).fold_transposes(fold);
            let mut out = Block::zeros(plan.output_shape(a.shape(), b.shape()));
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| {
                    contract_into_ctx(&mut ctx, &plan, black_box(&a), black_box(&b), 0.0, &mut out)
                });
            });
        }
    }
    group.finish();
}

/// The threaded GEMM at bench-relevant sizes (thread counts beyond the
/// machine's core count just measure scheduling overhead).
fn bench_gemm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgemm_threads");
    for threads in [1usize, 2, 4] {
        let n = 256usize;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 13) as f64 - 6.0).collect();
        let b = a.clone();
        let cfg = GemmConfig::with_threads(threads);
        group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, _| {
                let mut out = vec![0.0f64; n * n];
                bench.iter(|| {
                    dgemm_with(
                        cfg,
                        n,
                        n,
                        n,
                        1.0,
                        black_box(&a),
                        GemmLayout::NoTrans,
                        black_box(&b),
                        GemmLayout::NoTrans,
                        0.0,
                        &mut out,
                    );
                });
            },
        );
    }
    group.finish();
}

/// The permutation the contraction engine leans on (SIAL's `V1(K,J,I) =
/// V2(I,J,K)`).
fn bench_permute(c: &mut Criterion) {
    let mut group = c.benchmark_group("permute_rank4");
    for seg in [8usize, 16] {
        let b = ramp(Shape::cube(4, seg));
        group.throughput(Throughput::Bytes((b.len() * 8) as u64));
        group.bench_with_input(BenchmarkId::new("reverse", seg), &seg, |bench, _| {
            bench.iter(|| permute(black_box(&b), &[3, 2, 1, 0]));
        });
        group.bench_with_input(BenchmarkId::new("swap_pairs", seg), &seg, |bench, _| {
            bench.iter(|| permute(black_box(&b), &[2, 3, 0, 1]));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_contraction,
    bench_matrix_contraction,
    bench_gemm,
    bench_fold_ablation,
    bench_gemm_threads,
    bench_permute
);
criterion_main!(benches);
