//! Shape-regression tests: the qualitative findings of every paper figure,
//! asserted on reduced sweeps so `cargo test` guards the reproduction.
//! (The full sweeps live in the `fig*` binaries.)

use sia_chem::{
    ccsd_iteration, ccsd_t_triples, fock_build, mp2_energy, CYTOSINE_OH, DIAMOND_NC, HMX,
    LUCIFERIN, RDX, WATER_21,
};
use sia_sim::machine::{CRAY_XT4, CRAY_XT5, SGI_ALTIX, SUN_OPTERON_IB};
use sia_sim::{simulate, simulate_ga, GaConfig, GaOutcome, SimConfig};

#[test]
fn fig2_shape_luciferin_scales_with_moderate_wait() {
    let trace = ccsd_iteration(&LUCIFERIN, 26, 1).trace(32, 1).unwrap();
    let r32 = simulate(&trace, &SimConfig::sip(SUN_OPTERON_IB, 32));
    let r256 = simulate(&trace, &SimConfig::sip(SUN_OPTERON_IB, 256));
    // Strong scaling holds with ≥ 70% efficiency at 256 (paper ~75–85%).
    let eff = r256.efficiency_vs(&r32, 32, 256);
    assert!(eff > 0.70 && eff <= 1.02, "efficiency {eff}");
    // Time per iteration lands within 3× of the paper's ~60 minutes at 32.
    assert!(
        (1200.0..10800.0).contains(&r32.total_time),
        "t(32) = {} s",
        r32.total_time
    );
    // Wait stays a minor fraction at the paper's scales.
    assert!(r256.wait_fraction < 0.35, "wait {}", r256.wait_fraction);
}

#[test]
fn fig3_shape_xt5_beats_xt4() {
    let trace = ccsd_iteration(&WATER_21, 41, 1).trace(512, 1).unwrap();
    let xt4 = simulate(&trace, &SimConfig::sip(CRAY_XT4, 512)).total_time;
    let xt5 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 512)).total_time;
    assert!(xt5 < xt4 * 0.7, "XT5 {xt5} vs XT4 {xt4}");
    // Both machines keep scaling through the measured range.
    let xt5_4096 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 4096)).total_time;
    assert!(xt5_4096 < xt5 * 0.25, "XT5 must scale 512→4096");
}

#[test]
fn fig4_shape_hmx_scales_better_than_rdx() {
    let seg = 15;
    let eff_at_8k = |m: &sia_chem::Molecule| {
        let trace = ccsd_iteration(m, seg, 1).trace(1000, 1).unwrap();
        let r1k = simulate(&trace, &SimConfig::sip(CRAY_XT5, 1000));
        let r8k = simulate(&trace, &SimConfig::sip(CRAY_XT5, 8000));
        r8k.efficiency_vs(&r1k, 1000, 8000)
    };
    let rdx = eff_at_8k(&RDX);
    let hmx = eff_at_8k(&HMX);
    assert!(hmx > rdx, "HMX {hmx} must beat RDX {rdx} at 8000 procs");
}

#[test]
fn fig5_shape_triples_scale_to_30k_then_tail() {
    let trace = ccsd_t_triples(&RDX, 8).trace(10_000, 1).unwrap();
    let r10 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 10_000));
    let r30 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 30_000));
    let r80 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 80_000));
    let e30 = r30.efficiency_vs(&r10, 10_000, 30_000);
    let e80 = r80.efficiency_vs(&r10, 10_000, 80_000);
    assert!(e30 > 0.75, "good scaling to 30k: {e30}");
    assert!(e80 < e30, "efficiency must tail off beyond 30k");
    assert!(r80.total_time < r10.total_time, "time still drops to 80k");
}

#[test]
fn fig6_shape_knee_and_segment_retune() {
    let quick_procs = [24_000u64, 72_000, 108_000];
    let trace32 = fock_build(&DIAMOND_NC, 32).trace(1024, 1).unwrap();
    let times: Vec<f64> = quick_procs
        .iter()
        .map(|&p| simulate(&trace32, &SimConfig::sip(CRAY_XT5, p)).total_time)
        .collect();
    // Scaling from 24k to 72k, then no improvement (the paper's regression).
    assert!(
        times[1] < times[0] * 0.6,
        "24k→72k must speed up: {times:?}"
    );
    assert!(
        times[2] > times[1] * 0.98,
        "beyond the knee, more cores must not help: {times:?}"
    );
    // Retuning the segment size at 84k beats the default-seg 72k time.
    let trace64 = fock_build(&DIAMOND_NC, 64).trace(1024, 1).unwrap();
    let retuned_84k = simulate(&trace64, &SimConfig::sip(CRAY_XT5, 84_000)).total_time;
    assert!(
        retuned_84k < times[1],
        "retuned 84k ({retuned_84k}) must beat default 72k ({})",
        times[1]
    );
}

#[test]
fn fig7_shape_ga_memory_gate_and_offset() {
    let workload = mp2_energy(&CYTOSINE_OH, 16);
    let trace = workload.trace(16, 1).unwrap();
    let o = CYTOSINE_OH.n_occ as u64;
    let n = CYTOSINE_OH.n_ao as u64;
    let ga_bytes = o * n * n * n * 8;

    // SIA at 1 GB/core completes at every count (feasibility by design).
    for p in [16u64, 64, 256] {
        let r = simulate(
            &trace,
            &SimConfig::sip(SGI_ALTIX.with_mem_per_core(1 << 30), p),
        );
        assert!(r.total_time.is_finite() && r.total_time > 0.0);
    }
    // GA at 1 GB/core never runs.
    for p in [16u64, 32, 64, 128, 256] {
        let out = simulate_ga(
            &trace,
            &GaConfig::new(SGI_ALTIX.with_mem_per_core(1 << 30), p),
            ga_bytes,
        );
        assert!(
            matches!(out, GaOutcome::OutOfMemory { .. }),
            "GA@1GB must fail at {p} procs"
        );
    }
    // GA at 2 GB/core fails at 16, runs at 32 (the paper's first point).
    let g16 = simulate_ga(
        &trace,
        &GaConfig::new(SGI_ALTIX.with_mem_per_core(2 << 30), 16),
        ga_bytes,
    );
    assert!(matches!(g16, GaOutcome::OutOfMemory { .. }));
    let g32 = simulate_ga(
        &trace,
        &GaConfig::new(SGI_ALTIX.with_mem_per_core(2 << 30), 32),
        ga_bytes,
    );
    let Some(ga_report) = g32.report() else {
        panic!("GA@2GB must run at 32 procs");
    };
    // And where both run, SIA is faster (the constant offset).
    let sia = simulate(
        &trace,
        &SimConfig::sip(SGI_ALTIX.with_mem_per_core(1 << 30), 32),
    );
    assert!(
        ga_report.total_time > 1.5 * sia.total_time,
        "GA {} vs SIA {}",
        ga_report.total_time,
        sia.total_time
    );
}

#[test]
fn e7a_shape_tuned_bgp_tracks_processor_ratio() {
    use sia_sim::machine::BLUEGENE_P;
    let trace = ccsd_iteration(&WATER_21, 41, 1).trace(512, 1).unwrap();
    let xt5 = simulate(&trace, &SimConfig::sip(CRAY_XT5, 512)).total_time;
    let mut bgp_cfg = SimConfig::sip(BLUEGENE_P, 512);
    bgp_cfg.prefetch_depth = 1;
    let bgp = simulate(&trace, &bgp_cfg).total_time;
    let ratio = bgp / xt5;
    let speed_ratio = CRAY_XT5.flops_per_core / BLUEGENE_P.flops_per_core;
    assert!(
        (ratio / speed_ratio - 1.0).abs() < 0.5,
        "tuned BG/P ratio {ratio} should track processor ratio {speed_ratio}"
    );
}
