//! Harness utilities shared by the figure-regeneration binaries.
//!
//! Every figure of the paper has a binary in `src/bin/` (`fig2` … `fig7`,
//! plus `e7_bgp_tuning` and `e8_overlap` for the in-text experiments). Each
//! prints the series the paper plots and writes a TSV under `results/` so
//! EXPERIMENTS.md can reference machine-readable output.
//!
//! Set `SIA_QUICK=1` to run reduced sweeps (fewer processor counts).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A printable/serializable result table for one figure.
pub struct FigTable {
    /// Table title (printed as a header).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl FigTable {
    /// Creates a table with the given title and columns.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        FigTable {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes a TSV file under `results/`.
    pub fn write_tsv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        let mut body = self.columns.join("\t");
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.join("\t"));
            body.push('\n');
        }
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// The repository `results/` directory.
pub fn results_dir() -> PathBuf {
    // crates/bench → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Reduced sweeps for CI/smoke runs.
pub fn quick() -> bool {
    std::env::var("SIA_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Formats seconds as `123.4 s` or `5.67 min` like the paper's axes.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 120.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{seconds:.1} s")
    }
}

/// Formats an efficiency as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = FigTable::new("demo", &["procs", "time"]);
        t.row(vec!["32".into(), "61.0 min".into()]);
        t.row(vec!["256".into(), "9.8 min".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("procs"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = FigTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(30.0), "30.0 s");
        assert_eq!(fmt_time(300.0), "5.0 min");
        assert_eq!(fmt_pct(0.875), "87.5%");
    }
}
