//! Figure 7 — UHF MP2 gradient on cytosine+OH: ACES III vs NWChem (Global
//! Arrays), SGI Altix 4700 (pople), 16–256 processors.
//!
//! The paper's findings, reproduced here with the GA-baseline model:
//!
//! * ACES III with **1 GB/core** completes at every processor count and is
//!   the fastest curve;
//! * NWChem **never completes with 1 GB/core** (rigid layout does not fit);
//! * NWChem with 2 GB/core starts only at 32 processors;
//! * more memory buys NWChem feasibility, not speed (the 2 GB and 4 GB
//!   curves track each other).
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig7
//! ```

use sia_bench::{fmt_time, FigTable};
use sia_chem::{mp2_energy, CYTOSINE_OH};
use sia_sim::{machine::SGI_ALTIX, simulate, simulate_ga, GaConfig, GaOutcome, SimConfig};

fn main() {
    let seg = 16;
    let workload = mp2_energy(&CYTOSINE_OH, seg);
    let trace = workload.trace(16, 1).expect("cytosine MP2 trace");

    // GA's semidirect MP2 gradient materializes a half-transformed o·n³
    // intermediate with a rigid layout (the quantity that blows the 1 GB
    // budget); our SIA run streams the ovov array instead.
    let o = CYTOSINE_OH.n_occ as u64;
    let n = CYTOSINE_OH.n_ao as u64;
    let ga_dist_bytes = o * n * n * n * 8;

    let procs: &[u64] = if sia_bench::quick() {
        &[16, 256]
    } else {
        &[16, 32, 64, 128, 256]
    };

    let mut table = FigTable::new(
        "Figure 7: cytosine+OH UHF MP2, SGI Altix 4700 — ACES III vs GA baseline",
        &[
            "procs",
            "ACES III (1GB)",
            "GA (1GB)",
            "GA (2GB)",
            "GA (4GB)",
        ],
    );
    for &p in procs {
        let sia = simulate(
            &trace,
            &SimConfig::sip(SGI_ALTIX.with_mem_per_core(1 << 30), p),
        );
        let ga = |gb: u64| -> String {
            let machine = SGI_ALTIX.with_mem_per_core(gb << 30);
            let cfg = GaConfig::new(machine, p);
            match simulate_ga(&trace, &cfg, ga_dist_bytes) {
                GaOutcome::Completed(r) => fmt_time(r.total_time),
                GaOutcome::OutOfMemory { .. } => "did not run".into(),
            }
        };
        table.row(vec![
            p.to_string(),
            fmt_time(sia.total_time),
            ga(1),
            ga(2),
            ga(4),
        ]);
    }
    table.print();
    match table.write_tsv("fig7") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
