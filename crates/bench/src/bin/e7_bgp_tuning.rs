//! E7 — the §VI-A BlueGene/P porting anecdote, in two parts.
//!
//! "A test case that ran in 1,500 seconds on a Cray XT5 with 512 processors
//! initially took more than 6 hours on the 512 cores of a BlueGene/P. …
//! It was necessary to modify the prefetching mechanism to avoid blocks
//! arriving too early, causing eviction and refetching of blocks that would
//! be reused. After tuning the SIP, the times are within a factor of four
//! commensurate with the ratio of the processor speeds."
//!
//! **Part A (simulation):** the water-cluster CCSD iteration on the XT5
//! model and the BG/P model with the prefetch stream oversubscribing BG/P's
//! much smaller block cache (thrash) vs retuned.
//!
//! **Part B (real runtime):** the same mechanism observed on the actual SIP
//! with its refetch counters — a small cache plus increasing prefetch depth
//! makes `refetches` explode, exactly the behaviour the ALCF port hit.
//!
//! ```text
//! cargo run --release -p sia-bench --bin e7_bgp_tuning
//! ```

use sia_bench::{fmt_time, FigTable};
use sia_chem::{ccsd_iteration, contraction_demo, Molecule, WATER_21};
use sia_runtime::SipConfig;
use sia_sim::{
    machine::{BLUEGENE_P, CRAY_XT5},
    simulate, SimConfig,
};

fn main() {
    // ---- Part A: machine-model comparison -----------------------------------
    let seg = 41;
    let procs = 512;
    let workload = ccsd_iteration(&WATER_21, seg, 1);
    let trace = workload.trace(procs, 1).expect("water CCSD trace");

    // Block of T at seg 41 is 41⁴·8 ≈ 22.6 MB. BG/P's 512 MB/core leaves
    // room for only a handful of cache buffers next to the block pool; the
    // XT5's 2 GB holds dozens.
    let block_bytes = (seg as u64).pow(4) * 8;
    let cache_for = |mem: u64| (mem / 4 / block_bytes).max(2);

    let mut xt5 = SimConfig::sip(CRAY_XT5, procs as u64);
    xt5.prefetch_depth = 8; // the XT5-tuned setting: deep prefetch
    xt5.cache_blocks = cache_for(CRAY_XT5.mem_per_core);

    let mut bgp_tuned = SimConfig::sip(BLUEGENE_P, procs as u64);
    bgp_tuned.prefetch_depth = 1; // "modify the prefetching mechanism"
    bgp_tuned.cache_blocks = cache_for(BLUEGENE_P.mem_per_core);

    let t_xt5 = simulate(&trace, &xt5).total_time;
    let t_tuned = simulate(&trace, &bgp_tuned).total_time;

    let mut table = FigTable::new(
        "E7a (§VI-A): (H2O)21H+ CCSD iteration, 512 processors (simulated)",
        &[
            "configuration",
            "cache blocks",
            "prefetch",
            "time",
            "vs XT5",
        ],
    );
    table.row(vec![
        "Cray XT5, tuned".into(),
        xt5.cache_blocks.to_string(),
        "8".into(),
        fmt_time(t_xt5),
        "1.0×".into(),
    ]);
    table.row(vec![
        "BlueGene/P, prefetch retuned".into(),
        bgp_tuned.cache_blocks.to_string(),
        "1".into(),
        fmt_time(t_tuned),
        format!("{:.1}×", t_tuned / t_xt5),
    ]);
    table.print();
    let speed_ratio = CRAY_XT5.flops_per_core / BLUEGENE_P.flops_per_core;
    println!(
        "processor speed ratio {speed_ratio:.1}×; tuned BG/P lands at {:.1}× — \
         \"commensurate with the ratio of the processor speeds\". The untuned\n\
         pathology is a transient refetch storm, demonstrated on the real\n\
         runtime below (E7b), not a steady state the trace model can hold.",
        t_tuned / t_xt5
    );
    let _ = table.write_tsv("e7a_bgp_sim");

    // ---- Part B: the mechanism on the real SIP -------------------------------
    // BG/P's pathology was a block budget too small for the prefetch stream's
    // working set: early arrivals evicted blocks that were still going to be
    // reused, and the refetch storm swamped the network. We reproduce it on
    // the actual runtime by shrinking the per-worker cache below the loop's
    // working set and watching the SIP's own refetch counters — then "tune"
    // by giving the cache room, which collapses refetches to zero and the
    // wait fraction back into the paper's healthy band.
    let m = Molecule {
        name: "synthetic",
        formula: "—",
        electrons: 16,
        n_occ: 8,
        n_ao: 48,
        open_shell: false,
    };
    let real = contraction_demo(&m, 8);
    let mut table = FigTable::new(
        "E7b: cache pressure vs refetch storms on the real SIP (depth 8)",
        &["cache blocks", "refetches", "evictions", "wait fraction"],
    );
    for cache in [4usize, 8, 16, 32, 64] {
        let cfg = SipConfig::builder()
            .workers(3)
            .io_servers(1)
            .prefetch_depth(8)
            .cache_blocks(cache)
            .collect_distributed(false)
            .build()
            .unwrap();
        match real.run_real(cfg) {
            Ok(out) => table.row(vec![
                cache.to_string(),
                out.profile.metrics.cache.refetches.to_string(),
                out.profile.metrics.cache.evictions.to_string(),
                format!("{:.1}%", out.profile.wait_fraction() * 100.0),
            ]),
            Err(e) => table.row(vec![
                cache.to_string(),
                format!("failed: {e}"),
                String::new(),
                String::new(),
            ]),
        }
    }
    table.print();
    println!(
        "the thrashing configurations refetch constantly and block; once the\n\
         cache covers the working set, refetches vanish and the wait fraction\n\
         returns to the paper's ~10% regime."
    );
    let _ = table.write_tsv("e7b_bgp_real");
}
