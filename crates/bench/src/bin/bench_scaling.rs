//! Strong-scaling comparison of hash vs planned placement: runs the
//! broadcast-shaped workload for real at small scale (measured fabric
//! message/byte counts under both placements), then extrapolates the
//! planner's byte classes through the analytic `comm_model` at simulated
//! rank counts up to 16k. Writes `BENCH_scaling.json` at the repo root.
//!
//! ```text
//! cargo run --release -p sia-bench --bin bench_scaling [-- --assert]
//! ```
//!
//! With `--assert` the bin exits nonzero unless (a) the planned placement
//! moves no more fabric messages than hash in the real run and (b) the
//! modeled planned time beats hash at every simulated scale ≥ 1024 ranks —
//! the CI smoke gate.

use sia_core::{Placement, RunOutput, Sip, SipConfig};
use sia_sim::machine;
use sia_sim::{hash_cost, planned_cost, CommWorkload};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// A broadcast-heavy contraction shape: `F(M)` is indexed by a strict
/// subset of the pardo indices, so every worker re-reads the same blocks
/// across its `N` iterations — the pattern the multicast schedule targets.
const PROGRAM: &str = "\
sial scaling
aoindex M = 1, n
aoindex N = 1, n
distributed F(M)
distributed R(M,N)
temp f(M)
temp q(M,N)
pardo M
f(M) = 0.5
put F(M) = f(M)
endpardo
sip_barrier
pardo M, N
get F(M)
f(M) = F(M)
q(M,N) = 0.0
put R(M,N) = q(M,N)
endpardo
endsial
";

const WORKERS: usize = 4;
const N: i64 = 12;
const SEG: usize = 4;
const RANKS: [u64; 3] = [64, 1024, 16384];

fn config(placement: Placement) -> SipConfig {
    SipConfig::builder()
        .workers(WORKERS)
        .io_servers(0)
        .segment_size(SEG)
        .placement(placement)
        .build()
        .unwrap()
}

fn run(placement: Placement) -> RunOutput {
    let program = sia_core::compile(PROGRAM).unwrap();
    let mut bindings = sia_core::ConstBindings::new();
    bindings.insert("n".into(), N);
    Sip::new(config(placement)).run(program, &bindings).unwrap()
}

fn main() -> ExitCode {
    let assert_mode = std::env::args().any(|a| a == "--assert");

    // ---- measured: the same program under both placements ------------------
    let hash_out = run(Placement::Hash);
    let planned_out = run(Placement::Planned);
    let (hm, pm) = (hash_out.traffic.messages, planned_out.traffic.messages);
    let reduction = 1.0 - pm as f64 / hm.max(1) as f64;
    println!(
        "measured @ {WORKERS} workers: hash {hm} msgs / {} B, planned {pm} msgs / {} B \
         ({:.1}% fewer messages)",
        hash_out.traffic.bytes,
        planned_out.traffic.bytes,
        reduction * 100.0
    );

    // ---- modeled: extrapolate the plan's byte classes -----------------------
    let program = sia_core::compile(PROGRAM).unwrap();
    let mut bindings = sia_core::ConstBindings::new();
    bindings.insert("n".into(), N);
    let (_, plan) = Sip::new(config(Placement::Planned))
        .plan(program, &bindings)
        .unwrap();
    let w = CommWorkload {
        aligned_put_bytes: plan.summary.aligned_put_bytes,
        broadcast_bytes: plan.summary.broadcast_bytes,
        broadcast_blocks: plan.summary.broadcast_blocks,
        other_bytes: plan.summary.other_bytes,
    };
    let m = machine::CRAY_XT5;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"workers_measured\": {WORKERS},\n"));
    json.push_str(&format!("  \"measured_hash_messages\": {hm},\n"));
    json.push_str(&format!("  \"measured_planned_messages\": {pm},\n"));
    json.push_str(&format!(
        "  \"measured_message_reduction\": {reduction:.4},\n"
    ));
    json.push_str(&format!(
        "  \"measured_hash_bytes\": {},\n  \"measured_planned_bytes\": {},\n",
        hash_out.traffic.bytes, planned_out.traffic.bytes
    ));
    json.push_str(&format!(
        "  \"workload\": {{ \"aligned_put_bytes\": {}, \"broadcast_bytes\": {}, \
         \"broadcast_blocks\": {}, \"other_bytes\": {} }},\n",
        w.aligned_put_bytes, w.broadcast_bytes, w.broadcast_blocks, w.other_bytes
    ));
    json.push_str(&format!("  \"machine\": \"{}\",\n", m.name));
    json.push_str("  \"scales\": [\n");

    let mut planned_wins_at_scale = true;
    for (i, &ranks) in RANKS.iter().enumerate() {
        let h = hash_cost(&w, ranks, &m);
        let p = planned_cost(&w, ranks, &m);
        println!(
            "model  @ {ranks:>5} ranks: hash {:.0} msgs / {:.4} s, planned {:.0} msgs / {:.4} s",
            h.messages, h.seconds, p.messages, p.seconds
        );
        if ranks >= 1024 && p.seconds >= h.seconds {
            planned_wins_at_scale = false;
        }
        json.push_str(&format!(
            "    {{ \"ranks\": {ranks}, \
             \"hash\": {{ \"bytes\": {:.0}, \"messages\": {:.0}, \"seconds\": {:.6} }}, \
             \"planned\": {{ \"bytes\": {:.0}, \"messages\": {:.0}, \"seconds\": {:.6} }} }}{}\n",
            h.bytes,
            h.messages,
            h.seconds,
            p.bytes,
            p.messages,
            p.seconds,
            if i + 1 < RANKS.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scaling.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    if assert_mode {
        if pm > hm {
            eprintln!("FAIL: planned placement sent more messages than hash ({pm} > {hm})");
            return ExitCode::FAILURE;
        }
        if reduction < 0.30 {
            eprintln!(
                "FAIL: planned message reduction {:.1}% below the 30% bar",
                reduction * 100.0
            );
            return ExitCode::FAILURE;
        }
        if !planned_wins_at_scale {
            eprintln!("FAIL: modeled planned time does not beat hash at ≥ 1024 ranks");
            return ExitCode::FAILURE;
        }
        println!("assertions passed");
    }
    ExitCode::SUCCESS
}
