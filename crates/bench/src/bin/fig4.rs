//! Figure 4 — RHF CCSD on RDX (C3H6N6O6) and HMX (C4H8N8O8), Cray XT5
//! (jaguar), 1000–8000 processors; efficiency relative to 1000.
//!
//! The paper's finding: "the larger HMX molecule displays much better strong
//! scaling for CCSD" — RDX runs out of pardo tasks first.
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig4
//! ```

use sia_bench::{fmt_pct, fmt_time, FigTable};
use sia_chem::{ccsd_iteration, Molecule, HMX, RDX};
use sia_sim::{machine::CRAY_XT5, simulate, SimConfig, SimReport};

fn sweep(m: &Molecule, seg: usize, procs: &[u64]) -> Vec<(u64, SimReport)> {
    let trace = ccsd_iteration(m, seg, 1)
        .trace(procs[0] as usize, 1)
        .unwrap_or_else(|e| panic!("{}: {e}", m.name));
    procs
        .iter()
        .map(|&p| (p, simulate(&trace, &SimConfig::sip(CRAY_XT5, p))))
        .collect()
}

fn main() {
    let seg = 15;
    let procs: &[u64] = if sia_bench::quick() {
        &[1000, 8000]
    } else {
        &[1000, 2000, 4000, 6000, 8000]
    };

    let mut table = FigTable::new(
        "Figure 4: RDX and HMX RHF CCSD, Cray XT5 (jaguar)",
        &["molecule", "procs", "time", "efficiency vs 1000"],
    );
    for m in [&RDX, &HMX] {
        let runs = sweep(m, seg, procs);
        let reference = runs[0].1.clone();
        for (p, r) in &runs {
            table.row(vec![
                m.name.to_string(),
                p.to_string(),
                fmt_time(r.total_time),
                fmt_pct(r.efficiency_vs(&reference, procs[0], *p)),
            ]);
        }
    }
    table.print();

    // The paper's claim, checked numerically: HMX efficiency at the top end
    // exceeds RDX efficiency.
    let rdx = sweep(&RDX, seg, procs);
    let hmx = sweep(&HMX, seg, procs);
    let last = procs.len() - 1;
    let rdx_eff = rdx[last].1.efficiency_vs(&rdx[0].1, procs[0], procs[last]);
    let hmx_eff = hmx[last].1.efficiency_vs(&hmx[0].1, procs[0], procs[last]);
    println!(
        "at {} procs: RDX efficiency {} vs HMX {} — {}",
        procs[last],
        fmt_pct(rdx_eff),
        fmt_pct(hmx_eff),
        if hmx_eff > rdx_eff {
            "HMX scales better, as in the paper"
        } else {
            "UNEXPECTED: RDX scaled better"
        }
    );
    match table.write_tsv("fig4") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
