//! Ablations of the SIP's design choices (the decisions §V and §VII argue
//! for), each run against the alternative:
//!
//! 1. **Block placement** (§V-B: "a simple, static strategy … works well in
//!    practice"): hash placement vs locality-preserving round-robin, measured
//!    on the *real* runtime by per-worker traffic imbalance and wall time.
//! 2. **Guided chunk scheduling** (§V-B: "the chunk size decreases as the
//!    computation proceeds"): guided vs fixed-size vs single-task chunks, in
//!    the simulator at scale (tail imbalance vs master traffic).
//! 3. **Asynchronous overlap** (§V, "maximize asynchrony"): prefetch pipeline
//!    on vs off across communication/computation balances.
//!
//! ```text
//! cargo run --release -p sia-bench --bin ablations
//! ```

use sia_bench::{fmt_pct, FigTable};
use sia_chem::{ccsd_iteration, contraction_demo, Molecule, RDX};
use sia_runtime::scheduler::ChunkPolicy;
use sia_runtime::{Placement, SipConfig};
use sia_sim::{machine::CRAY_XT5, simulate, SimConfig};

fn molecule() -> Molecule {
    Molecule {
        name: "ablation",
        formula: "—",
        electrons: 16,
        n_occ: 8,
        n_ao: 40,
        open_shell: false,
    }
}

fn placement_ablation() {
    let workload = contraction_demo(&molecule(), 8);
    let mut table = FigTable::new(
        "Ablation 1: block placement on the real SIP (4 workers)",
        &["placement", "recv imbalance (max/mean)", "wall time (ms)"],
    );
    for (name, placement) in [
        ("hash (SIP)", Placement::Hash),
        ("round-robin", Placement::RoundRobin),
    ] {
        let cfg = SipConfig::builder()
            .workers(4)
            .io_servers(1)
            .placement(placement)
            .collect_distributed(false)
            .build()
            .unwrap();
        let t0 = std::time::Instant::now();
        match workload.run_real(cfg) {
            Ok(out) => {
                // Workers are ranks 1..=4.
                let recv: Vec<u64> = out.traffic_per_rank[1..=4]
                    .iter()
                    .map(|t| t.received_bytes)
                    .collect();
                let mean = recv.iter().sum::<u64>() as f64 / recv.len() as f64;
                let max = *recv.iter().max().unwrap() as f64;
                table.row(vec![
                    name.into(),
                    format!("{:.2}", max / mean.max(1.0)),
                    format!("{:.0}", t0.elapsed().as_millis()),
                ]);
            }
            Err(e) => table.row(vec![name.into(), format!("failed: {e}"), String::new()]),
        }
    }
    table.print();
    println!(
        "the paper's point holds: placement choice barely moves the result\n\
         because overlap hides most traffic — and swapping the strategy needed\n\
         zero SIAL changes.\n"
    );
    let _ = table.write_tsv("ablation_placement");
}

fn scheduling_ablation() {
    let trace = ccsd_iteration(&RDX, 15, 1).trace(1000, 1).expect("trace");
    let procs = 8000u64;
    let mut table = FigTable::new(
        "Ablation 2: chunk scheduling at 8000 simulated XT5 cores (RDX CCSD)",
        &["policy", "time (s)", "efficiency vs guided", "wait"],
    );
    let mut guided_time = None;
    for (name, policy) in [
        ("guided ÷2 (SIP)", ChunkPolicy::Guided { factor: 2 }),
        ("fixed 64-task chunks", ChunkPolicy::Fixed { size: 64 }),
        ("fixed 8-task chunks", ChunkPolicy::Fixed { size: 8 }),
        ("single-task chunks", ChunkPolicy::Fixed { size: 1 }),
    ] {
        let mut cfg = SimConfig::sip(CRAY_XT5, procs);
        cfg.chunk_policy = Some(policy);
        let r = simulate(&trace, &cfg);
        let guided = *guided_time.get_or_insert(r.total_time);
        table.row(vec![
            name.into(),
            format!("{:.1}", r.total_time),
            fmt_pct(guided / r.total_time),
            fmt_pct(r.wait_fraction),
        ]);
    }
    table.print();
    println!(
        "guided matches the best fixed size without knowing it in advance;\n\
         oversized chunks pay tail imbalance, single-task chunks pay master\n\
         round trips.\n"
    );
    let _ = table.write_tsv("ablation_scheduling");
}

fn overlap_ablation() {
    // Sweep the communication:computation balance; report the overlap win.
    let mut table = FigTable::new(
        "Ablation 3: prefetch overlap across comm/comp balances (sim, 512 cores)",
        &[
            "flops per fetched byte",
            "no overlap (s)",
            "overlap (s)",
            "speedup",
        ],
    );
    for flops_per_byte in [1u64, 8, 64, 512] {
        let bytes_per_iter = 1_000_000u64;
        let trace = sia_runtime::trace::Trace {
            phases: vec![sia_runtime::trace::TracePhase::Pardo {
                pc: 0,
                iterations: 20_000,
                per_iter: sia_runtime::trace::IterProfile {
                    gets: 2,
                    get_bytes: bytes_per_iter,
                    flops: flops_per_byte * bytes_per_iter,
                    ..Default::default()
                },
            }],
        };
        let mut off = SimConfig::sip(CRAY_XT5, 512);
        off.prefetch_depth = 0;
        let mut on = off;
        on.prefetch_depth = 2;
        let t_off = simulate(&trace, &off).total_time;
        let t_on = simulate(&trace, &on).total_time;
        table.row(vec![
            flops_per_byte.to_string(),
            format!("{t_off:.2}"),
            format!("{t_on:.2}"),
            format!("{:.2}×", t_off / t_on),
        ]);
    }
    table.print();
    println!(
        "overlap buys the most when communication and computation are\n\
         comparable — the regime the paper's block granularity is chosen for."
    );
    let _ = table.write_tsv("ablation_overlap");
}

fn main() {
    placement_ablation();
    scheduling_ablation();
    overlap_ablation();
}
