//! Figure 5 — RHF CCSD(T) on RDX, Cray XT5 (jaguar), 10,000–80,000
//! processors; efficiency relative to 10,000.
//!
//! The paper reports "good strong scaling up to around 30,000 processors",
//! with efficiency tailing off toward 80,000 as the triples task pool thins
//! out per worker.
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig5
//! ```

use sia_bench::{fmt_pct, fmt_time, FigTable};
use sia_chem::{ccsd_t_triples, RDX};
use sia_sim::{machine::CRAY_XT5, simulate, SimConfig};

fn main() {
    let seg = 8; // fine segmentation: (T) runs on small blocks for task count
    let workload = ccsd_t_triples(&RDX, seg);
    let trace = workload.trace(10_000, 1).expect("RDX CCSD(T) trace");

    let procs: &[u64] = if sia_bench::quick() {
        &[10_000, 80_000]
    } else {
        &[10_000, 20_000, 30_000, 40_000, 60_000, 80_000]
    };

    let mut table = FigTable::new(
        "Figure 5: RDX RHF CCSD(T), Cray XT5 (jaguar)",
        &["procs", "time", "efficiency vs 10000", "% wait"],
    );
    let mut reference = None;
    for &p in procs {
        let r = simulate(&trace, &SimConfig::sip(CRAY_XT5, p));
        let reference = reference.get_or_insert_with(|| r.clone());
        table.row(vec![
            p.to_string(),
            fmt_time(r.total_time),
            fmt_pct(r.efficiency_vs(reference, procs[0], p)),
            fmt_pct(r.wait_fraction),
        ]);
    }
    table.print();
    match table.write_tsv("fig5") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
