//! Contraction hot-path baseline: GEMM throughput (seed kernel replica vs
//! the MR×NR kernel at 1/2/4 threads), block-contraction GFLOP/s across
//! segment sizes, and the transpose-folding ablation. Writes the numbers to
//! `BENCH_contraction.json` at the repo root so future PRs can track the
//! perf trajectory.
//!
//! ```text
//! cargo run --release -p sia-bench --bin bench_contraction
//! ```

use sia_blocks::{
    contract_into_ctx, dgemm_with, Block, BlockPool, ContractCtx, ContractionPlan, GemmConfig,
    GemmLayout, PoolConfig, Shape,
};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// The pre-overhaul GEMM (MC=64/KC=128, scalar 1×NR inner loop, no
/// transpose support), kept verbatim as the seed baseline.
fn seed_dgemm(m: usize, n: usize, k: usize, alpha: f64, a: &[f64], b: &[f64], c: &mut [f64]) {
    const MC: usize = 64;
    const KC: usize = 128;
    const NR: usize = 8;
    c.fill(0.0);
    let mut apack = vec![0.0f64; MC.min(m) * KC.min(k)];
    let mut bpack = vec![0.0f64; KC.min(k) * n];
    let mut p0 = 0;
    while p0 < k {
        let pb = KC.min(k - p0);
        for p in 0..pb {
            for j in 0..n {
                bpack[p * n + j] = b[(p0 + p) * n + j];
            }
        }
        let mut i0 = 0;
        while i0 < m {
            let ib = MC.min(m - i0);
            for i in 0..ib {
                for p in 0..pb {
                    apack[i * pb + p] = a[(i0 + i) * k + (p0 + p)];
                }
            }
            for i in 0..ib {
                let arow = &apack[i * pb..(i + 1) * pb];
                let crow = &mut c[(i0 + i) * n..(i0 + i + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let jb = NR.min(n - j0);
                    let mut acc = [0.0f64; NR];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &bpack[p * n + j0..p * n + j0 + jb];
                        for (t, &bv) in brow.iter().enumerate() {
                            acc[t] += av * bv;
                        }
                    }
                    for t in 0..jb {
                        crow[j0 + t] += alpha * acc[t];
                    }
                    j0 += jb;
                }
            }
            i0 += ib;
        }
        p0 += pb;
    }
}

/// Mean seconds per call after one warm-up, over enough reps for ~1s total.
fn time(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((1.0 / once.max(1e-9)) as usize).clamp(1, 50);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn ramp(shape: Shape) -> Block {
    let mut v = 0.3;
    Block::from_fn(shape, |_| {
        v = (v * 1.3 + 0.7) % 5.0 - 2.0;
        v
    })
}

fn main() {
    let mut json = String::from("{\n");
    let gf = |flops: f64, secs: f64| flops / secs / 1e9;

    // ---- raw GEMM at 512^3: seed kernel vs MR×NR at 1/2/4 threads ----------
    let n = 512usize;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
    let b = a.clone();
    let mut c = vec![0.0f64; n * n];
    let flops = 2.0 * (n as f64).powi(3);

    let seed = gf(flops, time(|| seed_dgemm(n, n, n, 1.0, &a, &b, &mut c)));
    println!("gemm 512^3 seed kernel   : {seed:.2} GFLOP/s");
    json.push_str(&format!("  \"gemm_512_seed_gflops\": {seed:.3},\n"));

    let mut threaded = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = GemmConfig { threads };
        let g = gf(
            flops,
            time(|| {
                dgemm_with(
                    cfg,
                    n,
                    n,
                    n,
                    1.0,
                    &a,
                    GemmLayout::NoTrans,
                    &b,
                    GemmLayout::NoTrans,
                    0.0,
                    &mut c,
                )
            }),
        );
        println!("gemm 512^3 MRxNR t={threads}    : {g:.2} GFLOP/s");
        json.push_str(&format!("  \"gemm_512_t{threads}_gflops\": {g:.3},\n"));
        threaded.push(g);
    }
    println!(
        "speedup vs seed (t=1): {:.2}x; t=2 vs t=1: {:.2}x (on {} host cpus)",
        threaded[0] / seed,
        threaded[1] / threaded[0],
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    // ---- block contraction across segment sizes ----------------------------
    // The paper's R(M,N,I,J) = V(M,N,L,S)·T(L,S,I,J) on one block pair.
    let plan = ContractionPlan::infer(&[0, 1, 2, 3], &[0, 1, 4, 5], &[4, 5, 2, 3]).unwrap();
    let pool = BlockPool::new(PoolConfig {
        max_bytes: 512 << 20,
    });
    for seg in [8usize, 16, 32] {
        let va = ramp(Shape::cube(4, seg));
        let vb = ramp(Shape::cube(4, seg));
        let mut out = Block::zeros(plan.output_shape(va.shape(), vb.shape()));
        let mut ctx = ContractCtx::with_pool(pool.clone());
        let g = gf(
            plan.flops(va.shape(), vb.shape()) as f64,
            time(|| contract_into_ctx(&mut ctx, &plan, &va, &vb, 0.0, &mut out)),
        );
        println!("contraction rank4 seg={seg:<2} : {g:.2} GFLOP/s");
        json.push_str(&format!("  \"contract_seg{seg}_gflops\": {g:.3},\n"));
    }

    // ---- transpose-folding ablation ----------------------------------------
    // Fold-friendly rank-2 shape C(M,N) = A(L,M)·B(L,N) at 256^3.
    let m = 256usize;
    let plan2 = ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap();
    let fa = ramp(Shape::new(&[m, m]));
    let fb = ramp(Shape::new(&[m, m]));
    let mut out = Block::zeros(plan2.output_shape(fa.shape(), fb.shape()));
    for fold in [true, false] {
        let mut ctx = ContractCtx::with_pool(pool.clone()).fold_transposes(fold);
        let secs = time(|| contract_into_ctx(&mut ctx, &plan2, &fa, &fb, 0.0, &mut out));
        let name = if fold { "fold" } else { "no_fold" };
        println!("contract 256^2 {name:<8}: {:.3} ms", secs * 1e3);
        json.push_str(&format!(
            "  \"contract_256_{name}_ms\": {:.4},\n",
            secs * 1e3
        ));
    }

    json.push_str(&format!(
        "  \"host_cpus\": {},\n  \"note\": \"thread scaling is bounded by host cpu count\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_contraction.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
