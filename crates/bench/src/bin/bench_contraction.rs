//! Contraction hot-path baseline: GEMM throughput (seed kernel replica vs
//! the MR×NR kernel at 1/2/4 threads), block-contraction GFLOP/s across
//! segment sizes, the transpose-folding ablation, and the permute-on-pack
//! grid (shape × transpose class × threads, folded vs materialized). Writes
//! the numbers to `BENCH_contraction.json` at the repo root so future PRs
//! can track the perf trajectory.
//!
//! ```text
//! cargo run --release -p sia-bench --bin bench_contraction [-- --quick]
//! ```
//!
//! `--quick` runs a seconds-long smoke check instead: a chem-shaped
//! contraction with an interleaved operand permutation must take the
//! folded pack path (pack-stats counter `permutes_folded > 0`) and agree
//! bitwise with the materialize-then-GEMM ablation. Exits nonzero on
//! failure; used by CI.

use sia_blocks::{
    active_microkernel, contract_into_ctx, dgemm_with, Block, BlockPool, ContractCtx,
    ContractionPlan, GemmConfig, GemmLayout, PoolConfig, Shape,
};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// The pre-overhaul GEMM (MC=64/KC=128, scalar 1×NR inner loop, no
/// transpose support), kept verbatim as the seed baseline.
fn seed_dgemm(m: usize, n: usize, k: usize, alpha: f64, a: &[f64], b: &[f64], c: &mut [f64]) {
    const MC: usize = 64;
    const KC: usize = 128;
    const NR: usize = 8;
    c.fill(0.0);
    let mut apack = vec![0.0f64; MC.min(m) * KC.min(k)];
    let mut bpack = vec![0.0f64; KC.min(k) * n];
    let mut p0 = 0;
    while p0 < k {
        let pb = KC.min(k - p0);
        for p in 0..pb {
            for j in 0..n {
                bpack[p * n + j] = b[(p0 + p) * n + j];
            }
        }
        let mut i0 = 0;
        while i0 < m {
            let ib = MC.min(m - i0);
            for i in 0..ib {
                for p in 0..pb {
                    apack[i * pb + p] = a[(i0 + i) * k + (p0 + p)];
                }
            }
            for i in 0..ib {
                let arow = &apack[i * pb..(i + 1) * pb];
                let crow = &mut c[(i0 + i) * n..(i0 + i + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let jb = NR.min(n - j0);
                    let mut acc = [0.0f64; NR];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &bpack[p * n + j0..p * n + j0 + jb];
                        for (t, &bv) in brow.iter().enumerate() {
                            acc[t] += av * bv;
                        }
                    }
                    for t in 0..jb {
                        crow[j0 + t] += alpha * acc[t];
                    }
                    j0 += jb;
                }
            }
            i0 += ib;
        }
        p0 += pb;
    }
}

/// Mean seconds per call after one warm-up, over enough reps for ~0.3s
/// total (noise is handled by best-of-rounds at the call sites).
fn time(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((0.3 / once.max(1e-9)) as usize).clamp(1, 50);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn ramp(shape: Shape) -> Block {
    let mut v = 0.3;
    Block::from_fn(shape, |_| {
        v = (v * 1.3 + 0.7) % 5.0 - 2.0;
        v
    })
}

/// The permute-on-pack grid: every transpose class of `C = A·B` plus the
/// chem-style rank-4 shape whose operand permutation interleaves free and
/// contracted axes (classified `Permute`, the case the packers fold).
///
/// Returns `(name, plan, a, b)` rows. `n` sizes the rank-2 shapes (n³
/// FLOP-shaped); `(m, ls, ij)` sizes the chem shape `C(M,I,J) =
/// A(M,L,S)·B(L,I,S,J)` with `dim(L)=dim(S)=ls`, `dim(I)=dim(J)=ij`.
fn grid_shapes(
    n: usize,
    m: usize,
    ls: usize,
    ij: usize,
) -> Vec<(String, ContractionPlan, Block, Block)> {
    let sq = Shape::new(&[n, n]);
    let mut rows = Vec::new();
    // Labels below: M=0, N=1, L=2 (rank 2); M=0, I=1, J=2, L=3, S=4 (chem).
    let nn = ContractionPlan::infer(&[0, 1], &[0, 2], &[2, 1]).unwrap(); // A(M,L)·B(L,N)
    let tn = ContractionPlan::infer(&[0, 1], &[2, 0], &[2, 1]).unwrap(); // A(L,M)·B(L,N)
    let nt = ContractionPlan::infer(&[0, 1], &[0, 2], &[1, 2]).unwrap(); // A(M,L)·B(N,L)
    let tt = ContractionPlan::infer(&[0, 1], &[2, 0], &[1, 2]).unwrap(); // A(L,M)·B(N,L)
    for (name, plan) in [("nn", nn), ("tn", tn), ("nt", nt), ("tt", tt)] {
        rows.push((name.to_string(), plan, ramp(sq), ramp(sq)));
    }
    let chem = ContractionPlan::infer(&[0, 1, 2], &[0, 3, 4], &[3, 1, 4, 2]).unwrap();
    rows.push((
        "chem".to_string(),
        chem,
        ramp(Shape::new(&[m, ls, ls])),
        ramp(Shape::new(&[ls, ij, ls, ij])),
    ));
    rows
}

/// CI smoke: the chem workload must fold its interleaved permutation into
/// the pack (zero permute scratch) and agree bitwise with the materialized
/// ablation. Exits nonzero on failure.
fn quick_smoke() {
    let (_, plan, a, b) = grid_shapes(32, 32, 8, 8).pop().unwrap();
    let pool = BlockPool::new(PoolConfig {
        max_bytes: 64 << 20,
    });
    let mut out_fold = Block::zeros(plan.output_shape(a.shape(), b.shape()));
    let mut out_mat = out_fold.clone();

    let mut ctx = ContractCtx::with_pool(pool.clone());
    contract_into_ctx(&mut ctx, &plan, &a, &b, 0.0, &mut out_fold);
    let pack = ctx.take_pack_stats();
    let stats = ctx.take_stats();

    let mut ctx_mat = ContractCtx::with_pool(pool).fold_transposes(false);
    contract_into_ctx(&mut ctx_mat, &plan, &a, &b, 0.0, &mut out_mat);

    println!(
        "quick: microkernel={} permutes_folded={} permutes_performed={} packed_bytes={}",
        active_microkernel(),
        pack.permutes_folded,
        stats.permutes_performed,
        pack.packed_bytes
    );
    if pack.permutes_folded == 0 {
        eprintln!("FAIL: chem workload did not fold its operand permutation into the pack");
        std::process::exit(1);
    }
    if stats.permutes_performed != 0 {
        eprintln!("FAIL: folded run still materialized a permute");
        std::process::exit(1);
    }
    if out_fold.data() != out_mat.data() {
        eprintln!("FAIL: folded and materialized contractions disagree");
        std::process::exit(1);
    }
    println!("quick smoke passed");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_smoke();
        return;
    }
    let mut json = String::from("{\n");
    let gf = |flops: f64, secs: f64| flops / secs / 1e9;
    json.push_str(&format!(
        "  \"microkernel\": \"{}\",\n",
        active_microkernel()
    ));
    println!("microkernel: {}", active_microkernel());

    // ---- raw GEMM at 512^3: seed kernel vs MR×NR at 1/2/4 threads ----------
    let n = 512usize;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
    let b = a.clone();
    let mut c = vec![0.0f64; n * n];
    let flops = 2.0 * (n as f64).powi(3);

    let seed = gf(flops, time(|| seed_dgemm(n, n, n, 1.0, &a, &b, &mut c)));
    println!("gemm 512^3 seed kernel   : {seed:.2} GFLOP/s");
    json.push_str(&format!("  \"gemm_512_seed_gflops\": {seed:.3},\n"));

    let mut threaded = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = GemmConfig::with_threads(threads);
        let g = gf(
            flops,
            time(|| {
                dgemm_with(
                    cfg,
                    n,
                    n,
                    n,
                    1.0,
                    &a,
                    GemmLayout::NoTrans,
                    &b,
                    GemmLayout::NoTrans,
                    0.0,
                    &mut c,
                )
            }),
        );
        println!("gemm 512^3 MRxNR t={threads}    : {g:.2} GFLOP/s");
        json.push_str(&format!("  \"gemm_512_t{threads}_gflops\": {g:.3},\n"));
        threaded.push(g);
    }
    println!(
        "speedup vs seed (t=1): {:.2}x; t=2 vs t=1: {:.2}x (on {} host cpus)",
        threaded[0] / seed,
        threaded[1] / threaded[0],
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    // ---- block contraction across segment sizes ----------------------------
    // The paper's R(M,N,I,J) = V(M,N,L,S)·T(L,S,I,J) on one block pair.
    let plan = ContractionPlan::infer(&[0, 1, 2, 3], &[0, 1, 4, 5], &[4, 5, 2, 3]).unwrap();
    let pool = BlockPool::new(PoolConfig {
        max_bytes: 512 << 20,
    });
    for seg in [8usize, 16, 32] {
        let va = ramp(Shape::cube(4, seg));
        let vb = ramp(Shape::cube(4, seg));
        let mut out = Block::zeros(plan.output_shape(va.shape(), vb.shape()));
        let mut ctx = ContractCtx::with_pool(pool.clone());
        let g = gf(
            plan.flops(va.shape(), vb.shape()) as f64,
            time(|| contract_into_ctx(&mut ctx, &plan, &va, &vb, 0.0, &mut out)),
        );
        println!("contraction rank4 seg={seg:<2} : {g:.2} GFLOP/s");
        json.push_str(&format!("  \"contract_seg{seg}_gflops\": {g:.3},\n"));
    }

    // ---- transpose-folding ablation ----------------------------------------
    // Fold-friendly rank-2 shape C(M,N) = A(L,M)·B(L,N) at 256^3.
    let m = 256usize;
    let plan2 = ContractionPlan::infer(&[1, 2], &[0, 1], &[0, 2]).unwrap();
    let fa = ramp(Shape::new(&[m, m]));
    let fb = ramp(Shape::new(&[m, m]));
    let mut out = Block::zeros(plan2.output_shape(fa.shape(), fb.shape()));
    for fold in [true, false] {
        let mut ctx = ContractCtx::with_pool(pool.clone()).fold_transposes(fold);
        let secs = time(|| contract_into_ctx(&mut ctx, &plan2, &fa, &fb, 0.0, &mut out));
        let name = if fold { "fold" } else { "no_fold" };
        println!("contract 256^2 {name:<8}: {:.3} ms", secs * 1e3);
        json.push_str(&format!(
            "  \"contract_256_{name}_ms\": {:.4},\n",
            secs * 1e3
        ));
    }

    // ---- permute-on-pack grid: shape × transpose class × threads -----------
    // Folded (read operands through views, permutation folded into the
    // pack) vs materialized (permute-then-GEMM ablation). Both paths are
    // timed best-of-rounds: the folded path does strictly no more work, so
    // its true minimum is ≤ the ablation's; extra rounds wash out
    // scheduler noise on small hosts.
    for (name, plan, ga, gb) in grid_shapes(512, 256, 24, 16) {
        let gflops = plan.flops(ga.shape(), gb.shape()) as f64;
        for threads in [1usize, 2, 4] {
            let cfg = GemmConfig::with_threads(threads);
            let mut out = Block::zeros(plan.output_shape(ga.shape(), gb.shape()));
            let mut fold_secs = f64::INFINITY;
            let mut mat_secs = f64::INFINITY;
            for _round in 0..4 {
                let mut ctx_m = ContractCtx::with_pool(pool.clone())
                    .gemm(cfg)
                    .fold_transposes(false);
                mat_secs = mat_secs.min(time(|| {
                    contract_into_ctx(&mut ctx_m, &plan, &ga, &gb, 0.0, &mut out)
                }));
                let mut ctx_f = ContractCtx::with_pool(pool.clone()).gemm(cfg);
                fold_secs = fold_secs.min(time(|| {
                    contract_into_ctx(&mut ctx_f, &plan, &ga, &gb, 0.0, &mut out)
                }));
                if fold_secs <= mat_secs {
                    break;
                }
            }
            let (gfold, gmat) = (gf(gflops, fold_secs), gf(gflops, mat_secs));
            println!(
                "grid {name:<4} t={threads}: fold {gfold:.2} GFLOP/s, materialize {gmat:.2} GFLOP/s ({:+.1}%)",
                (gfold / gmat - 1.0) * 100.0
            );
            json.push_str(&format!(
                "  \"grid_{name}_t{threads}_fold_gflops\": {gfold:.3},\n"
            ));
            json.push_str(&format!(
                "  \"grid_{name}_t{threads}_mat_gflops\": {gmat:.3},\n"
            ));
        }
    }

    json.push_str(&format!(
        "  \"host_cpus\": {},\n  \"note\": \"thread scaling is bounded by host cpu count\"\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_contraction.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
