//! Block-sparse screening baseline: the screened MP2 workload run dense
//! (threshold 0) versus screened (threshold 1e-10), the realized dry-run
//! footprint against both the dense estimate and the measured high-water
//! mark, and the fabric traffic screening saves. Writes the numbers to
//! `BENCH_sparse.json` at the repo root so future PRs can track the
//! screening trajectory.
//!
//! ```text
//! cargo run --release -p sia-bench --bin bench_sparse
//! ```

use sia_chem::molecules::Molecule;
use sia_chem::workloads::{mp2_energy_screened, screened_vd_density};
use sia_runtime::{RunOutput, Sip, SipConfig};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Big enough that screening has a tail of negligible blocks to drop, small
/// enough that the dense baseline still runs in seconds.
const MOLECULE: Molecule = Molecule {
    name: "bench-sparse",
    formula: "He3",
    electrons: 6,
    n_occ: 6,
    n_ao: 18,
    open_shell: false,
};
const SEG: usize = 2;
const THRESHOLD: f64 = 1e-10;

/// Cache sized to what this workload actually fills, so the dry-run
/// estimate (which charges the cache at capacity) and the measured high
/// water compare like-for-like.
const CACHE_BLOCKS: usize = 2;

fn config(threshold: f64) -> SipConfig {
    SipConfig::builder()
        .workers(4)
        .io_servers(0)
        .cache_blocks(CACHE_BLOCKS)
        .collect_distributed(true)
        .sparsity_threshold(threshold)
        .build()
        .unwrap()
}

/// Runs the workload `reps` times after a warm-up; returns the median
/// seconds and the last run's output.
fn timed_runs(threshold: f64, reps: usize) -> (f64, RunOutput) {
    let w = mp2_energy_screened(&MOLECULE, SEG);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for rep in 0..=reps {
        let t0 = Instant::now();
        let out = w.run_real(config(threshold)).unwrap();
        if rep > 0 {
            times.push(t0.elapsed().as_secs_f64());
        }
        last = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

fn main() {
    let reps = 3;
    let mut json = String::from("{\n");

    // ---- dense vs screened: wall clock, energy, resident blocks ------------
    let (dense_s, dense) = timed_runs(0.0, reps);
    let (sparse_s, sparse) = timed_runs(THRESHOLD, reps);
    let (e_d, e_s) = (dense.scalars["emp2"], sparse.scalars["emp2"]);
    let total = dense.collected["Vd"].len();
    let kept = sparse.collected.get("Vd").map_or(0, |b| b.len());
    let dropped_frac = (total - kept) as f64 / total.max(1) as f64;
    println!(
        "{} MP2 (threshold {THRESHOLD:e}): dense {:.1} ms, screened {:.1} ms ({:.2}x)",
        MOLECULE.name,
        dense_s * 1e3,
        sparse_s * 1e3,
        dense_s / sparse_s.max(1e-12),
    );
    println!(
        "energy dense {e_d:.12} vs screened {e_s:.12} (|Δ| = {:.2e}); \
         {kept}/{total} Vd blocks resident ({:.1}% dropped)",
        (e_d - e_s).abs(),
        dropped_frac * 100.0,
    );
    json.push_str(&format!("  \"dense_ms\": {:.3},\n", dense_s * 1e3));
    json.push_str(&format!("  \"screened_ms\": {:.3},\n", sparse_s * 1e3));
    json.push_str(&format!(
        "  \"energy_abs_delta\": {:.3e},\n",
        (e_d - e_s).abs()
    ));
    json.push_str(&format!("  \"vd_blocks_total\": {total},\n"));
    json.push_str(&format!("  \"vd_blocks_kept\": {kept},\n"));
    json.push_str(&format!("  \"vd_dropped_frac\": {dropped_frac:.4},\n"));

    // ---- screening counters -------------------------------------------------
    let sp = &sparse.profile.metrics.sparse;
    println!(
        "screening: {} contractions skipped, {} KiB never shipped, {} flops avoided",
        sp.blocks_skipped,
        sp.bytes_not_shipped / 1024,
        sp.flops_avoided,
    );
    json.push_str(&format!("  \"blocks_skipped\": {},\n", sp.blocks_skipped));
    json.push_str(&format!(
        "  \"bytes_not_shipped\": {},\n",
        sp.bytes_not_shipped
    ));
    json.push_str(&format!("  \"flops_avoided\": {},\n", sp.flops_avoided));

    // ---- realized dry-run estimate vs dense and vs measurement -------------
    let w = mp2_energy_screened(&MOLECULE, SEG);
    let density = screened_vd_density(&MOLECULE, SEG, THRESHOLD);
    let mut cfg = SipConfig::builder()
        .workers(4)
        .io_servers(0)
        .cache_blocks(CACHE_BLOCKS)
        .sparsity_threshold(THRESHOLD)
        .sparsity_density("Vd", density)
        .build()
        .unwrap();
    cfg.segments = w.segments();
    let est = Sip::new(cfg)
        .dry_run(w.compile().unwrap(), &w.bindings)
        .unwrap();
    let realized_frac = est.per_worker_bytes as f64 / est.dense_per_worker_bytes.max(1) as f64;
    let high_water = sparse.profile.metrics.memory.high_water_bytes;
    let est_vs_measured = est.per_worker_bytes as f64 / high_water.max(1) as f64;
    println!(
        "dry run: realized {} KiB/worker = {:.1}% of dense {} KiB; \
         measured high water {} KiB ({:.2}x of estimate)",
        est.per_worker_bytes / 1024,
        realized_frac * 100.0,
        est.dense_per_worker_bytes / 1024,
        high_water / 1024,
        est_vs_measured,
    );
    json.push_str(&format!("  \"vd_model_density\": {density:.4},\n"));
    json.push_str(&format!(
        "  \"realized_per_worker_bytes\": {},\n",
        est.per_worker_bytes
    ));
    json.push_str(&format!(
        "  \"dense_per_worker_bytes\": {},\n",
        est.dense_per_worker_bytes
    ));
    json.push_str(&format!("  \"realized_frac\": {realized_frac:.4},\n"));
    json.push_str(&format!(
        "  \"high_water_bytes\": {high_water},\n  \"estimate_vs_measured\": {est_vs_measured:.4}\n}}\n"
    ));

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sparse.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
