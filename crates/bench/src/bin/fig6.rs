//! Figure 6 — strong scaling of the Fock matrix build for the diamond
//! nanocrystal (C42H42N, aug-cc-pVTZ, 2944 basis functions), Cray XT5.
//!
//! The paper observes strong scaling up to 72,000 cores, *longer* execution
//! at 84,000/96,000/108,000 cores — and that retuning the segment size at
//! 84,000 cores dropped the time from 83.2 s to 57.5 s, beating the 72,000-
//! core time (79.4 s): "how easily ACES III can be tuned".
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig6
//! ```

use sia_bench::{fmt_pct, FigTable};
use sia_chem::{fock_build, DIAMOND_NC};
use sia_sim::{machine::CRAY_XT5, simulate, SimConfig};

fn run(seg: usize, procs: u64) -> f64 {
    let trace = fock_build(&DIAMOND_NC, seg)
        .trace(1024, 1)
        .expect("fock trace");
    simulate(&trace, &SimConfig::sip(CRAY_XT5, procs)).total_time
}

fn main() {
    let default_seg = 32;
    let procs: &[u64] = if sia_bench::quick() {
        &[12_000, 72_000, 108_000]
    } else {
        &[
            12_000, 24_000, 36_000, 48_000, 60_000, 72_000, 84_000, 96_000, 108_000,
        ]
    };

    let trace = fock_build(&DIAMOND_NC, default_seg)
        .trace(1024, 1)
        .expect("fock trace");
    let mut table = FigTable::new(
        "Figure 6: diamond nanocrystal (2944 bf) Fock build, Cray XT5",
        &["cores", "time (s)", "efficiency vs 12000"],
    );
    let mut reference = None;
    let mut times = Vec::new();
    for &p in procs {
        let r = simulate(&trace, &SimConfig::sip(CRAY_XT5, p));
        let reference = reference.get_or_insert_with(|| r.clone());
        table.row(vec![
            p.to_string(),
            format!("{:.1}", r.total_time),
            fmt_pct(r.efficiency_vs(reference, procs[0], p)),
        ]);
        times.push((p, r.total_time));
    }
    table.print();

    // Non-monotonicity check: the best core count should not be the largest.
    if let Some(&(best_p, _)) = times.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()) {
        let (last_p, _) = *times.last().unwrap();
        println!(
            "fastest at {best_p} cores{}",
            if best_p < last_p {
                " — more cores run LONGER beyond the knee, as in the paper"
            } else {
                ""
            }
        );
    }

    // Segment-size retune at 84,000 cores (skipped in quick mode).
    if !sia_bench::quick() {
        let mut tune = FigTable::new(
            "Figure 6 inset: segment-size tuning at 84,000 cores",
            &["segment size", "time (s)"],
        );
        let mut best = (default_seg, f64::INFINITY);
        for seg in [16, 24, 32, 48, 64] {
            let t = run(seg, 84_000);
            if t < best.1 {
                best = (seg, t);
            }
            tune.row(vec![seg.to_string(), format!("{t:.1}")]);
        }
        tune.print();
        let t72_default = times
            .iter()
            .find(|(p, _)| *p == 72_000)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        println!(
            "retuned 84k-core time {:.1} s (seg {}) vs default-seg 72k-core time {:.1} s — {}",
            best.1,
            best.0,
            t72_default,
            if best.1 < t72_default {
                "retuning recovers the regression, as in the paper"
            } else {
                "retuning did not beat 72k here"
            }
        );
        let _ = tune.write_tsv("fig6_tuning");
    }
    match table.write_tsv("fig6") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
