//! Figure 3 — RHF CCSD on the protonated 21-water cluster, Cray XT4
//! (kraken) up to 2048 processors and Cray XT5 (pingo) up to 4096.
//!
//! The paper plots time per CCSD iteration for both machines; the XT5 curve
//! sits below the XT4 curve and both keep dropping through the measured
//! range.
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig3
//! ```

use sia_bench::{fmt_time, FigTable};
use sia_chem::{ccsd_iteration, WATER_21};
use sia_sim::{
    machine::{CRAY_XT4, CRAY_XT5},
    simulate, SimConfig,
};

fn main() {
    let seg = 41;
    let workload = ccsd_iteration(&WATER_21, seg, 1);
    let trace = workload.trace(512, 1).expect("water-cluster CCSD trace");

    let xt4_procs: &[u64] = if sia_bench::quick() {
        &[512, 2048]
    } else {
        &[512, 1024, 2048]
    };
    let xt5_procs: &[u64] = if sia_bench::quick() {
        &[512, 4096]
    } else {
        &[512, 1024, 2048, 4096]
    };

    let mut table = FigTable::new(
        "Figure 3: (H2O)21H+ RHF CCSD, Cray XT4 vs Cray XT5",
        &["machine", "procs", "time/iter"],
    );
    for &p in xt4_procs {
        let r = simulate(&trace, &SimConfig::sip(CRAY_XT4, p));
        table.row(vec!["XT4".into(), p.to_string(), fmt_time(r.total_time)]);
    }
    for &p in xt5_procs {
        let r = simulate(&trace, &SimConfig::sip(CRAY_XT5, p));
        table.row(vec!["XT5".into(), p.to_string(), fmt_time(r.total_time)]);
    }
    table.print();
    match table.write_tsv("fig3") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
