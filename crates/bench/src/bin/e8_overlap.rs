//! E8 — the overlap claim, measured on the *real* runtime.
//!
//! §VI-B/C: well-tuned SIAL programs hide most communication behind
//! computation; the profiler's wait-time metric makes this visible without
//! external tools. We run the paper's contraction on the real SIP (threads
//! as ranks) with prefetch on and off and report the measured wait
//! fractions and cache behaviour from the built-in profile — the same
//! numbers Figure 2's bottom line plots.
//!
//! ```text
//! cargo run --release -p sia-bench --bin e8_overlap
//! ```

use sia_bench::{fmt_pct, FigTable};
use sia_chem::{contraction_demo, Molecule};
use sia_runtime::SipConfig;

fn main() {
    let m = Molecule {
        name: "synthetic",
        formula: "—",
        electrons: 16,
        n_occ: 8,
        n_ao: 40,
        open_shell: false,
    };
    let seg = 8;
    let workload = contraction_demo(&m, seg);

    let mut table = FigTable::new(
        "E8: measured overlap on the real SIP (threads as ranks)",
        &[
            "prefetch depth",
            "wait fraction",
            "cache hits",
            "in-flight hits",
            "refetches",
            "messages",
        ],
    );
    for depth in [0usize, 2, 4] {
        let cfg = SipConfig::builder()
            .workers(4)
            .io_servers(1)
            .prefetch_depth(depth)
            .cache_blocks(128)
            .collect_distributed(false)
            .build()
            .unwrap();
        match workload.run_real(cfg) {
            Ok(out) => {
                table.row(vec![
                    depth.to_string(),
                    fmt_pct(out.profile.wait_fraction()),
                    out.profile.metrics.cache.hits.to_string(),
                    out.profile.metrics.cache.in_flight_hits.to_string(),
                    out.profile.metrics.cache.refetches.to_string(),
                    out.traffic.messages.to_string(),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    depth.to_string(),
                    format!("failed: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    table.print();
    println!(
        "note: ranks are threads sharing one host, so absolute wait fractions\n\
         are not comparable to the paper's 8–13% on a real cluster; the\n\
         direction (prefetch reduces blocking) and the counters are the point."
    );
    match table.write_tsv("e8_overlap") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
