//! Memory-layer baseline: zero-copy share accounting on the put/get hot
//! path, the runtime high-water mark against the dry-run prediction, the
//! cost of enforcing a `memory_budget` ceiling, and a handle-vs-deep-copy
//! micro-benchmark. Writes the numbers to `BENCH_memory.json` at the repo
//! root so future PRs can track the memory trajectory.
//!
//! ```text
//! cargo run --release -p sia-bench --bin bench_memory
//! ```

use sia_blocks::{Block, BlockHandle, Shape};
use sia_bytecode::ConstBindings;
use sia_runtime::{SegmentConfig, Sip, SipConfig};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Put every block of a distributed array, then sweep it back with gets:
/// the serve → fabric → cache-fill → consume chain that the block manager
/// turned zero-copy.
const PUT_GET_SRC: &str = r#"
sial putget
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
temp u(i,j)
pardo i, j
  t(i,j) = i + 10.0 * j
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get X(i,j)
  u(i,j) = X(i,j)
endpardo i, j
endsial
"#;

fn config(workers: usize, cache_blocks: usize, budget: Option<u64>) -> SipConfig {
    let mut b = SipConfig::builder()
        .workers(workers)
        .io_servers(1)
        .segments(SegmentConfig {
            default: 8,
            nsub: 2,
            ..Default::default()
        })
        .cache_blocks(cache_blocks)
        .prefetch_depth(2)
        .collect_distributed(false);
    if let Some(bytes) = budget {
        b = b.memory_budget(bytes);
    }
    b.build().unwrap()
}

fn bindings(n: i64) -> ConstBindings {
    [("n".to_string(), n)].into_iter().collect()
}

/// Median seconds per run over `reps` timed runs after one warm-up.
fn run_secs(cfg: &SipConfig, n: i64, reps: usize) -> f64 {
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();
    let mut times = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t0 = Instant::now();
        Sip::new(cfg.clone())
            .run(program.clone(), &bindings(n))
            .unwrap();
        if rep > 0 {
            times.push(t0.elapsed().as_secs_f64());
        }
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut json = String::from("{\n");
    let n = 12i64;
    let workers = 4usize;
    let program = sial_frontend::compile(PUT_GET_SRC).unwrap();

    // ---- zero-copy accounting on the serve/cache path ----------------------
    let out = Sip::new(config(workers, 16, None))
        .run(program.clone(), &bindings(n))
        .unwrap();
    let m = &out.profile.metrics.memory;
    println!(
        "put/get n={n}: {} clones avoided ({} KiB uncopied), {} deep copies, high water {} KiB/worker",
        m.clones_avoided,
        m.bytes_clone_avoided / 1024,
        m.deep_copies,
        m.high_water_bytes / 1024,
    );
    json.push_str(&format!("  \"clones_avoided\": {},\n", m.clones_avoided));
    json.push_str(&format!(
        "  \"bytes_clone_avoided\": {},\n",
        m.bytes_clone_avoided
    ));
    json.push_str(&format!("  \"deep_copies\": {},\n", m.deep_copies));
    json.push_str(&format!(
        "  \"high_water_bytes\": {},\n",
        m.high_water_bytes
    ));

    // ---- high water vs dry-run prediction ----------------------------------
    let estimate = Sip::new(config(workers, 16, None))
        .dry_run(program.clone(), &bindings(n))
        .unwrap();
    let ratio = m.high_water_bytes as f64 / estimate.per_worker_bytes.max(1) as f64;
    println!(
        "dry run predicted {} KiB/worker; high water is {:.1}% of prediction",
        estimate.per_worker_bytes / 1024,
        ratio * 100.0,
    );
    json.push_str(&format!(
        "  \"dry_run_estimate_bytes\": {},\n",
        estimate.per_worker_bytes
    ));
    json.push_str(&format!("  \"high_water_vs_estimate\": {ratio:.4},\n"));

    // ---- budget-enforcement overhead ---------------------------------------
    // The same workload free-running vs under an enforced ceiling at the
    // dry-run prediction + 10%.
    let reps = 5;
    let free = run_secs(&config(workers, 16, None), n, reps);
    let budget = estimate.per_worker_bytes + estimate.per_worker_bytes / 10;
    let capped = run_secs(&config(workers, 16, Some(budget)), n, reps);
    println!(
        "run free: {:.1} ms, under budget ceiling: {:.1} ms ({:+.1}% overhead)",
        free * 1e3,
        capped * 1e3,
        (capped / free - 1.0) * 100.0,
    );
    json.push_str(&format!("  \"run_free_ms\": {:.3},\n", free * 1e3));
    json.push_str(&format!("  \"run_budgeted_ms\": {:.3},\n", capped * 1e3));

    // ---- eviction pressure under a tight cache -----------------------------
    let out = Sip::new(config(workers, 2, None))
        .run(program.clone(), &bindings(n))
        .unwrap();
    let c = &out.profile.metrics.cache;
    println!(
        "tight cache (2 blocks): {} evictions, {} refetches, {} hits",
        c.evictions, c.refetches, c.hits,
    );
    json.push_str(&format!("  \"tight_cache_evictions\": {},\n", c.evictions));
    json.push_str(&format!("  \"tight_cache_refetches\": {},\n", c.refetches));

    // ---- handle share vs deep copy micro-benchmark -------------------------
    let block = Block::filled(Shape::cube(2, 512), 1.5); // 2 MiB
    let handle = BlockHandle::new(block.clone());
    let iters = 20_000usize;
    let t0 = Instant::now();
    let mut keep = Vec::with_capacity(iters);
    for _ in 0..iters {
        keep.push(handle.clone());
    }
    let share_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    drop(keep);
    let copies = 200usize;
    let t0 = Instant::now();
    for _ in 0..copies {
        std::hint::black_box(block.clone());
    }
    let copy_ns = t0.elapsed().as_secs_f64() * 1e9 / copies as f64;
    println!(
        "2 MiB block: share {share_ns:.0} ns vs deep copy {copy_ns:.0} ns ({:.0}x)",
        copy_ns / share_ns.max(1e-9),
    );
    json.push_str(&format!("  \"share_2mib_ns\": {share_ns:.1},\n"));
    json.push_str(&format!("  \"deep_copy_2mib_ns\": {copy_ns:.1},\n"));

    json.push_str(&format!(
        "  \"host_cpus\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_memory.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
