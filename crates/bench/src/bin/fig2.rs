//! Figure 2 — RHF CCSD on luciferin (C11H8O3S2N2), Sun Opteron cluster with
//! InfiniBand, 32–256 processors.
//!
//! The paper plots three series against processor count: average elapsed
//! time per CCSD iteration, scaling efficiency relative to 32 processors,
//! and the percentage of elapsed time spent waiting for communication
//! (8.4–13.4% in the paper).
//!
//! ```text
//! cargo run --release -p sia-bench --bin fig2
//! ```

use sia_bench::{fmt_pct, fmt_time, FigTable};
use sia_chem::{ccsd_iteration, LUCIFERIN};
use sia_sim::{machine::SUN_OPTERON_IB, simulate, SimConfig};

fn main() {
    let seg = 26;
    let workload = ccsd_iteration(&LUCIFERIN, seg, 1);
    let trace = workload.trace(32, 1).expect("luciferin CCSD trace");

    let procs: &[u64] = if sia_bench::quick() {
        &[32, 256]
    } else {
        &[32, 64, 128, 256]
    };

    let mut table = FigTable::new(
        "Figure 2: Luciferin RHF CCSD, Sun Opteron + InfiniBand",
        &["procs", "time/iter", "efficiency vs 32", "% wait"],
    );
    let mut reference = None;
    for &p in procs {
        let report = simulate(&trace, &SimConfig::sip(SUN_OPTERON_IB, p));
        let reference = reference.get_or_insert_with(|| report.clone());
        table.row(vec![
            p.to_string(),
            fmt_time(report.total_time),
            fmt_pct(report.efficiency_vs(reference, procs[0], p)),
            fmt_pct(report.wait_fraction),
        ]);
    }
    table.print();
    match table.write_tsv("fig2") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
