//! Golden-file tests for multi-error reporting: each `.sial` input under
//! `tests/golden/` has a sibling `.diag` file holding the exact rendered
//! diagnostics. Rerun with `BLESS=1` to regenerate after an intentional
//! change to error wording or recovery behavior.

use std::path::Path;

fn check_golden(stem: &str, min_findings: usize) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let src_path = dir.join(format!("{stem}.sial"));
    let diag_path = dir.join(format!("{stem}.diag"));
    let src = std::fs::read_to_string(&src_path).unwrap();
    let errs = sial_frontend::compile_file(&format!("golden/{stem}.sial"), &src)
        .expect_err("golden input must fail to compile");
    assert!(
        errs.diagnostics.len() >= min_findings,
        "{stem}: expected at least {min_findings} findings after recovery, got {}:\n{errs}",
        errs.diagnostics.len()
    );
    let got: String = errs.diagnostics.iter().map(|d| format!("{d}\n")).collect();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&diag_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&diag_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e} (run with BLESS=1)",
            diag_path.display()
        )
    });
    assert_eq!(
        got, want,
        "{stem}: rendered diagnostics drifted from golden file; rerun with BLESS=1 if intentional"
    );
}

#[test]
fn parser_recovers_and_reports_every_broken_statement() {
    check_golden("parse_recovery", 3);
}

#[test]
fn sema_reports_every_finding_in_one_pass() {
    check_golden("sema_multi", 3);
}
