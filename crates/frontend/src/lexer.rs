//! The SIAL lexer.
//!
//! Error-recovering: lexical problems (stray `!`, unterminated strings,
//! malformed numbers, unexpected bytes) are reported as [`Diagnostic`]s and
//! the scan continues, so one pass surfaces every lexical error and the
//! parser still sees the rest of the token stream.

use crate::token::{Keyword, Spanned, Token};
use sia_bytecode::diag::{Diagnostic, Span};

/// Tokenizes SIAL source, collecting diagnostics instead of failing fast.
/// Consecutive newlines collapse to one [`Token::Newline`]; a trailing `Eof`
/// is always present.
pub fn lex_partial(source: &str) -> (Vec<Spanned>, Vec<Diagnostic>) {
    let mut out: Vec<Spanned> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut line: u32 = 1;
    let bytes = source.as_bytes();
    let mut i = 0;

    let push = |tok: Token, span: Span, line: u32, out: &mut Vec<Spanned>| {
        if tok == Token::Newline {
            match out.last() {
                None
                | Some(Spanned {
                    token: Token::Newline,
                    ..
                }) => return,
                _ => {}
            }
        }
        out.push(Spanned {
            token: tok,
            span,
            line,
        });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i as u32;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                push(Token::Newline, Span::new(start, start + 1), line, &mut out);
                line += 1;
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(Token::LParen, Span::new(start, start + 1), line, &mut out);
                i += 1;
            }
            ')' => {
                push(Token::RParen, Span::new(start, start + 1), line, &mut out);
                i += 1;
            }
            ',' => {
                push(Token::Comma, Span::new(start, start + 1), line, &mut out);
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(
                        Token::PlusAssign,
                        Span::new(start, start + 2),
                        line,
                        &mut out,
                    );
                    i += 2;
                } else {
                    push(Token::Plus, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(
                        Token::MinusAssign,
                        Span::new(start, start + 2),
                        line,
                        &mut out,
                    );
                    i += 2;
                } else {
                    push(Token::Minus, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(
                        Token::StarAssign,
                        Span::new(start, start + 2),
                        line,
                        &mut out,
                    );
                    i += 2;
                } else {
                    push(Token::Star, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '/' => {
                push(Token::Slash, Span::new(start, start + 1), line, &mut out);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::EqEq, Span::new(start, start + 2), line, &mut out);
                    i += 2;
                } else {
                    push(Token::Assign, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::NotEq, Span::new(start, start + 2), line, &mut out);
                    i += 2;
                } else {
                    diags.push(Diagnostic::error(
                        "lex/stray-bang",
                        Span::new(start, start + 1),
                        "stray `!` (did you mean `!=`?)",
                    ));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Le, Span::new(start, start + 2), line, &mut out);
                    i += 2;
                } else {
                    push(Token::Lt, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Ge, Span::new(start, start + 2), line, &mut out);
                    i += 2;
                } else {
                    push(Token::Gt, Span::new(start, start + 1), line, &mut out);
                    i += 1;
                }
            }
            '"' => {
                let body = i + 1;
                let mut j = body;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    diags.push(Diagnostic::error(
                        "lex/unterminated-string",
                        Span::new(start, j as u32),
                        "unterminated string literal",
                    ));
                    // Recover at the newline/EOF so the rest still lexes.
                    i = j;
                    continue;
                }
                match std::str::from_utf8(&bytes[body..j]) {
                    Ok(s) => push(
                        Token::Str(s.to_string()),
                        Span::new(start, j as u32 + 1),
                        line,
                        &mut out,
                    ),
                    Err(_) => diags.push(Diagnostic::error(
                        "lex/bad-utf8",
                        Span::new(start, j as u32 + 1),
                        "invalid UTF-8 in string literal",
                    )),
                }
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let num_start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (b == 'e' || b == 'E') && !seen_exp && j > num_start {
                        seen_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[num_start..j]).unwrap();
                match text.parse::<f64>() {
                    Ok(n) => push(Token::Number(n), Span::new(start, j as u32), line, &mut out),
                    Err(_) => diags.push(Diagnostic::error(
                        "lex/bad-number",
                        Span::new(start, j as u32),
                        format!("bad number `{text}`"),
                    )),
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[i..j]).unwrap();
                let lower = text.to_ascii_lowercase();
                let span = Span::new(start, j as u32);
                match Keyword::from_str_lower(&lower) {
                    Some(kw) => push(Token::Kw(kw), span, line, &mut out),
                    None => push(Token::Ident(text.to_string()), span, line, &mut out),
                }
                i = j;
            }
            other => {
                diags.push(Diagnostic::error(
                    "lex/unexpected-char",
                    Span::new(start, start + other.len_utf8() as u32),
                    format!("unexpected character `{other}`"),
                ));
                i += other.len_utf8();
            }
        }
    }
    let end = bytes.len() as u32;
    push(Token::Newline, Span::point(end), line, &mut out);
    out.push(Spanned {
        token: Token::Eof,
        span: Span::point(end),
        line,
    });
    (out, diags)
}

/// Fail-fast convenience over [`lex_partial`]: `Err` carries every lexical
/// diagnostic found in one pass.
pub fn lex(source: &str) -> Result<Vec<Spanned>, Vec<Diagnostic>> {
    let (tokens, diags) = lex_partial(source);
    if diags.is_empty() {
        Ok(tokens)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("PARDO pardo Pardo"),
            vec![
                Token::Kw(K::Pardo),
                Token::Kw(K::Pardo),
                Token::Kw(K::Pardo),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            toks("tmpSum"),
            vec![Token::Ident("tmpSum".into()), Token::Newline, Token::Eof]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("+= -= *= == != <= >= < > ="),
            vec![
                Token::PlusAssign,
                Token::MinusAssign,
                Token::StarAssign,
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Assign,
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 1.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.015),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            toks("do L # loop over L\nenddo"),
            vec![
                Token::Kw(K::Do),
                Token::Ident("L".into()),
                Token::Newline,
                Token::Kw(K::EndDo),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn newlines_collapse() {
        assert_eq!(
            toks("a\n\n\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\nc").unwrap();
        let lines: Vec<(String, u32)> = spanned
            .iter()
            .filter_map(|s| match &s.token {
                Token::Ident(n) => Some((n.clone(), s.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn byte_spans_tracked() {
        let spanned = lex("ab cd").unwrap();
        assert_eq!((spanned[0].span.start, spanned[0].span.end), (0, 2));
        assert_eq!((spanned[1].span.start, spanned[1].span.end), (3, 5));
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            toks("print \"hello world\""),
            vec![
                Token::Kw(K::Print),
                Token::Str("hello world".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"oops\nmore\"").is_err());
    }

    #[test]
    fn stray_bang_is_error() {
        let diags = lex("a ! b").unwrap_err();
        assert_eq!(diags[0].code, "lex/stray-bang");
    }

    #[test]
    fn recovery_reports_all_errors() {
        // Three distinct lexical errors in one pass.
        let (tokens, diags) = lex_partial("a ! b\nc @ d\n\"open");
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(
            codes,
            vec![
                "lex/stray-bang",
                "lex/unexpected-char",
                "lex/unterminated-string"
            ]
        );
        // The good tokens around the errors survive.
        let idents: Vec<&str> = tokens
            .iter()
            .filter_map(|s| match &s.token {
                Token::Ident(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn block_ref_tokens() {
        assert_eq!(
            toks("get T(L,S)"),
            vec![
                Token::Kw(K::Get),
                Token::Ident("T".into()),
                Token::LParen,
                Token::Ident("L".into()),
                Token::Comma,
                Token::Ident("S".into()),
                Token::RParen,
                Token::Newline,
                Token::Eof
            ]
        );
    }
}
