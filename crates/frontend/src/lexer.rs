//! The SIAL lexer.

use crate::error::{CompileError, ErrorKind};
use crate::token::{Keyword, Spanned, Token};

/// Tokenizes SIAL source. Consecutive newlines collapse to one
/// [`Token::Newline`]; a trailing `Eof` is always present.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut line: u32 = 1;
    let bytes = source.as_bytes();
    let mut i = 0;

    let push = |tok: Token, line: u32, out: &mut Vec<Spanned>| {
        if tok == Token::Newline {
            match out.last() {
                None
                | Some(Spanned {
                    token: Token::Newline,
                    ..
                }) => return,
                _ => {}
            }
        }
        out.push(Spanned { token: tok, line });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                push(Token::Newline, line, &mut out);
                line += 1;
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(Token::LParen, line, &mut out);
                i += 1;
            }
            ')' => {
                push(Token::RParen, line, &mut out);
                i += 1;
            }
            ',' => {
                push(Token::Comma, line, &mut out);
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::PlusAssign, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Plus, line, &mut out);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::MinusAssign, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Minus, line, &mut out);
                    i += 1;
                }
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::StarAssign, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Star, line, &mut out);
                    i += 1;
                }
            }
            '/' => {
                push(Token::Slash, line, &mut out);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::EqEq, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Assign, line, &mut out);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::NotEq, line, &mut out);
                    i += 2;
                } else {
                    return Err(CompileError::new(
                        ErrorKind::Lex,
                        line,
                        "stray `!` (did you mean `!=`?)",
                    ));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Le, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Lt, line, &mut out);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Ge, line, &mut out);
                    i += 2;
                } else {
                    push(Token::Gt, line, &mut out);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    return Err(CompileError::new(
                        ErrorKind::Lex,
                        line,
                        "unterminated string literal",
                    ));
                }
                let s = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| CompileError::new(ErrorKind::Lex, line, "invalid UTF-8"))?;
                push(Token::Str(s.to_string()), line, &mut out);
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (b == 'e' || b == 'E') && !seen_exp && j > start {
                        seen_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..j]).unwrap();
                let n: f64 = text.parse().map_err(|_| {
                    CompileError::new(ErrorKind::Lex, line, format!("bad number `{text}`"))
                })?;
                push(Token::Number(n), line, &mut out);
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..j]).unwrap();
                let lower = text.to_ascii_lowercase();
                match Keyword::from_str_lower(&lower) {
                    Some(kw) => push(Token::Kw(kw), line, &mut out),
                    None => push(Token::Ident(text.to_string()), line, &mut out),
                }
                i = j;
            }
            other => {
                return Err(CompileError::new(
                    ErrorKind::Lex,
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    push(Token::Newline, line, &mut out);
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("PARDO pardo Pardo"),
            vec![
                Token::Kw(K::Pardo),
                Token::Kw(K::Pardo),
                Token::Kw(K::Pardo),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            toks("tmpSum"),
            vec![Token::Ident("tmpSum".into()), Token::Newline, Token::Eof]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("+= -= *= == != <= >= < > ="),
            vec![
                Token::PlusAssign,
                Token::MinusAssign,
                Token::StarAssign,
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Assign,
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 1.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.015),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            toks("do L # loop over L\nenddo"),
            vec![
                Token::Kw(K::Do),
                Token::Ident("L".into()),
                Token::Newline,
                Token::Kw(K::EndDo),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn newlines_collapse() {
        assert_eq!(
            toks("a\n\n\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\nc").unwrap();
        let lines: Vec<(String, u32)> = spanned
            .iter()
            .filter_map(|s| match &s.token {
                Token::Ident(n) => Some((n.clone(), s.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            toks("print \"hello world\""),
            vec![
                Token::Kw(K::Print),
                Token::Str("hello world".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"oops\nmore\"").is_err());
    }

    #[test]
    fn stray_bang_is_error() {
        let err = lex("a ! b").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Lex);
    }

    #[test]
    fn block_ref_tokens() {
        assert_eq!(
            toks("get T(L,S)"),
            vec![
                Token::Kw(K::Get),
                Token::Ident("T".into()),
                Token::LParen,
                Token::Ident("L".into()),
                Token::Comma,
                Token::Ident("S".into()),
                Token::RParen,
                Token::Newline,
                Token::Eof
            ]
        );
    }
}
