//! The SIAL abstract syntax tree.
//!
//! Nodes carry byte [`Span`]s (not bare line numbers): diagnostics resolve
//! them to `line:col` through a `LineMap`, and the incremental front-end
//! fingerprints AST content through `Debug`, which `Span` deliberately
//! elides so whitespace-only edits don't invalidate downstream queries.

use sia_bytecode::diag::Span;

/// The declared kind of an index variable (mirrors the keywords).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstIndexKind {
    /// `aoindex`
    Ao,
    /// `moindex`
    Mo,
    /// `moaindex`
    MoA,
    /// `mobindex`
    MoB,
    /// `laindex`
    La,
    /// `index` (simple)
    Simple,
}

/// The declared kind of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstArrayKind {
    /// `static`
    Static,
    /// `temp`
    Temp,
    /// `local`
    Local,
    /// `distributed`
    Distributed,
    /// `served`
    Served,
}

/// A bound in an index declaration: a literal or a symbolic-constant name.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// A literal integer.
    Lit(i64),
    /// A symbolic constant resolved at initialization (e.g. `norb`).
    Sym(String),
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `aoindex M = 1, norb`
    Index {
        /// Variable name.
        name: String,
        /// Index kind keyword used.
        kind: AstIndexKind,
        /// Lower bound.
        low: Bound,
        /// Upper bound.
        high: Bound,
        /// Anchoring source span.
        span: Span,
    },
    /// `subindex ii of i`
    Subindex {
        /// Subindex name.
        name: String,
        /// Parent (super) index name.
        parent: String,
        /// Anchoring source span.
        span: Span,
    },
    /// `distributed R(M,N,I,J)`, `sparse distributed V(M,N,I,J)`, etc.
    Array {
        /// Array name.
        name: String,
        /// Storage class keyword used.
        kind: AstArrayKind,
        /// Index variable name per dimension.
        dims: Vec<String>,
        /// `sparse` modifier present (distributed/served only).
        sparse: bool,
        /// Anchoring source span.
        span: Span,
    },
    /// `scalar energy` with optional `= 0.0`.
    Scalar {
        /// Scalar name.
        name: String,
        /// Initial value.
        init: f64,
        /// Anchoring source span.
        span: Span,
    },
}

impl Decl {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Decl::Index { name, .. }
            | Decl::Subindex { name, .. }
            | Decl::Array { name, .. }
            | Decl::Scalar { name, .. } => name,
        }
    }

    /// Span of the declared name.
    pub fn span(&self) -> Span {
        match self {
            Decl::Index { span, .. }
            | Decl::Subindex { span, .. }
            | Decl::Array { span, .. }
            | Decl::Scalar { span, .. } => *span,
        }
    }
}

/// A reference to one block: array name + index variable names.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockExpr {
    /// Array name.
    pub array: String,
    /// Index variable per dimension.
    pub indices: Vec<String>,
    /// Span of the array name.
    pub span: Span,
}

/// A scalar-valued expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Named scalar variable, index variable, or symbolic constant — sema
    /// decides which.
    Name(String),
    /// `l + r` etc.
    Bin(crate::ast::BinOp, Box<Expr>, Box<Expr>),
    /// `-x`
    Neg(Box<Expr>),
}

/// Binary arithmetic operators (AST level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Comparison operators (AST level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A boolean expression (conditions and `where` clauses).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `l op r`
    Cmp(Expr, CmpOp, Expr),
    /// `a and b`
    And(Box<Cond>, Box<Cond>),
    /// `a or b`
    Or(Box<Cond>, Box<Cond>),
    /// `not a`
    Not(Box<Cond>),
}

/// The target of an assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A block: `tmp(M,N,I,J)`.
    Block(BlockExpr),
    /// A scalar variable.
    Scalar(String, Span),
}

/// Assignment operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// A scalar expression (fills a block dest, or assigns a scalar dest).
    Scalar(Expr),
    /// A single block (copy/permute/slice/insert).
    Block(BlockExpr),
    /// Contraction of two blocks.
    Contract(BlockExpr, BlockExpr),
    /// `expr * block` or `block * expr` — scaled block.
    ScaledBlock(Expr, BlockExpr),
}

/// Which barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// `sip_barrier` (distributed arrays).
    Sip,
    /// `server_barrier` (served arrays).
    Server,
}

/// Replace or accumulate for `put`/`prepare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// `=`
    Replace,
    /// `+=`
    Accumulate,
}

/// An argument of `execute`.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecArg {
    /// A block argument.
    Block(BlockExpr),
    /// A bare name (scalar or index — sema decides).
    Name(String, Span),
    /// A literal number.
    Num(f64),
}

/// One item of a `print` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AstPrintItem {
    /// A string literal.
    Str(String),
    /// A scalar expression.
    Expr(Expr),
}

/// A SIAL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `pardo …` / `endpardo`.
    Pardo {
        /// Parallel indices.
        indices: Vec<String>,
        /// `where` clauses (conjunction).
        wheres: Vec<Cond>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Span of the `pardo` keyword.
        span: Span,
    },
    /// `do i` / `enddo`.
    Do {
        /// Loop index.
        index: String,
        /// Loop body.
        body: Vec<Stmt>,
        /// Anchoring source span.
        span: Span,
    },
    /// `do ii in i` / `pardo ii in i`.
    DoIn {
        /// Subindex.
        sub: String,
        /// Parent index.
        parent: String,
        /// True for `pardo … in`.
        parallel: bool,
        /// Loop body.
        body: Vec<Stmt>,
        /// Anchoring source span.
        span: Span,
    },
    /// `if` / `else` / `endif`.
    If {
        /// Condition.
        cond: Cond,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
        /// Anchoring source span.
        span: Span,
    },
    /// `call name`.
    Call {
        /// Procedure name.
        name: String,
        /// Anchoring source span.
        span: Span,
    },
    /// `get T(..)`.
    Get(BlockExpr),
    /// `put R(..) =|+= src(..)`.
    Put {
        /// Destination (distributed array block).
        dest: BlockExpr,
        /// Source (local block).
        src: BlockExpr,
        /// Replace or accumulate.
        mode: StoreMode,
    },
    /// `request T(..)`.
    Request(BlockExpr),
    /// `prepare S(..) =|+= src(..)`.
    Prepare {
        /// Destination (served array block).
        dest: BlockExpr,
        /// Source (local block).
        src: BlockExpr,
        /// Replace or accumulate.
        mode: StoreMode,
    },
    /// An assignment statement.
    Assign {
        /// Destination.
        dest: LValue,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        rhs: Rhs,
        /// Anchoring source span.
        span: Span,
    },
    /// `execute name args…`.
    Execute {
        /// Super-instruction name.
        name: String,
        /// Arguments.
        args: Vec<ExecArg>,
        /// Anchoring source span.
        span: Span,
    },
    /// `sip_barrier` / `server_barrier`.
    Barrier(BarrierKind, Span),
    /// `blocks_to_list A "label"`.
    BlocksToList {
        /// Array serialized.
        array: String,
        /// Checkpoint label.
        label: String,
        /// Anchoring source span.
        span: Span,
    },
    /// `list_to_blocks A "label"`.
    ListToBlocks {
        /// Array restored.
        array: String,
        /// Checkpoint label.
        label: String,
        /// Anchoring source span.
        span: Span,
    },
    /// `print items…`.
    Print {
        /// Items.
        items: Vec<AstPrintItem>,
        /// Anchoring source span.
        span: Span,
    },
    /// `exit` — leave the innermost `do`/`do in` loop.
    Exit(Span),
    /// `create A`.
    Create(String, Span),
    /// `delete A`.
    Delete(String, Span),
}

impl Stmt {
    /// The statement's anchoring span (its first token, for most forms).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Pardo { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoIn { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Execute { span, .. }
            | Stmt::BlocksToList { span, .. }
            | Stmt::ListToBlocks { span, .. }
            | Stmt::Print { span, .. } => *span,
            Stmt::Get(b) | Stmt::Request(b) => b.span,
            Stmt::Put { dest, .. } | Stmt::Prepare { dest, .. } => dest.span,
            Stmt::Barrier(_, span)
            | Stmt::Exit(span)
            | Stmt::Create(_, span)
            | Stmt::Delete(_, span) => *span,
        }
    }
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Span of the procedure name.
    pub span: Span,
}

/// A parsed SIAL program.
#[derive(Debug, Clone, PartialEq)]
pub struct AstProgram {
    /// Program name from the `sial` header.
    pub name: String,
    /// Top-level declarations.
    pub decls: Vec<Decl>,
    /// Procedures.
    pub procs: Vec<ProcDef>,
    /// Main body statements.
    pub body: Vec<Stmt>,
}
