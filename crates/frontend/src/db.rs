//! `CompilerDb` — the incremental, query-based compilation database.
//!
//! Compilation is cut into memoized queries:
//!
//! ```text
//! source ──tokens──▶ ast ──resolve──▶ typecheck(unit) ──▶ lower
//! ```
//!
//! The engine is a small hand-rolled red/green scheme. Each query memoizes
//! its output together with a *content fingerprint* of its inputs; a query
//! re-runs only when that fingerprint changed. Fingerprints hash `Debug`
//! renderings, and [`Span`]'s `Debug` impl deliberately elides offsets
//! ([`sia_bytecode::diag::Span`]), so fingerprints are
//! **position-independent**:
//!
//! * `tokens` and `ast` re-run on every source revision (they are O(file)
//!   and keep spans fresh for the LSP);
//! * a whitespace-only or comment-only edit leaves the AST fingerprint
//!   unchanged, so `resolve`, every `typecheck` unit, and `lower` all stay
//!   green — zero downstream queries re-run;
//! * `typecheck` is keyed per *unit* ("main" or `proc:<name>`): editing one
//!   procedure body re-checks only that procedure.
//!
//! [`QueryStats`] exposes per-query hit/miss counters so tests (and
//! `sial check --watch --stats`) can pin these properties.

use crate::ast::AstProgram;
use crate::parser;
use crate::sema::{self, SemaInfo, SemaUnit};
use crate::{compile, lexer};
use sia_bytecode::diag::{Diagnostic, LineMap};
use sia_bytecode::Program;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::token::Spanned;

/// Per-query memo hit/miss counters.
///
/// Keys are query names: `tokens`, `ast`, `resolve`, `typecheck:main`,
/// `typecheck:proc:<name>`, `lower`.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    counts: BTreeMap<String, (u64, u64)>,
}

impl QueryStats {
    fn record(&mut self, query: &str, hit: bool) {
        let e = self.counts.entry(query.to_string()).or_insert((0, 0));
        if hit {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Times `query` was answered from cache.
    pub fn hits(&self, query: &str) -> u64 {
        self.counts.get(query).map_or(0, |e| e.0)
    }

    /// Times `query` had to recompute.
    pub fn misses(&self, query: &str) -> u64 {
        self.counts.get(query).map_or(0, |e| e.1)
    }

    /// All `(query, hits, misses)` rows, sorted by query name.
    pub fn rows(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.counts.iter().map(|(k, (h, m))| (k.as_str(), *h, *m))
    }

    /// One-line summary like `ast 3/1 lower 2/2 …` (hits/misses).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (q, h, m) in self.rows() {
            if !s.is_empty() {
                s.push(' ');
            }
            let _ = write!(s, "{q} {h}/{m}");
        }
        s
    }
}

fn fingerprint(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Fingerprint of the declaration section (plus proc names): the inputs of
/// `resolve`. `Span`'s elided `Debug` keeps this position-independent.
fn decl_fingerprint(ast: &AstProgram) -> u64 {
    let mut s = format!("{:?}|{:?}|", ast.name, ast.decls);
    for p in &ast.procs {
        let _ = write!(s, "{};", p.name);
    }
    fingerprint(&s)
}

fn unit_fingerprint(ast: &AstProgram, unit: &str) -> u64 {
    if unit == "main" {
        fingerprint(&format!("{:?}", ast.body))
    } else {
        let name = unit.strip_prefix("proc:").unwrap_or(unit);
        match ast.procs.iter().find(|p| p.name == name) {
            Some(p) => fingerprint(&format!("{:?}|{:?}", p.name, p.body)),
            None => 0,
        }
    }
}

/// Whole-program content fingerprint (everything lowering reads).
fn ast_fingerprint(ast: &AstProgram) -> u64 {
    fingerprint(&format!("{ast:?}"))
}

struct TokensMemo {
    revision: u64,
    tokens: Arc<Vec<Spanned>>,
    diags: Arc<Vec<Diagnostic>>,
}

struct AstMemo {
    revision: u64,
    ast: Arc<AstProgram>,
    diags: Arc<Vec<Diagnostic>>,
    fp: u64,
}

struct ResolveMemo {
    decl_fp: u64,
    info: Arc<SemaInfo>,
    diags: Arc<Vec<Diagnostic>>,
}

struct UnitMemo {
    unit_fp: u64,
    decl_fp: u64,
    diags: Arc<Vec<Diagnostic>>,
}

struct LowerMemo {
    ast_fp: u64,
    program: Option<Arc<Program>>,
    diags: Arc<Vec<Diagnostic>>,
}

/// One file's incremental compilation state.
pub struct CompilerDb {
    file: String,
    source: String,
    revision: u64,
    stats: QueryStats,
    tokens_memo: Option<TokensMemo>,
    ast_memo: Option<AstMemo>,
    resolve_memo: Option<ResolveMemo>,
    unit_memos: BTreeMap<String, UnitMemo>,
    lower_memo: Option<LowerMemo>,
}

impl CompilerDb {
    /// Creates a database for one file at revision 1.
    pub fn new(file: impl Into<String>, source: impl Into<String>) -> Self {
        CompilerDb {
            file: file.into(),
            source: source.into(),
            revision: 1,
            stats: QueryStats::default(),
            tokens_memo: None,
            ast_memo: None,
            resolve_memo: None,
            unit_memos: BTreeMap::new(),
            lower_memo: None,
        }
    }

    /// Replaces the source text, bumping the revision. Memoized outputs are
    /// invalidated lazily through fingerprint comparison on the next query.
    pub fn set_source(&mut self, source: impl Into<String>) {
        self.source = source.into();
        self.revision += 1;
    }

    /// The file name diagnostics are attributed to.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The current source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Monotonic input revision (bumped by [`Self::set_source`]).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Memo hit/miss counters accumulated so far.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// A fresh [`LineMap`] for the current source.
    pub fn line_map(&self) -> LineMap {
        LineMap::new(&self.source)
    }

    // ---- queries -----------------------------------------------------------

    /// `tokens(file)`: the token stream plus lexical diagnostics.
    pub fn tokens(&mut self) -> (Arc<Vec<Spanned>>, Arc<Vec<Diagnostic>>) {
        if let Some(m) = &self.tokens_memo {
            if m.revision == self.revision {
                self.stats.record("tokens", true);
                return (m.tokens.clone(), m.diags.clone());
            }
        }
        self.stats.record("tokens", false);
        let (tokens, diags) = lexer::lex_partial(&self.source);
        let m = TokensMemo {
            revision: self.revision,
            tokens: Arc::new(tokens),
            diags: Arc::new(diags),
        };
        let out = (m.tokens.clone(), m.diags.clone());
        self.tokens_memo = Some(m);
        out
    }

    /// `ast(file)`: the (possibly partial) syntax tree plus parse
    /// diagnostics. Re-parses on every revision — parsing is O(file) and
    /// keeps spans fresh — but its *output fingerprint* is
    /// position-independent, so unchanged content keeps downstream queries
    /// green.
    pub fn ast(&mut self) -> (Arc<AstProgram>, Arc<Vec<Diagnostic>>) {
        if let Some(m) = &self.ast_memo {
            if m.revision == self.revision {
                self.stats.record("ast", true);
                return (m.ast.clone(), m.diags.clone());
            }
        }
        let (tokens, _) = self.tokens();
        self.stats.record("ast", false);
        let (ast, diags) = parser::parse_tokens((*tokens).clone());
        let m = AstMemo {
            revision: self.revision,
            fp: ast_fingerprint(&ast),
            ast: Arc::new(ast),
            diags: Arc::new(diags),
        };
        let out = (m.ast.clone(), m.diags.clone());
        self.ast_memo = Some(m);
        out
    }

    /// `resolve(file)`: declaration tables. Keyed on the declaration
    /// section's content fingerprint — body edits keep it green.
    pub fn resolve(&mut self) -> (Arc<SemaInfo>, Arc<Vec<Diagnostic>>) {
        let (ast, _) = self.ast();
        let decl_fp = decl_fingerprint(&ast);
        if let Some(m) = &self.resolve_memo {
            if m.decl_fp == decl_fp {
                self.stats.record("resolve", true);
                return (m.info.clone(), m.diags.clone());
            }
        }
        self.stats.record("resolve", false);
        let (info, diags) = sema::resolve_decls(&ast);
        let m = ResolveMemo {
            decl_fp,
            info: Arc::new(info),
            diags: Arc::new(diags),
        };
        let out = (m.info.clone(), m.diags.clone());
        self.resolve_memo = Some(m);
        out
    }

    /// Unit names for the current AST: `main` plus `proc:<name>` per proc.
    pub fn units(&mut self) -> Vec<String> {
        let (ast, _) = self.ast();
        let mut out = vec!["main".to_string()];
        out.extend(ast.procs.iter().map(|p| format!("proc:{}", p.name)));
        out
    }

    /// `typecheck(file, unit)`: semantic diagnostics for one unit. Keyed on
    /// the unit's own content fingerprint plus the declaration fingerprint,
    /// so editing one proc re-checks only that proc.
    pub fn typecheck(&mut self, unit: &str) -> Arc<Vec<Diagnostic>> {
        let (ast, _) = self.ast();
        let (info, _) = self.resolve();
        let decl_fp = decl_fingerprint(&ast);
        let unit_fp = unit_fingerprint(&ast, unit);
        let qname = format!("typecheck:{unit}");
        if let Some(m) = self.unit_memos.get(unit) {
            if m.unit_fp == unit_fp && m.decl_fp == decl_fp {
                self.stats.record(&qname, true);
                return m.diags.clone();
            }
        }
        self.stats.record(&qname, false);
        let diags = match unit {
            "main" => sema::check_unit(&info, SemaUnit::Main(&ast.body)),
            _ => {
                let name = unit.strip_prefix("proc:").unwrap_or(unit);
                match ast.procs.iter().find(|p| p.name == name) {
                    Some(p) => sema::check_unit(&info, SemaUnit::Proc(p)),
                    None => Vec::new(),
                }
            }
        };
        let diags = Arc::new(diags);
        self.unit_memos.insert(
            unit.to_string(),
            UnitMemo {
                unit_fp,
                decl_fp,
                diags: diags.clone(),
            },
        );
        diags
    }

    /// `lower(file)`: the bytecode program (with line-table sidecar), or
    /// `None` while earlier stages report errors. Keyed on the whole-AST
    /// content fingerprint.
    pub fn lower(&mut self) -> (Option<Arc<Program>>, Arc<Vec<Diagnostic>>) {
        let (ast, parse_diags) = self.ast();
        let ast_fp = self.ast_memo.as_ref().map(|m| m.fp).unwrap_or(0);
        if let Some(m) = &self.lower_memo {
            if m.ast_fp == ast_fp {
                self.stats.record("lower", true);
                return (m.program.clone(), m.diags.clone());
            }
        }
        let (tokens_diags, resolve_diags) = {
            let (_, td) = self.tokens();
            let (_, rd) = self.resolve();
            (td, rd)
        };
        let mut sema_clean =
            tokens_diags.is_empty() && parse_diags.is_empty() && resolve_diags.is_empty();
        for unit in self.units() {
            if !self.typecheck(&unit).is_empty() {
                sema_clean = false;
            }
        }
        self.stats.record("lower", false);
        let (program, diags) = if !sema_clean {
            // Earlier stages failed; lowering has nothing sound to do.
            (None, Vec::new())
        } else {
            let (info, _) = self.resolve();
            let map = self.line_map();
            match compile::compile_ast(&ast, &info, &self.file, &map) {
                Ok(p) => (Some(Arc::new(p)), Vec::new()),
                Err(ds) => (None, ds),
            }
        };
        let m = LowerMemo {
            ast_fp,
            program,
            diags: Arc::new(diags),
        };
        let out = (m.program.clone(), m.diags.clone());
        self.lower_memo = Some(m);
        out
    }

    // ---- derived views -------------------------------------------------------

    /// Every front-end diagnostic (lex, parse, resolve, typecheck, lower),
    /// located with the current file name and line map.
    pub fn diagnostics(&mut self) -> Vec<Diagnostic> {
        let (_, lex) = self.tokens();
        let (_, parse) = self.ast();
        let (_, resolve) = self.resolve();
        let mut all: Vec<Diagnostic> = Vec::new();
        all.extend(lex.iter().cloned());
        all.extend(parse.iter().cloned());
        all.extend(resolve.iter().cloned());
        for unit in self.units() {
            all.extend(self.typecheck(&unit).iter().cloned());
        }
        let (_, lower) = self.lower();
        all.extend(lower.iter().cloned());
        let map = self.line_map();
        let file = self.file.clone();
        all.sort_by_key(|d| (d.span.start, d.span.end));
        all.into_iter().map(|d| d.locate(&file, &map)).collect()
    }

    /// The compiled program, if the file currently compiles cleanly.
    pub fn program(&mut self) -> Option<Arc<Program>> {
        self.lower().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "sial t\naoindex M = 1, 4\naoindex N = 1, 4\ntemp x(M,N)\nscalar s\nproc a\ns = 1.0\nendproc\nproc b\ns = 2.0\nendproc\npardo M, N\nx(M,N) = 0.0\nendpardo\ncall a\ncall b\nendsial\n";

    #[test]
    fn clean_program_compiles_and_memoizes() {
        let mut db = CompilerDb::new("t.sial", SRC);
        assert!(db.diagnostics().is_empty());
        let p1 = db.program().expect("compiles");
        let p2 = db.program().expect("compiles");
        assert!(Arc::ptr_eq(&p1, &p2), "second call is a cache hit");
        assert_eq!(db.stats().misses("lower"), 1);
        assert!(db.stats().hits("lower") >= 1);
    }

    #[test]
    fn whitespace_edit_keeps_all_downstream_queries_green() {
        let mut db = CompilerDb::new("t.sial", SRC);
        let _ = db.program();
        let m_resolve = db.stats().misses("resolve");
        let m_main = db.stats().misses("typecheck:main");
        let m_a = db.stats().misses("typecheck:proc:a");
        let m_b = db.stats().misses("typecheck:proc:b");
        let m_lower = db.stats().misses("lower");

        // Indent a line, add a blank line and a comment: content unchanged.
        let ws = SRC.replace("x(M,N) = 0.0\n", "   x(M,N) = 0.0\n\n# comment\n");
        assert_ne!(ws, SRC);
        db.set_source(ws);
        let _ = db.program();

        // tokens and ast re-ran (they track raw text)…
        assert_eq!(db.stats().misses("tokens"), 2);
        assert_eq!(db.stats().misses("ast"), 2);
        // …but zero downstream queries re-ran.
        assert_eq!(db.stats().misses("resolve"), m_resolve);
        assert_eq!(db.stats().misses("typecheck:main"), m_main);
        assert_eq!(db.stats().misses("typecheck:proc:a"), m_a);
        assert_eq!(db.stats().misses("typecheck:proc:b"), m_b);
        assert_eq!(db.stats().misses("lower"), m_lower);
    }

    #[test]
    fn proc_edit_rechecks_only_that_proc() {
        let mut db = CompilerDb::new("t.sial", SRC);
        let _ = db.program();
        let m_resolve = db.stats().misses("resolve");
        let m_main = db.stats().misses("typecheck:main");
        let m_a = db.stats().misses("typecheck:proc:a");
        let m_b = db.stats().misses("typecheck:proc:b");

        // Edit the body of proc b only.
        db.set_source(SRC.replace("s = 2.0", "s = 3.0"));
        let _ = db.program();

        assert_eq!(db.stats().misses("resolve"), m_resolve, "decls unchanged");
        assert_eq!(db.stats().misses("typecheck:main"), m_main);
        assert_eq!(db.stats().misses("typecheck:proc:a"), m_a);
        assert_eq!(
            db.stats().misses("typecheck:proc:b"),
            m_b + 1,
            "only the edited proc re-checks: {}",
            db.stats().summary()
        );
        // Lowering re-runs (pc layout is a whole-program property).
        assert_eq!(db.stats().misses("lower"), 2);
    }

    #[test]
    fn decl_edit_invalidates_resolve_and_units() {
        let mut db = CompilerDb::new("t.sial", SRC);
        let _ = db.program();
        db.set_source(SRC.replace("scalar s\n", "scalar s\nscalar q\n"));
        let _ = db.program();
        assert_eq!(db.stats().misses("resolve"), 2);
        assert_eq!(db.stats().misses("typecheck:main"), 2);
    }

    #[test]
    fn broken_source_reports_located_diagnostics_and_no_program() {
        let mut db = CompilerDb::new("t.sial", "sial t\nscalar s\ns = \nnope()\nendsial\n");
        assert!(db.program().is_none());
        let diags = db.diagnostics();
        assert!(!diags.is_empty());
        for d in &diags {
            assert_eq!(d.file, "t.sial");
            assert!(d.line > 0, "{d}");
        }
        // Fixing the file recovers.
        db.set_source("sial t\nscalar s\ns = 1.0\nendsial\n");
        assert!(db.diagnostics().is_empty());
        assert!(db.program().is_some());
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let mut db = CompilerDb::new("t.sial", "sial t\nscalar s\ns = \ns = 1.0\nput\nendsial\n");
        let diags = db.diagnostics();
        assert!(diags.len() >= 2);
        for w in diags.windows(2) {
            assert!(w[0].span.start <= w[1].span.start);
        }
    }
}
