//! # sial-frontend — the SIAL compiler
//!
//! SIAL ("sail") is the Super Instruction Assembly Language: a simple,
//! line-oriented parallel language in which computational chemists write
//! algorithms in terms of *blocks* of multidimensional arrays. This crate
//! turns SIAL source into the SIA bytecode of [`sia_bytecode`]:
//!
//! ```text
//! source --tokens--> --ast--> --resolve--> --typecheck--> --lower--> Program
//! ```
//!
//! The stages are exposed two ways:
//!
//! * [`compile`] / [`compile_file`] — one-shot batch compilation. Multi-
//!   error: failure returns [`CompileErrors`] carrying every located
//!   [`Diagnostic`] found in one pass.
//! * [`CompilerDb`] — an incremental, memoized query database (used by
//!   `sial-lsp` and `sial check --watch`) that re-runs only the queries
//!   whose inputs actually changed.
//!
//! The paper's running example compiles as-is:
//!
//! ```
//! let src = r#"
//! sial ccsd_term
//! aoindex M = 1, norb
//! aoindex N = 1, norb
//! aoindex L = 1, norb
//! aoindex S = 1, norb
//! moindex I = 1, nocc
//! moindex J = 1, nocc
//! distributed T(L,S,I,J)
//! distributed R(M,N,I,J)
//! temp V(M,N,L,S)
//! temp tmp(M,N,I,J)
//! temp tmpsum(M,N,I,J)
//!
//! pardo M, N, I, J
//!   tmpsum(M,N,I,J) = 0.0
//!   do L
//!     do S
//!       get T(L,S,I,J)
//!       execute compute_integrals V(M,N,L,S)
//!       tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
//!       tmpsum(M,N,I,J) += tmp(M,N,I,J)
//!     enddo S
//!   enddo L
//!   put R(M,N,I,J) = tmpsum(M,N,I,J)
//! endpardo M, N, I, J
//! endsial
//! "#;
//! let program = sial_frontend::compile(src).expect("compiles");
//! assert_eq!(program.name, "ccsd_term");
//! ```

pub mod ast;
pub mod compile;
pub mod db;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use compile::compile_ast;
pub use db::{CompilerDb, QueryStats};
pub use error::{CompileError, CompileErrors};
pub use parser::{parse, parse_partial};
pub use sia_bytecode::diag::{Diagnostic, LineMap, Severity, Span};

/// Compiles SIAL source text to SIA bytecode, attributing diagnostics to
/// the pseudo-file `<input>`.
pub fn compile(source: &str) -> Result<sia_bytecode::Program, CompileErrors> {
    compile_file("<input>", source)
}

/// Compiles SIAL source text to SIA bytecode
/// (tokens → ast → resolve → typecheck → lower), attributing diagnostics —
/// and the emitted line-table sidecar — to `file`.
pub fn compile_file(file: &str, source: &str) -> Result<sia_bytecode::Program, CompileErrors> {
    let map = LineMap::new(source);
    let locate = |ds: Vec<Diagnostic>| -> Vec<Diagnostic> {
        ds.into_iter().map(|d| d.locate(file, &map)).collect()
    };
    let (ast, diags) = parser::parse_partial(source);
    if !diags.is_empty() {
        return Err(CompileErrors::new(locate(diags)));
    }
    let info = sema::analyze(&ast).map_err(|ds| CompileErrors::new(locate(ds)))?;
    compile::compile_ast(&ast, &info, file, &map).map_err(|ds| CompileErrors::new(locate(ds)))
}
