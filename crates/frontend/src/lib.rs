//! # sial-frontend — the SIAL compiler
//!
//! SIAL ("sail") is the Super Instruction Assembly Language: a simple,
//! line-oriented parallel language in which computational chemists write
//! algorithms in terms of *blocks* of multidimensional arrays. This crate
//! turns SIAL source into the SIA bytecode of [`sia_bytecode`]:
//!
//! ```text
//! source --lex--> tokens --parse--> AST --sema--> checked AST --compile--> Program
//! ```
//!
//! The paper's running example compiles as-is:
//!
//! ```
//! let src = r#"
//! sial ccsd_term
//! aoindex M = 1, norb
//! aoindex N = 1, norb
//! aoindex L = 1, norb
//! aoindex S = 1, norb
//! moindex I = 1, nocc
//! moindex J = 1, nocc
//! distributed T(L,S,I,J)
//! distributed R(M,N,I,J)
//! temp V(M,N,L,S)
//! temp tmp(M,N,I,J)
//! temp tmpsum(M,N,I,J)
//!
//! pardo M, N, I, J
//!   tmpsum(M,N,I,J) = 0.0
//!   do L
//!     do S
//!       get T(L,S,I,J)
//!       execute compute_integrals V(M,N,L,S)
//!       tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
//!       tmpsum(M,N,I,J) += tmp(M,N,I,J)
//!     enddo S
//!   enddo L
//!   put R(M,N,I,J) = tmpsum(M,N,I,J)
//! endpardo M, N, I, J
//! endsial
//! "#;
//! let program = sial_frontend::compile(src).expect("compiles");
//! assert_eq!(program.name, "ccsd_term");
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use compile::compile_ast;
pub use error::{CompileError, ErrorKind};
pub use parser::parse;

/// Compiles SIAL source text to SIA bytecode (lex → parse → sema → lower).
pub fn compile(source: &str) -> Result<sia_bytecode::Program, CompileError> {
    let ast = parser::parse(source)?;
    let checked = sema::analyze(&ast)?;
    compile::compile_ast(&ast, &checked)
}
