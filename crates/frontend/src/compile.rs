//! Lowering: checked AST → SIA bytecode.
//!
//! Statements lower to small flat instruction sequences; control structures
//! lower to paired loop instructions with patched pc targets. The compiler
//! synthesizes hidden temp arrays (names starting with `$`) for scalar
//! reductions and scaled accumulations, mirroring how the original SIAL
//! compiler introduced compiler temporaries.
//!
//! Lowering also records a [`LineTable`] sidecar: one source line per
//! emitted instruction (0 for synthetic code like the final `halt`), so
//! runtime and verifier diagnostics can print `file:line`.

use crate::ast::{self, AstProgram, BlockExpr, Cond, Expr, LValue, Rhs, Stmt};
use crate::sema::SemaInfo;
use sia_bytecode::diag::{Diagnostic, LineMap, Span};
use sia_bytecode::{
    Arg, ArrayDecl, ArrayId, ArrayKind, BinOp, BlockRef, BoolExpr, CmpOp, IndexId,
    Instruction as I, LineTable, ProcDecl, ProcId, Program, PutMode, ScalarExpr, ScalarId,
};

fn lower_err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error("lower/invalid", span, msg)
}

struct Lowerer<'a> {
    info: &'a SemaInfo,
    program: Program,
    hidden_counter: u32,
    /// Per active sequential loop: (start pc, pending `exit` pcs to patch).
    loop_exits: Vec<(u32, Vec<u32>)>,
    /// Source-line lookup for the file being lowered.
    line_map: &'a LineMap,
    /// 1-based line of the statement currently being lowered (0 = synthetic).
    cur_line: u32,
    /// One entry per emitted instruction.
    lines: Vec<u32>,
}

/// Lowers a checked AST into a bytecode [`Program`] with a line-table
/// sidecar naming `file`.
pub fn compile_ast(
    ast: &AstProgram,
    info: &SemaInfo,
    file: &str,
    line_map: &LineMap,
) -> Result<Program, Vec<Diagnostic>> {
    let mut l = Lowerer {
        info,
        program: Program {
            name: ast.name.clone(),
            indices: info.indices.clone(),
            arrays: info.arrays.clone(),
            scalars: info.scalars.clone(),
            consts: info.consts.clone(),
            procs: Vec::new(),
            strings: Vec::new(),
            code: Vec::new(),
            line_table: None,
        },
        hidden_counter: 0,
        loop_exits: Vec::new(),
        line_map,
        cur_line: 0,
        lines: Vec::new(),
    };
    let r = (|| {
        l.lower_stmts(&ast.body)?;
        l.cur_line = 0;
        l.emit(I::Halt);
        for p in &ast.procs {
            let entry_pc = l.pc();
            l.program.procs.push(ProcDecl {
                name: p.name.clone(),
                entry_pc,
            });
            l.lower_stmts(&p.body)?;
            l.cur_line = 0;
            l.emit(I::Return);
        }
        Ok(())
    })();
    match r {
        Ok(()) => {
            l.program.line_table = Some(LineTable {
                file: file.to_string(),
                lines: l.lines,
            });
            Ok(l.program)
        }
        Err(d) => Err(vec![d]),
    }
}

impl<'a> Lowerer<'a> {
    fn pc(&self) -> u32 {
        self.program.code.len() as u32
    }

    fn emit(&mut self, ins: I) -> u32 {
        let pc = self.pc();
        self.program.code.push(ins);
        self.lines.push(self.cur_line);
        pc
    }

    fn index_id(&self, name: &str) -> IndexId {
        IndexId(*self.info.index_ids.get(name).expect("sema resolved"))
    }

    fn array_id(&self, name: &str) -> ArrayId {
        ArrayId(*self.info.array_ids.get(name).expect("sema resolved"))
    }

    fn block_ref(&self, b: &BlockExpr) -> BlockRef {
        BlockRef {
            array: self.array_id(&b.array),
            indices: b.indices.iter().map(|n| self.index_id(n)).collect(),
        }
    }

    /// Synthesizes a hidden temp array whose dims mirror `indices` (empty for
    /// a scalar-shaped reduction block).
    fn hidden_temp(&mut self, indices: &[IndexId]) -> ArrayId {
        let id = ArrayId(self.program.arrays.len() as u32);
        self.hidden_counter += 1;
        self.program.arrays.push(ArrayDecl {
            name: format!("$t{}", self.hidden_counter),
            kind: ArrayKind::Temp,
            dims: indices.to_vec(),
            sparse: false,
        });
        id
    }

    fn expr(&self, e: &Expr, span: Span) -> Result<ScalarExpr, Diagnostic> {
        Ok(match e {
            Expr::Num(n) => ScalarExpr::Lit(*n),
            Expr::Name(n) => {
                if let Some(&id) = self.info.scalar_ids.get(n) {
                    ScalarExpr::Scalar(ScalarId(id))
                } else if let Some(&id) = self.info.const_ids.get(n) {
                    ScalarExpr::Const(sia_bytecode::ConstId(id))
                } else if let Some(&id) = self.info.index_ids.get(n) {
                    ScalarExpr::IndexVal(IndexId(id))
                } else {
                    return Err(lower_err(span, format!("unresolved name `{n}`")));
                }
            }
            Expr::Bin(op, a, b) => {
                let bop = match op {
                    ast::BinOp::Add => BinOp::Add,
                    ast::BinOp::Sub => BinOp::Sub,
                    ast::BinOp::Mul => BinOp::Mul,
                    ast::BinOp::Div => BinOp::Div,
                };
                ScalarExpr::Bin(
                    bop,
                    Box::new(self.expr(a, span)?),
                    Box::new(self.expr(b, span)?),
                )
            }
            Expr::Neg(x) => ScalarExpr::Neg(Box::new(self.expr(x, span)?)),
        })
    }

    fn cond(&self, c: &Cond, span: Span) -> Result<BoolExpr, Diagnostic> {
        Ok(match c {
            Cond::Cmp(l, op, r) => {
                let cop = match op {
                    ast::CmpOp::Eq => CmpOp::Eq,
                    ast::CmpOp::Ne => CmpOp::Ne,
                    ast::CmpOp::Lt => CmpOp::Lt,
                    ast::CmpOp::Le => CmpOp::Le,
                    ast::CmpOp::Gt => CmpOp::Gt,
                    ast::CmpOp::Ge => CmpOp::Ge,
                };
                BoolExpr::Cmp(self.expr(l, span)?, cop, self.expr(r, span)?)
            }
            Cond::And(a, b) => {
                BoolExpr::And(Box::new(self.cond(a, span)?), Box::new(self.cond(b, span)?))
            }
            Cond::Or(a, b) => {
                BoolExpr::Or(Box::new(self.cond(a, span)?), Box::new(self.cond(b, span)?))
            }
            Cond::Not(x) => BoolExpr::Not(Box::new(self.cond(x, span)?)),
        })
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), Diagnostic> {
        for s in stmts {
            self.cur_line = self.line_map.line_col(s.span().start).0;
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        match s {
            Stmt::Pardo {
                indices,
                wheres,
                body,
                span,
            } => {
                let idx: Vec<IndexId> = indices.iter().map(|n| self.index_id(n)).collect();
                let mut clauses = Vec::with_capacity(wheres.len());
                for w in wheres {
                    clauses.push(self.cond(w, *span)?);
                }
                let start = self.emit(I::PardoStart {
                    indices: idx,
                    where_clauses: clauses,
                    end_pc: 0,
                });
                self.lower_stmts(body)?;
                self.cur_line = self.line_map.line_col(span.start).0;
                let end = self.emit(I::PardoEnd { start_pc: start });
                if let I::PardoStart { end_pc, .. } = &mut self.program.code[start as usize] {
                    *end_pc = end;
                }
                Ok(())
            }
            Stmt::Do { index, body, span } => {
                let start = self.emit(I::DoStart {
                    index: self.index_id(index),
                    end_pc: 0,
                });
                self.loop_exits.push((start, Vec::new()));
                self.lower_stmts(body)?;
                let (_, exits) = self.loop_exits.pop().expect("loop stack balanced");
                self.cur_line = self.line_map.line_col(span.start).0;
                let end = self.emit(I::DoEnd { start_pc: start });
                if let I::DoStart { end_pc, .. } = &mut self.program.code[start as usize] {
                    *end_pc = end;
                }
                for pc in exits {
                    if let I::ExitLoop { target, .. } = &mut self.program.code[pc as usize] {
                        *target = end + 1;
                    }
                }
                Ok(())
            }
            Stmt::DoIn {
                sub,
                parent,
                parallel,
                body,
                span,
            } => {
                let start = self.emit(I::DoInStart {
                    sub: self.index_id(sub),
                    parent: self.index_id(parent),
                    end_pc: 0,
                    parallel: *parallel,
                });
                self.loop_exits.push((start, Vec::new()));
                self.lower_stmts(body)?;
                let (_, exits) = self.loop_exits.pop().expect("loop stack balanced");
                self.cur_line = self.line_map.line_col(span.start).0;
                let end = self.emit(I::DoInEnd { start_pc: start });
                if let I::DoInStart { end_pc, .. } = &mut self.program.code[start as usize] {
                    *end_pc = end;
                }
                for pc in exits {
                    if let I::ExitLoop { target, .. } = &mut self.program.code[pc as usize] {
                        *target = end + 1;
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                els,
                span,
            } => {
                let c = self.cond(cond, *span)?;
                let jf = self.emit(I::JumpIfFalse { cond: c, target: 0 });
                self.lower_stmts(then)?;
                if els.is_empty() {
                    let after = self.pc();
                    if let I::JumpIfFalse { target, .. } = &mut self.program.code[jf as usize] {
                        *target = after;
                    }
                } else {
                    self.cur_line = self.line_map.line_col(span.start).0;
                    let jmp = self.emit(I::Jump { target: 0 });
                    let else_start = self.pc();
                    if let I::JumpIfFalse { target, .. } = &mut self.program.code[jf as usize] {
                        *target = else_start;
                    }
                    self.lower_stmts(els)?;
                    let after = self.pc();
                    if let I::Jump { target } = &mut self.program.code[jmp as usize] {
                        *target = after;
                    }
                }
                Ok(())
            }
            Stmt::Call { name, .. } => {
                let pos = self
                    .info
                    .proc_order
                    .iter()
                    .position(|p| p == name)
                    .expect("sema resolved");
                self.emit(I::Call {
                    proc: ProcId(pos as u32),
                });
                Ok(())
            }
            Stmt::Get(b) => {
                let block = self.block_ref(b);
                self.emit(I::Get { block });
                Ok(())
            }
            Stmt::Request(b) => {
                let block = self.block_ref(b);
                self.emit(I::Request { block });
                Ok(())
            }
            Stmt::Put { dest, src, mode } => {
                let d = self.block_ref(dest);
                let s2 = self.block_ref(src);
                self.emit(I::Put {
                    dest: d,
                    src: s2,
                    mode: match mode {
                        ast::StoreMode::Replace => PutMode::Replace,
                        ast::StoreMode::Accumulate => PutMode::Accumulate,
                    },
                });
                Ok(())
            }
            Stmt::Prepare { dest, src, mode } => {
                let d = self.block_ref(dest);
                let s2 = self.block_ref(src);
                self.emit(I::Prepare {
                    dest: d,
                    src: s2,
                    mode: match mode {
                        ast::StoreMode::Replace => PutMode::Replace,
                        ast::StoreMode::Accumulate => PutMode::Accumulate,
                    },
                });
                Ok(())
            }
            Stmt::Assign {
                dest,
                op,
                rhs,
                span,
            } => self.lower_assign(dest, *op, rhs, *span),
            Stmt::Execute { name, args, span } => {
                let name_id = self.program.intern(name);
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(match a {
                        ast::ExecArg::Block(b) => Arg::Block(self.block_ref(b)),
                        ast::ExecArg::Name(n, _) => {
                            if let Some(&id) = self.info.scalar_ids.get(n) {
                                Arg::Scalar(ScalarId(id))
                            } else if self.info.index_ids.contains_key(n) {
                                Arg::Index(self.index_id(n))
                            } else if self.info.const_ids.contains_key(n) {
                                // Constants pass as scalar literals resolved at
                                // runtime via a synthetic scalar — rejected for
                                // now to keep `execute` signatures simple.
                                return Err(lower_err(
                                    *span,
                                    format!("constant `{n}` cannot be an execute argument"),
                                ));
                            } else {
                                return Err(lower_err(*span, format!("unresolved `{n}`")));
                            }
                        }
                        ast::ExecArg::Num(_) => {
                            return Err(lower_err(
                                *span,
                                "numeric literals as execute arguments are not supported; \
                                 assign to a scalar first",
                            ));
                        }
                    });
                }
                self.emit(I::ExecuteSuper {
                    name: name_id,
                    args: lowered,
                });
                Ok(())
            }
            Stmt::Exit(span) => {
                let Some(loop_start) = self.loop_exits.last().map(|(s, _)| *s) else {
                    return Err(lower_err(*span, "`exit` outside a loop"));
                };
                let pc = self.emit(I::ExitLoop {
                    loop_start_pc: loop_start,
                    target: 0,
                });
                self.loop_exits.last_mut().unwrap().1.push(pc);
                Ok(())
            }
            Stmt::Barrier(kind, _) => {
                self.emit(match kind {
                    ast::BarrierKind::Sip => I::SipBarrier,
                    ast::BarrierKind::Server => I::ServerBarrier,
                });
                Ok(())
            }
            Stmt::BlocksToList { array, label, .. } => {
                let label_id = self.program.intern(label);
                let array_id = self.array_id(array);
                self.emit(I::BlocksToList {
                    array: array_id,
                    label: label_id,
                });
                Ok(())
            }
            Stmt::ListToBlocks { array, label, .. } => {
                let label_id = self.program.intern(label);
                let array_id = self.array_id(array);
                self.emit(I::ListToBlocks {
                    array: array_id,
                    label: label_id,
                });
                Ok(())
            }
            Stmt::Print { items, span } => {
                let mut lowered = Vec::with_capacity(items.len());
                for item in items {
                    lowered.push(match item {
                        ast::AstPrintItem::Str(s) => {
                            sia_bytecode::ops::PrintItem::Str(self.program.intern(s))
                        }
                        ast::AstPrintItem::Expr(e) => {
                            sia_bytecode::ops::PrintItem::Expr(self.expr(e, *span)?)
                        }
                    });
                }
                self.emit(I::Print { items: lowered });
                Ok(())
            }
            Stmt::Create(name, _) => {
                let array = self.array_id(name);
                self.emit(I::Create { array });
                Ok(())
            }
            Stmt::Delete(name, _) => {
                let array = self.array_id(name);
                self.emit(I::Delete { array });
                Ok(())
            }
        }
    }

    fn lower_assign(
        &mut self,
        dest: &LValue,
        op: ast::AssignOp,
        rhs: &Rhs,
        span: Span,
    ) -> Result<(), Diagnostic> {
        match dest {
            LValue::Block(d) => {
                let dref = self.block_ref(d);
                match (op, rhs) {
                    (ast::AssignOp::Set, Rhs::Scalar(e)) => {
                        let value = self.expr(e, span)?;
                        self.emit(I::BlockFill { dest: dref, value });
                    }
                    (ast::AssignOp::Mul, Rhs::Scalar(e)) => {
                        let factor = self.expr(e, span)?;
                        self.emit(I::BlockScale { dest: dref, factor });
                    }
                    (ast::AssignOp::Set, Rhs::Block(s)) => {
                        let src = self.block_ref(s);
                        self.emit(I::BlockCopy { dest: dref, src });
                    }
                    (ast::AssignOp::Add, Rhs::Block(s)) => {
                        let src = self.block_ref(s);
                        self.emit(I::BlockAccumulate {
                            dest: dref,
                            src,
                            sign: 1.0,
                        });
                    }
                    (ast::AssignOp::Sub, Rhs::Block(s)) => {
                        let src = self.block_ref(s);
                        self.emit(I::BlockAccumulate {
                            dest: dref,
                            src,
                            sign: -1.0,
                        });
                    }
                    (ast::AssignOp::Set, Rhs::Contract(a, b)) => {
                        let a = self.block_ref(a);
                        let b = self.block_ref(b);
                        self.emit(I::BlockContract {
                            dest: dref,
                            a,
                            b,
                            accumulate: false,
                        });
                    }
                    (ast::AssignOp::Add, Rhs::Contract(a, b)) => {
                        let a = self.block_ref(a);
                        let b = self.block_ref(b);
                        self.emit(I::BlockContract {
                            dest: dref,
                            a,
                            b,
                            accumulate: true,
                        });
                    }
                    (ast::AssignOp::Set, Rhs::ScaledBlock(e, s)) => {
                        let src = self.block_ref(s);
                        let factor = self.expr(e, span)?;
                        self.emit(I::BlockCopy {
                            dest: dref.clone(),
                            src,
                        });
                        self.emit(I::BlockScale { dest: dref, factor });
                    }
                    (ast::AssignOp::Add, Rhs::ScaledBlock(e, s)) => {
                        // dest += e * src lowers through a hidden temp so the
                        // scale does not disturb src.
                        let src = self.block_ref(s);
                        let factor = self.expr(e, span)?;
                        let tmp_arr = self.hidden_temp(&dref.indices);
                        let tmp = BlockRef {
                            array: tmp_arr,
                            indices: dref.indices.clone(),
                        };
                        self.emit(I::BlockCopy {
                            dest: tmp.clone(),
                            src,
                        });
                        self.emit(I::BlockScale {
                            dest: tmp.clone(),
                            factor,
                        });
                        self.emit(I::BlockAccumulate {
                            dest: dref,
                            src: tmp,
                            sign: 1.0,
                        });
                    }
                    (op, rhs) => {
                        return Err(lower_err(
                            span,
                            format!("unsupported block assignment {op:?} {rhs:?}"),
                        ));
                    }
                }
                Ok(())
            }
            LValue::Scalar(name, _) => {
                let sid = ScalarId(*self.info.scalar_ids.get(name).expect("sema resolved"));
                match (op, rhs) {
                    (ast::AssignOp::Set, Rhs::Scalar(e)) => {
                        let expr = self.expr(e, span)?;
                        self.emit(I::ScalarAssign { dest: sid, expr });
                    }
                    (ast::AssignOp::Add, Rhs::Scalar(e)) => {
                        let expr = ScalarExpr::Bin(
                            BinOp::Add,
                            Box::new(ScalarExpr::Scalar(sid)),
                            Box::new(self.expr(e, span)?),
                        );
                        self.emit(I::ScalarAssign { dest: sid, expr });
                    }
                    (ast::AssignOp::Sub, Rhs::Scalar(e)) => {
                        let expr = ScalarExpr::Bin(
                            BinOp::Sub,
                            Box::new(ScalarExpr::Scalar(sid)),
                            Box::new(self.expr(e, span)?),
                        );
                        self.emit(I::ScalarAssign { dest: sid, expr });
                    }
                    (ast::AssignOp::Mul, Rhs::Scalar(e)) => {
                        let expr = ScalarExpr::Bin(
                            BinOp::Mul,
                            Box::new(ScalarExpr::Scalar(sid)),
                            Box::new(self.expr(e, span)?),
                        );
                        self.emit(I::ScalarAssign { dest: sid, expr });
                    }
                    (ast::AssignOp::Set | ast::AssignOp::Add, Rhs::Contract(a, b)) => {
                        // s (+)= A(α) * B(α): contract to a hidden scalar-
                        // shaped temp, then fold into the scalar variable.
                        let a = self.block_ref(a);
                        let b = self.block_ref(b);
                        let tmp_arr = self.hidden_temp(&[]);
                        let tmp = BlockRef {
                            array: tmp_arr,
                            indices: vec![],
                        };
                        self.emit(I::BlockContract {
                            dest: tmp.clone(),
                            a,
                            b,
                            accumulate: false,
                        });
                        self.emit(I::ScalarFromBlock {
                            dest: sid,
                            src: tmp,
                            accumulate: matches!(op, ast::AssignOp::Add),
                        });
                    }
                    (op, rhs) => {
                        return Err(lower_err(
                            span,
                            format!("unsupported scalar assignment {op:?} {rhs:?}"),
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn compile_src(src: &str) -> Program {
        let ast = parse(src).unwrap();
        let info = analyze(&ast).unwrap();
        compile_ast(&ast, &info, "test.sial", &LineMap::new(src)).unwrap()
    }

    const HEADER: &str = "sial t\naoindex M = 1, 4\naoindex N = 1, 4\naoindex L = 1, 4\ndistributed D(M,N)\nserved V(M,N)\ntemp x(M,N)\ntemp y(M,N)\nscalar s\n";

    fn body(stmts: &str) -> Program {
        compile_src(&format!("{HEADER}{stmts}\nendsial\n"))
    }

    #[test]
    fn sparse_flag_survives_to_bytecode() {
        let p = compile_src(
            "sial t\naoindex M = 1, 4\nsparse distributed X(M)\nsparse served S(M)\nserved Y(M)\nendsial\n",
        );
        let sparse_of = |want: &str| p.arrays.iter().find(|a| a.name == want).unwrap().sparse;
        assert!(sparse_of("X"));
        assert!(sparse_of("S"));
        assert!(!sparse_of("Y"));
    }

    #[test]
    fn loop_pcs_patched() {
        let p = body("pardo M, N\ndo L\nx(M,N) = 0.0\nenddo L\nendpardo");
        match &p.code[0] {
            I::PardoStart { end_pc, .. } => {
                assert!(matches!(
                    p.code[*end_pc as usize],
                    I::PardoEnd { start_pc: 0 }
                ));
            }
            other => panic!("{other:?}"),
        }
        match &p.code[1] {
            I::DoStart { end_pc, .. } => {
                assert!(matches!(p.code[*end_pc as usize], I::DoEnd { start_pc: 1 }));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p.code.last(), Some(I::Halt)));
    }

    #[test]
    fn if_else_targets() {
        let p = body("if s < 1.0\ns = 1.0\nelse\ns = 2.0\nendif\ns = 3.0");
        // Layout: 0 jf -> else_start; 1 then; 2 jmp -> after; 3 else; 4 after.
        match (&p.code[0], &p.code[2]) {
            (I::JumpIfFalse { target: t1, .. }, I::Jump { target: t2 }) => {
                assert_eq!(*t1, 3);
                assert_eq!(*t2, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_without_else() {
        let p = body("if s < 1.0\ns = 1.0\nendif\ns = 3.0");
        match &p.code[0] {
            I::JumpIfFalse { target, .. } => assert_eq!(*target, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_contraction_synthesizes_hidden_temp() {
        let p = body("pardo M, N\ns += x(M,N) * y(M,N)\nendpardo");
        let hidden: Vec<_> = p
            .arrays
            .iter()
            .filter(|a| a.name.starts_with('$'))
            .collect();
        assert_eq!(hidden.len(), 1);
        assert!(hidden[0].dims.is_empty());
        assert!(p.code.iter().any(|i| matches!(
            i,
            I::ScalarFromBlock {
                accumulate: true,
                ..
            }
        )));
    }

    #[test]
    fn scaled_accumulate_uses_hidden_temp() {
        let p = body("pardo M, N\nx(M,N) += 0.5 * y(M,N)\nendpardo");
        assert!(p.arrays.iter().any(|a| a.name.starts_with("$t")));
        let kinds: Vec<_> = p.code.iter().map(|i| i.mnemonic()).collect();
        assert!(kinds.contains(&"bcopy"));
        assert!(kinds.contains(&"bscale"));
        assert!(kinds.contains(&"baccum"));
    }

    #[test]
    fn procs_lowered_after_halt() {
        let p =
            compile_src("sial t\nscalar s\nproc inc\ns = s + 1.0\nendproc\ncall inc\nendsial\n");
        assert_eq!(p.procs.len(), 1);
        let entry = p.procs[0].entry_pc as usize;
        // Halt terminates main before the proc body.
        assert!(matches!(p.code[entry - 1], I::Halt));
        assert!(matches!(p.code.last(), Some(I::Return)));
        assert!(matches!(p.code[0], I::Call { proc: ProcId(0) }));
    }

    #[test]
    fn compound_scalar_ops() {
        let p = body("s = 1.0\ns += 2.0\ns -= 1.0\ns *= 3.0");
        let assigns = p
            .code
            .iter()
            .filter(|i| matches!(i, I::ScalarAssign { .. }))
            .count();
        assert_eq!(assigns, 4);
    }

    #[test]
    fn put_modes_lowered() {
        let p = body("pardo M, N\nput D(M,N) = x(M,N)\nput D(M,N) += x(M,N)\nendpardo");
        assert!(p.code.iter().any(|i| matches!(
            i,
            I::Put {
                mode: PutMode::Replace,
                ..
            }
        )));
        assert!(p.code.iter().any(|i| matches!(
            i,
            I::Put {
                mode: PutMode::Accumulate,
                ..
            }
        )));
    }

    #[test]
    fn exit_lowered_with_patched_target() {
        let p = body("pardo M\ndo L\nif s > 2.0\nexit\nendif\ns = s + 1.0\nenddo L\nendpardo");
        let (exit_pc, target) = p
            .code
            .iter()
            .enumerate()
            .find_map(|(pc, i)| match i {
                I::ExitLoop { target, .. } => Some((pc as u32, *target)),
                _ => None,
            })
            .expect("exit instruction present");
        // Target is one past the DoEnd.
        assert!(matches!(p.code[target as usize - 1], I::DoEnd { .. }));
        assert!(exit_pc < target);
    }

    #[test]
    fn exit_outside_loop_rejected() {
        let ast = parse("sial t\nscalar s\nexit\nendsial\n").unwrap();
        let err = analyze(&ast).unwrap_err();
        assert!(err[0].message.contains("exit"), "{:?}", err);
    }

    #[test]
    fn line_table_maps_instructions_to_statements() {
        // HEADER is 9 lines; the pardo starts on line 10.
        let p = body("pardo M, N\nx(M,N) = 0.0\nendpardo");
        let lt = p.line_table.as_ref().expect("line table emitted");
        assert_eq!(lt.file, "test.sial");
        assert_eq!(lt.lines.len(), p.code.len());
        // PardoStart and PardoEnd both report the pardo's line; the fill
        // reports its own; the synthetic Halt reports 0 (unknown).
        assert_eq!(lt.lines[0], 10);
        assert_eq!(lt.lines[1], 11);
        assert_eq!(lt.lines[2], 10);
        assert_eq!(*lt.lines.last().unwrap(), 0);
        assert_eq!(p.source_of(1), Some(("test.sial", 11)));
    }

    #[test]
    fn full_paper_example_roundtrips_through_wire() {
        let src = r#"
sial ccsd_term
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
endsial
"#;
        let p = compile_src(src);
        assert_eq!(p.consts, vec!["norb".to_string(), "nocc".to_string()]);
        let bytes = sia_bytecode::encode_program(&p);
        let q = sia_bytecode::decode_program(&bytes).unwrap();
        assert_eq!(p, q);
        // Disassembly mentions the contraction in SIAL-like form.
        let listing = sia_bytecode::disassemble(&q);
        assert!(
            listing.contains("tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)"),
            "{listing}"
        );
    }
}
