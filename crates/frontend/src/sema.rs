//! Semantic analysis: name resolution, index typing, array-kind rules, and
//! structural checks ("the type system can perform useful checks on the
//! consistent use of index variables").
//!
//! The pass is split in two so the incremental compiler database can
//! memoize at proc granularity:
//!
//! * [`resolve_decls`] builds the [`SemaInfo`] descriptor tables from the
//!   declaration section alone;
//! * [`check_unit`] validates one *unit* — the main body or a single
//!   procedure — against a finished `SemaInfo`. Editing one proc therefore
//!   re-checks only that proc.
//!
//! Both stages are multi-error: they collect every [`Diagnostic`] they can
//! find instead of stopping at the first.

use crate::ast::*;
use sia_bytecode::diag::{Diagnostic, Span};
use sia_bytecode::{
    ArrayDecl as BcArray, ArrayKind, IndexDecl as BcIndex, IndexKind, ScalarDecl as BcScalar, Value,
};
use std::collections::{BTreeMap, BTreeSet};

/// The result of semantic analysis: descriptor tables and resolution maps.
#[derive(Debug, Default)]
pub struct SemaInfo {
    /// Index descriptors (bytecode form), in final table order.
    pub indices: Vec<BcIndex>,
    /// Array descriptors, in final table order.
    pub arrays: Vec<BcArray>,
    /// Scalar descriptors.
    pub scalars: Vec<BcScalar>,
    /// Symbolic constant names, in order of first appearance.
    pub consts: Vec<String>,
    /// Name → position in `indices`.
    pub index_ids: BTreeMap<String, u32>,
    /// Name → position in `arrays`.
    pub array_ids: BTreeMap<String, u32>,
    /// Name → position in `scalars`.
    pub scalar_ids: BTreeMap<String, u32>,
    /// Name → position in `consts`.
    pub const_ids: BTreeMap<String, u32>,
    /// Procedure names in declaration order.
    pub proc_order: Vec<String>,
}

/// One independently checkable piece of a program.
pub enum SemaUnit<'a> {
    /// The top-level statement list.
    Main(&'a [Stmt]),
    /// A single procedure body.
    Proc(&'a ProcDef),
}

fn err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error("sema/invalid", span, msg)
}

fn err_unknown(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error("sema/unknown-name", span, msg)
}

fn err_dup(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error("sema/duplicate", span, msg)
}

type SResult<T = ()> = Result<T, Diagnostic>;

/// Builds the descriptor tables from the declaration section, reporting
/// every declaration error (bad decls are skipped, good ones kept).
pub fn resolve_decls(ast: &AstProgram) -> (SemaInfo, Vec<Diagnostic>) {
    let mut c = DeclCollector {
        info: SemaInfo::default(),
        diags: Vec::new(),
    };
    c.collect(ast);
    (c.info, c.diags)
}

/// Checks one unit (main body or one proc) against resolved declarations.
pub fn check_unit(info: &SemaInfo, unit: SemaUnit<'_>) -> Vec<Diagnostic> {
    let mut c = UnitChecker {
        info,
        bound: Vec::new(),
        in_pardo: false,
        do_depth: 0,
        call_stack: Vec::new(),
        diags: Vec::new(),
    };
    match unit {
        SemaUnit::Main(body) => c.check_stmts(body),
        SemaUnit::Proc(p) => {
            // SIAL procedures do not capture enclosing loop indices; they
            // check in an empty loop context seeded with their own name for
            // self-recursion detection.
            c.call_stack.push(p.name.clone());
            c.check_stmts(&p.body);
        }
    }
    c.diags
}

/// Whole-program analysis: resolves declarations, then checks every unit.
/// Returns all diagnostics found, or the tables if there were none.
pub fn analyze(ast: &AstProgram) -> Result<SemaInfo, Vec<Diagnostic>> {
    let (info, mut diags) = resolve_decls(ast);
    diags.extend(check_unit(&info, SemaUnit::Main(&ast.body)));
    for p in &ast.procs {
        diags.extend(check_unit(&info, SemaUnit::Proc(p)));
    }
    if diags.is_empty() {
        Ok(info)
    } else {
        Err(diags)
    }
}

// ---- declaration collection ------------------------------------------------

struct DeclCollector {
    info: SemaInfo,
    diags: Vec<Diagnostic>,
}

impl DeclCollector {
    fn declare_name(&mut self, name: &str, span: Span, taken: &mut BTreeSet<String>) -> SResult {
        if !taken.insert(name.to_string()) {
            return Err(err_dup(span, format!("`{name}` declared more than once")));
        }
        Ok(())
    }

    fn bound_value(&mut self, b: &Bound) -> Value {
        match b {
            Bound::Lit(x) => Value::Lit(*x),
            Bound::Sym(name) => {
                let id = if let Some(&id) = self.info.const_ids.get(name) {
                    id
                } else {
                    let id = self.info.consts.len() as u32;
                    self.info.consts.push(name.clone());
                    self.info.const_ids.insert(name.clone(), id);
                    id
                };
                Value::Sym(sia_bytecode::ConstId(id))
            }
        }
    }

    fn collect(&mut self, ast: &AstProgram) {
        let mut taken: BTreeSet<String> = BTreeSet::new();

        // First pass: index declarations (so subindices can reference them in
        // any order), then everything else.
        for d in &ast.decls {
            if let Decl::Index {
                name,
                kind,
                low,
                high,
                span,
            } = d
            {
                if let Err(e) = self.declare_name(name, *span, &mut taken) {
                    self.diags.push(e);
                    continue;
                }
                let bc_kind = match kind {
                    AstIndexKind::Ao => IndexKind::AoIndex,
                    AstIndexKind::Mo => IndexKind::MoIndex,
                    AstIndexKind::MoA => IndexKind::MoAIndex,
                    AstIndexKind::MoB => IndexKind::MoBIndex,
                    AstIndexKind::La => IndexKind::LaIndex,
                    AstIndexKind::Simple => IndexKind::Simple,
                };
                let low_v = self.bound_value(low);
                let high_v = self.bound_value(high);
                self.info
                    .index_ids
                    .insert(name.clone(), self.info.indices.len() as u32);
                self.info.indices.push(BcIndex {
                    name: name.clone(),
                    kind: bc_kind,
                    low: low_v,
                    high: high_v,
                });
            }
        }
        // Second pass: subindices (may appear anywhere relative to the arrays
        // that use them).
        for d in &ast.decls {
            if let Decl::Subindex { name, parent, span } = d {
                if let Err(e) = self.subindex_decl(name, parent, *span, &mut taken) {
                    self.diags.push(e);
                }
            }
        }
        // Third pass: arrays and scalars.
        for d in &ast.decls {
            let r = match d {
                Decl::Index { .. } | Decl::Subindex { .. } => Ok(()),
                Decl::Array {
                    name,
                    kind,
                    dims,
                    sparse,
                    span,
                } => self.array_decl(name, kind, dims, *sparse, *span, &mut taken),
                Decl::Scalar { name, init, span } => {
                    self.declare_name(name, *span, &mut taken).map(|()| {
                        self.info
                            .scalar_ids
                            .insert(name.clone(), self.info.scalars.len() as u32);
                        self.info.scalars.push(BcScalar {
                            name: name.clone(),
                            init: *init,
                        });
                    })
                }
            };
            if let Err(e) = r {
                self.diags.push(e);
            }
        }
        // Constants share the namespace: reject a constant that collides with
        // a declared name (it would be ambiguous in expressions).
        for c in &self.info.consts.clone() {
            if taken.contains(c) {
                self.diags.push(err(
                    Span::default(),
                    format!("`{c}` is used as a symbolic constant but also declared"),
                ));
            }
        }
        // Procedures: unique names.
        let mut proc_names = BTreeSet::new();
        for p in &ast.procs {
            if !proc_names.insert(p.name.clone()) {
                self.diags.push(err_dup(
                    p.span,
                    format!("procedure `{}` defined twice", p.name),
                ));
                continue;
            }
            self.info.proc_order.push(p.name.clone());
        }
    }

    fn subindex_decl(
        &mut self,
        name: &str,
        parent: &str,
        span: Span,
        taken: &mut BTreeSet<String>,
    ) -> SResult {
        self.declare_name(name, span, taken)?;
        let Some(&pid) = self.info.index_ids.get(parent) else {
            return Err(err_unknown(
                span,
                format!("unknown parent index `{parent}`"),
            ));
        };
        let pkind = self.info.indices[pid as usize].kind;
        if !pkind.is_segment() {
            return Err(err(
                span,
                format!("`{parent}` is a simple index and cannot have subindices"),
            ));
        }
        if matches!(pkind, IndexKind::Subindex { .. }) {
            return Err(err(
                span,
                format!("`{parent}` is itself a subindex; nesting is not supported"),
            ));
        }
        self.info
            .index_ids
            .insert(name.to_string(), self.info.indices.len() as u32);
        self.info.indices.push(BcIndex {
            name: name.to_string(),
            kind: IndexKind::Subindex {
                parent: sia_bytecode::IndexId(pid),
            },
            // Subindex ranges derive from the parent at runtime
            // (the subsegment count is a runtime parameter).
            low: Value::Lit(0),
            high: Value::Lit(0),
        });
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn array_decl(
        &mut self,
        name: &str,
        kind: &AstArrayKind,
        dims: &[String],
        sparse: bool,
        span: Span,
        taken: &mut BTreeSet<String>,
    ) -> SResult {
        self.declare_name(name, span, taken)?;
        let bc_kind = match kind {
            AstArrayKind::Static => ArrayKind::Static,
            AstArrayKind::Temp => ArrayKind::Temp,
            AstArrayKind::Local => ArrayKind::Local,
            AstArrayKind::Distributed => ArrayKind::Distributed,
            AstArrayKind::Served => ArrayKind::Served,
        };
        if sparse && !bc_kind.is_remote() {
            return Err(err(
                span,
                format!(
                    "array `{name}`: `sparse` applies only to distributed or \
                     served arrays, not {bc_kind:?}"
                ),
            ));
        }
        let mut dim_ids = Vec::with_capacity(dims.len());
        for dim in dims {
            let Some(&id) = self.info.index_ids.get(dim) else {
                return Err(err_unknown(
                    span,
                    format!("array `{name}`: unknown index `{dim}`"),
                ));
            };
            if !self.info.indices[id as usize].kind.is_segment() {
                return Err(err(
                    span,
                    format!(
                        "array `{name}`: `{dim}` is a simple index and cannot \
                         shape an array dimension"
                    ),
                ));
            }
            dim_ids.push(sia_bytecode::IndexId(id));
        }
        if dim_ids.is_empty() {
            return Err(err(span, format!("array `{name}` has no dimensions")));
        }
        self.info
            .array_ids
            .insert(name.to_string(), self.info.arrays.len() as u32);
        self.info.arrays.push(BcArray {
            name: name.to_string(),
            kind: bc_kind,
            dims: dim_ids,
            sparse,
        });
        Ok(())
    }
}

// ---- unit checking ---------------------------------------------------------

struct UnitChecker<'a> {
    info: &'a SemaInfo,
    /// Index names currently bound by an enclosing loop.
    bound: Vec<String>,
    /// True while inside a `pardo` body.
    in_pardo: bool,
    /// Nesting depth of sequential `do`/`do in` loops.
    do_depth: usize,
    /// Call stack for recursion detection.
    call_stack: Vec<String>,
    diags: Vec<Diagnostic>,
}

impl<'a> UnitChecker<'a> {
    // ---- helpers ------------------------------------------------------------

    fn index_id(&self, name: &str, span: Span) -> SResult<u32> {
        self.info
            .index_ids
            .get(name)
            .copied()
            .ok_or_else(|| err_unknown(span, format!("unknown index `{name}`")))
    }

    fn index_kind(&self, id: u32) -> IndexKind {
        self.info.indices[id as usize].kind
    }

    /// The segment-kind of an index, looking through one level of subindex.
    fn effective_kind(&self, id: u32) -> IndexKind {
        match self.index_kind(id) {
            IndexKind::Subindex { parent } => self.index_kind(parent.0),
            k => k,
        }
    }

    fn require_bound(&self, name: &str, span: Span) -> SResult {
        if self.bound.iter().any(|b| b == name) {
            Ok(())
        } else {
            Err(err(
                span,
                format!("index `{name}` is not defined by an enclosing loop here"),
            ))
        }
    }

    fn check_block_ref(&self, b: &BlockExpr) -> SResult {
        let Some(&aid) = self.info.array_ids.get(&b.array) else {
            return Err(err_unknown(b.span, format!("unknown array `{}`", b.array)));
        };
        let decl = &self.info.arrays[aid as usize];
        if decl.dims.len() != b.indices.len() {
            return Err(err(
                b.span,
                format!(
                    "array `{}` has rank {}, referenced with {} indices",
                    b.array,
                    decl.dims.len(),
                    b.indices.len()
                ),
            ));
        }
        for (d, idx_name) in b.indices.iter().enumerate() {
            let iid = self.index_id(idx_name, b.span)?;
            self.require_bound(idx_name, b.span)?;
            let ref_kind = self.effective_kind(iid);
            let decl_kind = self.effective_kind(decl.dims[d].0);
            if ref_kind != decl_kind {
                return Err(err(
                    b.span,
                    format!(
                        "array `{}` dimension {}: index `{}` has kind {:?} but the \
                         dimension was declared {:?}",
                        b.array,
                        d + 1,
                        idx_name,
                        ref_kind,
                        decl_kind
                    ),
                ));
            }
            if matches!(self.index_kind(iid), IndexKind::Simple) {
                return Err(err(
                    b.span,
                    format!("simple index `{idx_name}` cannot address array segments"),
                ));
            }
        }
        Ok(())
    }

    fn array_kind(&self, name: &str, span: Span) -> SResult<ArrayKind> {
        let Some(&aid) = self.info.array_ids.get(name) else {
            return Err(err_unknown(span, format!("unknown array `{name}`")));
        };
        Ok(self.info.arrays[aid as usize].kind)
    }

    /// Checks a scalar expression; `restrict` lists index names additionally
    /// allowed (used by `where` clauses to restrict to the pardo indices).
    fn check_expr(&self, e: &Expr, span: Span, restrict: Option<&[String]>) -> SResult {
        match e {
            Expr::Num(_) => Ok(()),
            Expr::Name(n) => {
                if self.info.scalar_ids.contains_key(n) || self.info.const_ids.contains_key(n) {
                    return Ok(());
                }
                if self.info.index_ids.contains_key(n) {
                    if let Some(allowed) = restrict {
                        if !allowed.iter().any(|a| a == n) {
                            return Err(err(
                                span,
                                format!(
                                    "`{n}` is not an index of this pardo; where clauses may \
                                     only reference the pardo's own indices"
                                ),
                            ));
                        }
                        return Ok(());
                    }
                    return self.require_bound(n, span);
                }
                Err(err_unknown(
                    span,
                    format!("unknown name `{n}` in expression"),
                ))
            }
            Expr::Bin(_, l, r) => {
                self.check_expr(l, span, restrict)?;
                self.check_expr(r, span, restrict)
            }
            Expr::Neg(x) => self.check_expr(x, span, restrict),
        }
    }

    fn check_cond(&self, c: &Cond, span: Span, restrict: Option<&[String]>) -> SResult {
        match c {
            Cond::Cmp(l, _, r) => {
                self.check_expr(l, span, restrict)?;
                self.check_expr(r, span, restrict)
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.check_cond(a, span, restrict)?;
                self.check_cond(b, span, restrict)
            }
            Cond::Not(x) => self.check_cond(x, span, restrict),
        }
    }

    /// Validates contraction index structure: dest indices come from exactly
    /// one operand; operand indices shared and absent from dest are summed;
    /// nothing dangles.
    fn check_contraction(
        &self,
        dest: &[String],
        a: &BlockExpr,
        b: &BlockExpr,
        span: Span,
    ) -> SResult {
        let in_a = |n: &String| a.indices.contains(n);
        let in_b = |n: &String| b.indices.contains(n);
        for lists in [&a.indices, &b.indices] {
            for (i, n) in lists.iter().enumerate() {
                if lists[..i].contains(n) {
                    return Err(err(
                        span,
                        format!("index `{n}` repeated within one contraction operand"),
                    ));
                }
            }
        }
        for n in dest {
            match (in_a(n), in_b(n)) {
                (true, true) => {
                    return Err(err(
                        span,
                        format!("index `{n}` appears in both operands and the result"),
                    ));
                }
                (false, false) => {
                    return Err(err(
                        span,
                        format!("result index `{n}` appears in neither operand"),
                    ));
                }
                _ => {}
            }
        }
        for n in a.indices.iter().chain(&b.indices) {
            let contracted = in_a(n) && in_b(n) && !dest.contains(n);
            if !contracted && !dest.contains(n) {
                return Err(err(
                    span,
                    format!("operand index `{n}` is neither contracted nor in the result"),
                ));
            }
        }
        Ok(())
    }

    /// A block the worker can read locally: any kind (distributed/served
    /// blocks must have been fetched — enforced at runtime by the
    /// block-availability check, as in the original SIP).
    fn check_readable(&self, b: &BlockExpr) -> SResult {
        self.check_block_ref(b)
    }

    /// A block the worker can write directly (not through put/prepare).
    fn check_writable(&self, b: &BlockExpr) -> SResult {
        self.check_block_ref(b)?;
        let kind = self.array_kind(&b.array, b.span)?;
        if kind.is_remote() {
            return Err(err(
                b.span,
                format!(
                    "cannot assign directly to {} array `{}`; use `put`/`prepare`",
                    match kind {
                        ArrayKind::Distributed => "distributed",
                        _ => "served",
                    },
                    b.array
                ),
            ));
        }
        Ok(())
    }

    // ---- statements ------------------------------------------------------------

    fn check_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            if let Err(e) = self.check_stmt(s) {
                self.diags.push(e);
            }
        }
    }

    fn bind_index(&mut self, name: &str, span: Span) -> SResult {
        if self.bound.iter().any(|b| b == name) {
            return Err(err(
                span,
                format!("index `{name}` is already bound by an enclosing loop"),
            ));
        }
        self.bound.push(name.to_string());
        Ok(())
    }

    /// Runs `f` and restores the loop-context state afterwards, so an error
    /// part-way through a loop header cannot leak bindings into the
    /// following statements (the checker keeps going after errors).
    fn scoped(&mut self, f: impl FnOnce(&mut Self) -> SResult) -> SResult {
        let bound_len = self.bound.len();
        let in_pardo = self.in_pardo;
        let do_depth = self.do_depth;
        let r = f(self);
        self.bound.truncate(bound_len);
        self.in_pardo = in_pardo;
        self.do_depth = do_depth;
        r
    }

    fn check_stmt(&mut self, s: &Stmt) -> SResult {
        match s {
            Stmt::Pardo {
                indices,
                wheres,
                body,
                span,
            } => self.scoped(|c| {
                if c.in_pardo {
                    return Err(err(
                        *span,
                        "pardo loops may not be syntactically nested (the paper allows \
                         concurrency only between *separate* pardo loops)",
                    ));
                }
                for n in indices {
                    let id = c.index_id(n, *span)?;
                    if matches!(c.index_kind(id), IndexKind::Subindex { .. }) {
                        return Err(err(
                            *span,
                            format!(
                                "subindex `{n}` cannot head a plain pardo; use `pardo {n} in …`"
                            ),
                        ));
                    }
                    c.bind_index(n, *span)?;
                }
                for w in wheres {
                    c.check_cond(w, *span, Some(indices))?;
                }
                c.in_pardo = true;
                c.check_stmts(body);
                Ok(())
            }),
            Stmt::Do { index, body, span } => self.scoped(|c| {
                let id = c.index_id(index, *span)?;
                if matches!(c.index_kind(id), IndexKind::Subindex { .. }) {
                    return Err(err(
                        *span,
                        format!("subindex `{index}` requires `do {index} in <parent>`"),
                    ));
                }
                c.bind_index(index, *span)?;
                c.do_depth += 1;
                c.check_stmts(body);
                Ok(())
            }),
            Stmt::DoIn {
                sub,
                parent,
                parallel: _,
                body,
                span,
            } => self.scoped(|c| {
                let sid = c.index_id(sub, *span)?;
                let pid = c.index_id(parent, *span)?;
                match c.index_kind(sid) {
                    IndexKind::Subindex { parent: declared } if declared.0 == pid => {}
                    IndexKind::Subindex { .. } => {
                        return Err(err(
                            *span,
                            format!("`{sub}` is not a subindex of `{parent}`"),
                        ));
                    }
                    _ => {
                        return Err(err(*span, format!("`{sub}` is not a subindex")));
                    }
                }
                // The super index must be well-defined here (§IV-E.3).
                c.require_bound(parent, *span)?;
                c.bind_index(sub, *span)?;
                c.do_depth += 1;
                c.check_stmts(body);
                Ok(())
            }),
            Stmt::If {
                cond,
                then,
                els,
                span,
            } => {
                if let Err(e) = self.check_cond(cond, *span, None) {
                    self.diags.push(e);
                }
                self.check_stmts(then);
                self.check_stmts(els);
                Ok(())
            }
            Stmt::Call { name, span } => {
                if !self.info.proc_order.iter().any(|p| p == name) {
                    return Err(err_unknown(*span, format!("unknown procedure `{name}`")));
                }
                if self.call_stack.iter().any(|c| c == name) {
                    return Err(err(*span, format!("recursive call to `{name}`")));
                }
                // The callee body is checked as its own unit; here we only
                // resolve the name.
                Ok(())
            }
            Stmt::Get(b) => {
                self.check_block_ref(b)?;
                let kind = self.array_kind(&b.array, b.span)?;
                if kind != ArrayKind::Distributed {
                    return Err(err(
                        b.span,
                        format!(
                            "`get` requires a distributed array; `{}` is {kind:?}",
                            b.array
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::Request(b) => {
                self.check_block_ref(b)?;
                let kind = self.array_kind(&b.array, b.span)?;
                if kind != ArrayKind::Served {
                    return Err(err(
                        b.span,
                        format!(
                            "`request` requires a served array; `{}` is {kind:?}",
                            b.array
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::Put { dest, src, .. } => {
                self.check_block_ref(dest)?;
                self.check_readable(src)?;
                let kind = self.array_kind(&dest.array, dest.span)?;
                if kind != ArrayKind::Distributed {
                    return Err(err(
                        dest.span,
                        format!(
                            "`put` requires a distributed array; `{}` is {kind:?}",
                            dest.array
                        ),
                    ));
                }
                if self.array_kind(&src.array, src.span)?.is_remote() {
                    return Err(err(
                        src.span,
                        "`put` source must be a local block (temp/local/static)",
                    ));
                }
                Ok(())
            }
            Stmt::Prepare { dest, src, .. } => {
                self.check_block_ref(dest)?;
                self.check_readable(src)?;
                let kind = self.array_kind(&dest.array, dest.span)?;
                if kind != ArrayKind::Served {
                    return Err(err(
                        dest.span,
                        format!(
                            "`prepare` requires a served array; `{}` is {kind:?}",
                            dest.array
                        ),
                    ));
                }
                if self.array_kind(&src.array, src.span)?.is_remote() {
                    return Err(err(
                        src.span,
                        "`prepare` source must be a local block (temp/local/static)",
                    ));
                }
                Ok(())
            }
            Stmt::Assign {
                dest,
                op,
                rhs,
                span,
            } => self.check_assign(dest, *op, rhs, *span),
            Stmt::Execute { args, .. } => {
                for a in args {
                    let r = match a {
                        ExecArg::Block(b) => self.check_block_ref(b),
                        ExecArg::Name(n, sp) => {
                            if self.info.scalar_ids.contains_key(n)
                                || self.info.const_ids.contains_key(n)
                            {
                                Ok(())
                            } else if self.info.index_ids.contains_key(n) {
                                self.require_bound(n, *sp)
                            } else {
                                Err(err_unknown(
                                    *sp,
                                    format!("unknown `execute` argument `{n}`"),
                                ))
                            }
                        }
                        ExecArg::Num(_) => Ok(()),
                    };
                    if let Err(e) = r {
                        self.diags.push(e);
                    }
                }
                Ok(())
            }
            Stmt::Exit(span) => {
                if self.do_depth == 0 {
                    return Err(err(
                        *span,
                        "`exit` must appear inside a `do` or `do … in` loop",
                    ));
                }
                Ok(())
            }
            Stmt::Barrier(_, _) => Ok(()),
            Stmt::BlocksToList { array, span, .. } | Stmt::ListToBlocks { array, span, .. } => {
                let kind = self.array_kind(array, *span)?;
                if kind != ArrayKind::Distributed && kind != ArrayKind::Served {
                    return Err(err(
                        *span,
                        "checkpointing applies to distributed or served arrays",
                    ));
                }
                Ok(())
            }
            Stmt::Print { items, span } => {
                for i in items {
                    if let AstPrintItem::Expr(e) = i {
                        if let Err(d) = self.check_expr(e, *span, None) {
                            self.diags.push(d);
                        }
                    }
                }
                Ok(())
            }
            Stmt::Create(name, span) | Stmt::Delete(name, span) => {
                let kind = self.array_kind(name, *span)?;
                if !kind.is_remote() && kind != ArrayKind::Local {
                    return Err(err(
                        *span,
                        format!("`create`/`delete` applies to distributed, served, or local arrays, not {kind:?}"),
                    ));
                }
                Ok(())
            }
        }
    }

    fn check_assign(&mut self, dest: &LValue, op: AssignOp, rhs: &Rhs, span: Span) -> SResult {
        match dest {
            LValue::Block(d) => {
                self.check_writable(d)?;
                match (op, rhs) {
                    (AssignOp::Set | AssignOp::Add | AssignOp::Sub, Rhs::Block(srcb)) => {
                        self.check_readable(srcb)?;
                        // Copy/accumulate: both refs must use the same index
                        // set (possibly permuted).
                        let mut a: Vec<&String> = d.indices.iter().collect();
                        let mut b: Vec<&String> = srcb.indices.iter().collect();
                        a.sort();
                        b.sort();
                        if a != b {
                            return Err(err(
                                span,
                                format!(
                                    "block assignment `{} = {}` must use the same index set \
                                     on both sides (a permutation), got {:?} vs {:?}",
                                    d.array, srcb.array, d.indices, srcb.indices
                                ),
                            ));
                        }
                        Ok(())
                    }
                    (AssignOp::Set | AssignOp::Add, Rhs::Contract(a, b)) => {
                        self.check_readable(a)?;
                        self.check_readable(b)?;
                        self.check_contraction(&d.indices, a, b, span)
                    }
                    (AssignOp::Set, Rhs::Scalar(e)) => self.check_expr(e, span, None),
                    (AssignOp::Mul, Rhs::Scalar(e)) => self.check_expr(e, span, None),
                    (AssignOp::Set | AssignOp::Add, Rhs::ScaledBlock(e, srcb)) => {
                        self.check_expr(e, span, None)?;
                        self.check_readable(srcb)?;
                        let mut a: Vec<&String> = d.indices.iter().collect();
                        let mut b: Vec<&String> = srcb.indices.iter().collect();
                        a.sort();
                        b.sort();
                        if a != b {
                            return Err(err(
                                span,
                                "scaled block assignment must use the same index set on both sides",
                            ));
                        }
                        Ok(())
                    }
                    (op, rhs) => Err(err(
                        span,
                        format!("unsupported block assignment form {op:?} with {rhs:?}"),
                    )),
                }
            }
            LValue::Scalar(name, name_span) => {
                if !self.info.scalar_ids.contains_key(name) {
                    return Err(err_unknown(*name_span, format!("unknown scalar `{name}`")));
                }
                match (op, rhs) {
                    (
                        AssignOp::Set | AssignOp::Add | AssignOp::Sub | AssignOp::Mul,
                        Rhs::Scalar(e),
                    ) => self.check_expr(e, span, None),
                    (AssignOp::Set | AssignOp::Add, Rhs::Contract(a, b)) => {
                        self.check_readable(a)?;
                        self.check_readable(b)?;
                        // Full contraction: result has no free indices.
                        self.check_contraction(&[], a, b, span)
                    }
                    (op, rhs) => Err(err(
                        span,
                        format!("unsupported scalar assignment form {op:?} with {rhs:?}"),
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<SemaInfo, Vec<Diagnostic>> {
        analyze(&parse(src).unwrap())
    }

    const HEADER: &str = "sial t\naoindex M = 1, 4\naoindex N = 1, 4\naoindex L = 1, 4\nmoindex I = 1, 2\ndistributed D(M,N)\nserved V(M,N)\ntemp x(M,N)\ntemp y(M,N)\nscalar s\n";

    fn with_body(body: &str) -> String {
        format!("{HEADER}{body}\nendsial\n")
    }

    #[test]
    fn clean_program_passes() {
        let info = analyze_src(&with_body(
            "pardo M, N\nx(M,N) = 0.0\ndo L\nget D(L,N)\ny(M,N) += x(M,L) * D(L,N)\nenddo L\nput D(M,N) += y(M,N)\nendpardo",
        ))
        .unwrap();
        assert_eq!(info.arrays.len(), 4);
        assert_eq!(info.indices.len(), 4);
    }

    #[test]
    fn nested_pardo_rejected() {
        let e = analyze_src(&with_body(
            "pardo M\npardo N\nx(M,N) = 0.0\nendpardo\nendpardo",
        ))
        .unwrap_err();
        assert!(e[0].message.contains("nested"));
    }

    #[test]
    fn unbound_index_in_block_ref() {
        let e = analyze_src(&with_body("pardo M\nx(M,N) = 0.0\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("not defined by an enclosing loop"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let e = analyze_src(&with_body("pardo M, I\nx(M,I) = 0.0\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("kind"), "{:?}", e);
    }

    #[test]
    fn get_on_non_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nget V(M,N)\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("distributed"));
    }

    #[test]
    fn request_on_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nrequest D(M,N)\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("served"));
    }

    #[test]
    fn direct_write_to_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nD(M,N) = 0.0\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("put"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let src = "sial t\naoindex M = 1, 4\nscalar M\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e[0].message.contains("more than once"));
        assert_eq!(e[0].code, "sema/duplicate");
    }

    #[test]
    fn contraction_structure_checked() {
        // y(M,N) = x(M,N) * x(M,N): M,N in both operands AND the result.
        let e =
            analyze_src(&with_body("pardo M, N\ny(M,N) = x(M,N) * x(M,N)\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("both operands"));
    }

    #[test]
    fn scalar_contraction_allowed() {
        analyze_src(&with_body("pardo M, N\ns = x(M,N) * y(M,N)\nendpardo")).unwrap();
    }

    #[test]
    fn scalar_contraction_with_free_index_rejected() {
        // s = x(M,N) * y(N,M) contracts fully; but x(M,N)*y(M,N) also fully
        // contracts. Use mismatched: need a case with a dangling index — use
        // a rank-2 times rank-2 sharing one index.
        let e = analyze_src(&with_body("pardo M, N\ns = x(M,N) * y(M,M)\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn where_restricted_to_pardo_indices() {
        let ok = analyze_src(&with_body("pardo M, N where M < N\nx(M,N) = 0.0\nendpardo"));
        assert!(ok.is_ok());
        let e = analyze_src(&with_body("pardo M where M < N\nx(M,M) = 0.0\nendpardo")).unwrap_err();
        assert!(e[0].message.contains("pardo's own indices"));
    }

    #[test]
    fn subindex_rules() {
        let src = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\nlocal Xi(i,j)\ntemp Xii(ii,j)\npardo j\ndo i\ndo ii in i\nXii(ii,j) = Xi(ii,j)\nenddo\nenddo\nendpardo\nendsial\n";
        analyze_src(src).unwrap();
    }

    #[test]
    fn do_in_wrong_parent_rejected() {
        let src2 = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\ntemp X(i,j)\npardo j\ndo ii in j\nX(j,j) = 0.0\nenddo\nendpardo\nendsial\n";
        let e = analyze_src(src2).unwrap_err();
        assert!(e[0].message.contains("not a subindex of"));
    }

    #[test]
    fn do_in_without_bound_parent_rejected() {
        let src = "sial t\naoindex i = 1, 4\nsubindex ii of i\ntemp X(i)\ndo ii in i\nX(i) = 0.0\nenddo\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e[0].message.contains("not defined by an enclosing loop"));
    }

    #[test]
    fn recursion_rejected() {
        let src = "sial t\nscalar s\nproc a\ncall a\nendproc\ncall a\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e[0].message.contains("recursive"));
    }

    #[test]
    fn unknown_procedure_rejected() {
        let e = analyze_src(&with_body("call nope")).unwrap_err();
        assert!(e[0].message.contains("unknown procedure"));
        assert_eq!(e[0].code, "sema/unknown-name");
    }

    #[test]
    fn const_collision_rejected() {
        // `s` is declared scalar and also used as a symbolic bound.
        let src = "sial t\nscalar s\naoindex M = 1, s\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e[0].message.contains("symbolic constant"));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nx(M) = 0.0\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn permutation_assignment_checked() {
        let ok = analyze_src(&with_body("pardo M, N\nx(N,M) = y(M,N)\nendpardo"));
        assert!(ok.is_ok());
        let e = analyze_src(&with_body("pardo M, N\nx(M,M) = y(M,N)\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn simple_index_cannot_shape_arrays() {
        let src = "sial t\nindex n = 1, 10\ntemp X(n)\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e[0].message.contains("simple index"));
    }

    #[test]
    fn multiple_errors_reported_in_one_pass() {
        // Two independent bad statements: both reported.
        let e = analyze_src(&with_body(
            "pardo M, N\nget V(M,N)\nrequest D(M,N)\nx(M,N) = 0.0\nendpardo",
        ))
        .unwrap_err();
        assert_eq!(e.len(), 2, "{e:?}");
        assert!(e[0].message.contains("`get` requires"));
        assert!(e[1].message.contains("`request` requires"));
    }

    #[test]
    fn per_unit_checking_isolates_procs() {
        let src = "sial t\nscalar s\nproc good\ns = 1.0\nendproc\nproc bad\ns = nope\nendproc\ncall good\nendsial\n";
        let ast = parse(src).unwrap();
        let (info, dd) = resolve_decls(&ast);
        assert!(dd.is_empty());
        assert!(check_unit(&info, SemaUnit::Main(&ast.body)).is_empty());
        assert!(check_unit(&info, SemaUnit::Proc(&ast.procs[0])).is_empty());
        let bad = check_unit(&info, SemaUnit::Proc(&ast.procs[1]));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown name `nope`"));
    }
}
