//! Semantic analysis: name resolution, index typing, array-kind rules, and
//! structural checks ("the type system can perform useful checks on the
//! consistent use of index variables").
//!
//! Successful analysis yields a [`SemaInfo`] holding the final descriptor
//! tables (in bytecode form) plus name→id maps the lowering pass uses.

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use sia_bytecode::{
    ArrayDecl as BcArray, ArrayKind, IndexDecl as BcIndex, IndexKind, ScalarDecl as BcScalar, Value,
};
use std::collections::{BTreeMap, BTreeSet};

/// The result of semantic analysis: descriptor tables and resolution maps.
#[derive(Debug, Default)]
pub struct SemaInfo {
    /// Index descriptors (bytecode form), in final table order.
    pub indices: Vec<BcIndex>,
    /// Array descriptors, in final table order.
    pub arrays: Vec<BcArray>,
    /// Scalar descriptors.
    pub scalars: Vec<BcScalar>,
    /// Symbolic constant names, in order of first appearance.
    pub consts: Vec<String>,
    /// Name → position in `indices`.
    pub index_ids: BTreeMap<String, u32>,
    /// Name → position in `arrays`.
    pub array_ids: BTreeMap<String, u32>,
    /// Name → position in `scalars`.
    pub scalar_ids: BTreeMap<String, u32>,
    /// Name → position in `consts`.
    pub const_ids: BTreeMap<String, u32>,
    /// Procedure names in declaration order.
    pub proc_order: Vec<String>,
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(ErrorKind::Sema, line, msg)
}

struct Analyzer<'a> {
    ast: &'a AstProgram,
    info: SemaInfo,
    /// Index names currently bound by an enclosing loop.
    bound: Vec<String>,
    /// True while inside a `pardo` body.
    in_pardo: bool,
    /// Nesting depth of sequential `do`/`do in` loops.
    do_depth: usize,
    /// Call stack for recursion detection.
    call_stack: Vec<String>,
}

/// Runs semantic analysis over a parsed program.
pub fn analyze(ast: &AstProgram) -> Result<SemaInfo, CompileError> {
    let mut a = Analyzer {
        ast,
        info: SemaInfo::default(),
        bound: Vec::new(),
        in_pardo: false,
        do_depth: 0,
        call_stack: Vec::new(),
    };
    a.collect_decls()?;
    a.check_stmts(&ast.body)?;
    // Procedures are checked in an empty loop context of their own: SIAL
    // procedures do not capture enclosing loop indices.
    for p in &ast.procs {
        a.bound.clear();
        a.in_pardo = false;
        a.do_depth = 0;
        a.call_stack.push(p.name.clone());
        a.check_stmts(&p.body)?;
        a.call_stack.pop();
    }
    Ok(a.info)
}

impl<'a> Analyzer<'a> {
    // ---- declarations -----------------------------------------------------

    fn declare_name(
        &mut self,
        name: &str,
        line: u32,
        taken: &mut BTreeSet<String>,
    ) -> Result<(), CompileError> {
        if !taken.insert(name.to_string()) {
            return Err(err(line, format!("`{name}` declared more than once")));
        }
        Ok(())
    }

    fn bound_value(&mut self, b: &Bound) -> Value {
        match b {
            Bound::Lit(x) => Value::Lit(*x),
            Bound::Sym(name) => {
                let id = if let Some(&id) = self.info.const_ids.get(name) {
                    id
                } else {
                    let id = self.info.consts.len() as u32;
                    self.info.consts.push(name.clone());
                    self.info.const_ids.insert(name.clone(), id);
                    id
                };
                Value::Sym(sia_bytecode::ConstId(id))
            }
        }
    }

    fn collect_decls(&mut self) -> Result<(), CompileError> {
        let mut taken: BTreeSet<String> = BTreeSet::new();

        // First pass: index declarations (so subindices can reference them in
        // any order), then everything else.
        for d in &self.ast.decls {
            if let Decl::Index {
                name,
                kind,
                low,
                high,
                line,
            } = d
            {
                self.declare_name(name, *line, &mut taken)?;
                let bc_kind = match kind {
                    AstIndexKind::Ao => IndexKind::AoIndex,
                    AstIndexKind::Mo => IndexKind::MoIndex,
                    AstIndexKind::MoA => IndexKind::MoAIndex,
                    AstIndexKind::MoB => IndexKind::MoBIndex,
                    AstIndexKind::La => IndexKind::LaIndex,
                    AstIndexKind::Simple => IndexKind::Simple,
                };
                let low_v = self.bound_value(low);
                let high_v = self.bound_value(high);
                self.info
                    .index_ids
                    .insert(name.clone(), self.info.indices.len() as u32);
                self.info.indices.push(BcIndex {
                    name: name.clone(),
                    kind: bc_kind,
                    low: low_v,
                    high: high_v,
                });
            }
        }
        // Second pass: subindices (may appear anywhere relative to the arrays
        // that use them).
        for d in &self.ast.decls {
            if let Decl::Subindex { name, parent, line } = d {
                self.declare_name(name, *line, &mut taken)?;
                let Some(&pid) = self.info.index_ids.get(parent) else {
                    return Err(err(*line, format!("unknown parent index `{parent}`")));
                };
                let pkind = self.info.indices[pid as usize].kind;
                if !pkind.is_segment() {
                    return Err(err(
                        *line,
                        format!("`{parent}` is a simple index and cannot have subindices"),
                    ));
                }
                if matches!(pkind, IndexKind::Subindex { .. }) {
                    return Err(err(
                        *line,
                        format!("`{parent}` is itself a subindex; nesting is not supported"),
                    ));
                }
                self.info
                    .index_ids
                    .insert(name.clone(), self.info.indices.len() as u32);
                self.info.indices.push(BcIndex {
                    name: name.clone(),
                    kind: IndexKind::Subindex {
                        parent: sia_bytecode::IndexId(pid),
                    },
                    // Subindex ranges derive from the parent at runtime
                    // (the subsegment count is a runtime parameter).
                    low: Value::Lit(0),
                    high: Value::Lit(0),
                });
            }
        }
        // Third pass: arrays and scalars.
        for d in &self.ast.decls {
            match d {
                Decl::Index { .. } | Decl::Subindex { .. } => {}
                Decl::Array {
                    name,
                    kind,
                    dims,
                    sparse,
                    line,
                } => {
                    self.declare_name(name, *line, &mut taken)?;
                    let bc_kind = match kind {
                        AstArrayKind::Static => ArrayKind::Static,
                        AstArrayKind::Temp => ArrayKind::Temp,
                        AstArrayKind::Local => ArrayKind::Local,
                        AstArrayKind::Distributed => ArrayKind::Distributed,
                        AstArrayKind::Served => ArrayKind::Served,
                    };
                    if *sparse && !bc_kind.is_remote() {
                        return Err(err(
                            *line,
                            format!(
                                "array `{name}`: `sparse` applies only to distributed or \
                                 served arrays, not {bc_kind:?}"
                            ),
                        ));
                    }
                    let mut dim_ids = Vec::with_capacity(dims.len());
                    for dim in dims {
                        let Some(&id) = self.info.index_ids.get(dim) else {
                            return Err(err(
                                *line,
                                format!("array `{name}`: unknown index `{dim}`"),
                            ));
                        };
                        if !self.info.indices[id as usize].kind.is_segment() {
                            return Err(err(
                                *line,
                                format!(
                                    "array `{name}`: `{dim}` is a simple index and cannot \
                                     shape an array dimension"
                                ),
                            ));
                        }
                        dim_ids.push(sia_bytecode::IndexId(id));
                    }
                    if dim_ids.is_empty() {
                        return Err(err(*line, format!("array `{name}` has no dimensions")));
                    }
                    self.info
                        .array_ids
                        .insert(name.clone(), self.info.arrays.len() as u32);
                    self.info.arrays.push(BcArray {
                        name: name.clone(),
                        kind: bc_kind,
                        dims: dim_ids,
                        sparse: *sparse,
                    });
                }
                Decl::Scalar { name, init, line } => {
                    self.declare_name(name, *line, &mut taken)?;
                    self.info
                        .scalar_ids
                        .insert(name.clone(), self.info.scalars.len() as u32);
                    self.info.scalars.push(BcScalar {
                        name: name.clone(),
                        init: *init,
                    });
                }
            }
        }
        // Constants share the namespace: reject a constant that collides with
        // a declared name (it would be ambiguous in expressions).
        for c in &self.info.consts.clone() {
            if taken.contains(c) {
                return Err(err(
                    0,
                    format!("`{c}` is used as a symbolic constant but also declared"),
                ));
            }
        }
        // Procedures: unique names.
        let mut proc_names = BTreeSet::new();
        for p in &self.ast.procs {
            if !proc_names.insert(p.name.clone()) {
                return Err(err(p.line, format!("procedure `{}` defined twice", p.name)));
            }
            self.info.proc_order.push(p.name.clone());
        }
        Ok(())
    }

    // ---- helpers ------------------------------------------------------------

    fn index_id(&self, name: &str, line: u32) -> Result<u32, CompileError> {
        self.info
            .index_ids
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown index `{name}`")))
    }

    fn index_kind(&self, id: u32) -> IndexKind {
        self.info.indices[id as usize].kind
    }

    /// The segment-kind of an index, looking through one level of subindex.
    fn effective_kind(&self, id: u32) -> IndexKind {
        match self.index_kind(id) {
            IndexKind::Subindex { parent } => self.index_kind(parent.0),
            k => k,
        }
    }

    fn require_bound(&self, name: &str, line: u32) -> Result<(), CompileError> {
        if self.bound.iter().any(|b| b == name) {
            Ok(())
        } else {
            Err(err(
                line,
                format!("index `{name}` is not defined by an enclosing loop here"),
            ))
        }
    }

    fn check_block_ref(&self, b: &BlockExpr) -> Result<(), CompileError> {
        let Some(&aid) = self.info.array_ids.get(&b.array) else {
            return Err(err(b.line, format!("unknown array `{}`", b.array)));
        };
        let decl = &self.info.arrays[aid as usize];
        if decl.dims.len() != b.indices.len() {
            return Err(err(
                b.line,
                format!(
                    "array `{}` has rank {}, referenced with {} indices",
                    b.array,
                    decl.dims.len(),
                    b.indices.len()
                ),
            ));
        }
        for (d, idx_name) in b.indices.iter().enumerate() {
            let iid = self.index_id(idx_name, b.line)?;
            self.require_bound(idx_name, b.line)?;
            let ref_kind = self.effective_kind(iid);
            let decl_kind = self.effective_kind(decl.dims[d].0);
            if ref_kind != decl_kind {
                return Err(err(
                    b.line,
                    format!(
                        "array `{}` dimension {}: index `{}` has kind {:?} but the \
                         dimension was declared {:?}",
                        b.array,
                        d + 1,
                        idx_name,
                        ref_kind,
                        decl_kind
                    ),
                ));
            }
            if matches!(self.index_kind(iid), IndexKind::Simple) {
                return Err(err(
                    b.line,
                    format!("simple index `{idx_name}` cannot address array segments"),
                ));
            }
        }
        Ok(())
    }

    fn array_kind(&self, name: &str, line: u32) -> Result<ArrayKind, CompileError> {
        let Some(&aid) = self.info.array_ids.get(name) else {
            return Err(err(line, format!("unknown array `{name}`")));
        };
        Ok(self.info.arrays[aid as usize].kind)
    }

    /// Checks a scalar expression; `extra_ok` lists index names additionally
    /// allowed (used by `where` clauses to restrict to the pardo indices).
    fn check_expr(
        &self,
        e: &Expr,
        line: u32,
        restrict: Option<&[String]>,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Num(_) => Ok(()),
            Expr::Name(n) => {
                if self.info.scalar_ids.contains_key(n) || self.info.const_ids.contains_key(n) {
                    return Ok(());
                }
                if self.info.index_ids.contains_key(n) {
                    if let Some(allowed) = restrict {
                        if !allowed.iter().any(|a| a == n) {
                            return Err(err(
                                line,
                                format!(
                                    "`{n}` is not an index of this pardo; where clauses may \
                                     only reference the pardo's own indices"
                                ),
                            ));
                        }
                        return Ok(());
                    }
                    return self.require_bound(n, line);
                }
                Err(err(line, format!("unknown name `{n}` in expression")))
            }
            Expr::Bin(_, l, r) => {
                self.check_expr(l, line, restrict)?;
                self.check_expr(r, line, restrict)
            }
            Expr::Neg(x) => self.check_expr(x, line, restrict),
        }
    }

    fn check_cond(
        &self,
        c: &Cond,
        line: u32,
        restrict: Option<&[String]>,
    ) -> Result<(), CompileError> {
        match c {
            Cond::Cmp(l, _, r) => {
                self.check_expr(l, line, restrict)?;
                self.check_expr(r, line, restrict)
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.check_cond(a, line, restrict)?;
                self.check_cond(b, line, restrict)
            }
            Cond::Not(x) => self.check_cond(x, line, restrict),
        }
    }

    /// Validates contraction index structure: dest indices come from exactly
    /// one operand; operand indices shared and absent from dest are summed;
    /// nothing dangles.
    fn check_contraction(
        &self,
        dest: &[String],
        a: &BlockExpr,
        b: &BlockExpr,
        line: u32,
    ) -> Result<(), CompileError> {
        let in_a = |n: &String| a.indices.contains(n);
        let in_b = |n: &String| b.indices.contains(n);
        for lists in [&a.indices, &b.indices] {
            for (i, n) in lists.iter().enumerate() {
                if lists[..i].contains(n) {
                    return Err(err(
                        line,
                        format!("index `{n}` repeated within one contraction operand"),
                    ));
                }
            }
        }
        for n in dest {
            match (in_a(n), in_b(n)) {
                (true, true) => {
                    return Err(err(
                        line,
                        format!("index `{n}` appears in both operands and the result"),
                    ));
                }
                (false, false) => {
                    return Err(err(
                        line,
                        format!("result index `{n}` appears in neither operand"),
                    ));
                }
                _ => {}
            }
        }
        for n in a.indices.iter().chain(&b.indices) {
            let contracted = in_a(n) && in_b(n) && !dest.contains(n);
            if !contracted && !dest.contains(n) {
                return Err(err(
                    line,
                    format!("operand index `{n}` is neither contracted nor in the result"),
                ));
            }
        }
        Ok(())
    }

    /// A block the worker can read locally: any kind (distributed/served
    /// blocks must have been fetched — enforced at runtime by the
    /// block-availability check, as in the original SIP).
    fn check_readable(&self, b: &BlockExpr) -> Result<(), CompileError> {
        self.check_block_ref(b)
    }

    /// A block the worker can write directly (not through put/prepare).
    fn check_writable(&self, b: &BlockExpr) -> Result<(), CompileError> {
        self.check_block_ref(b)?;
        let kind = self.array_kind(&b.array, b.line)?;
        if kind.is_remote() {
            return Err(err(
                b.line,
                format!(
                    "cannot assign directly to {} array `{}`; use `put`/`prepare`",
                    match kind {
                        ArrayKind::Distributed => "distributed",
                        _ => "served",
                    },
                    b.array
                ),
            ));
        }
        Ok(())
    }

    // ---- statements ------------------------------------------------------------

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn bind_index(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        if self.bound.iter().any(|b| b == name) {
            return Err(err(
                line,
                format!("index `{name}` is already bound by an enclosing loop"),
            ));
        }
        self.bound.push(name.to_string());
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Pardo {
                indices,
                wheres,
                body,
                line,
            } => {
                if self.in_pardo {
                    return Err(err(
                        *line,
                        "pardo loops may not be syntactically nested (the paper allows \
                         concurrency only between *separate* pardo loops)",
                    ));
                }
                for n in indices {
                    let id = self.index_id(n, *line)?;
                    if matches!(self.index_kind(id), IndexKind::Subindex { .. }) {
                        return Err(err(
                            *line,
                            format!(
                                "subindex `{n}` cannot head a plain pardo; use `pardo {n} in …`"
                            ),
                        ));
                    }
                    self.bind_index(n, *line)?;
                }
                for w in wheres {
                    self.check_cond(w, *line, Some(indices))?;
                }
                self.in_pardo = true;
                self.check_stmts(body)?;
                self.in_pardo = false;
                for _ in indices {
                    self.bound.pop();
                }
                Ok(())
            }
            Stmt::Do { index, body, line } => {
                let _ = self.index_id(index, *line)?;
                let id = self.index_id(index, *line)?;
                if matches!(self.index_kind(id), IndexKind::Subindex { .. }) {
                    return Err(err(
                        *line,
                        format!("subindex `{index}` requires `do {index} in <parent>`"),
                    ));
                }
                self.bind_index(index, *line)?;
                self.do_depth += 1;
                self.check_stmts(body)?;
                self.do_depth -= 1;
                self.bound.pop();
                Ok(())
            }
            Stmt::DoIn {
                sub,
                parent,
                parallel,
                body,
                line,
            } => {
                let sid = self.index_id(sub, *line)?;
                let pid = self.index_id(parent, *line)?;
                match self.index_kind(sid) {
                    IndexKind::Subindex { parent: declared } if declared.0 == pid => {}
                    IndexKind::Subindex { .. } => {
                        return Err(err(
                            *line,
                            format!("`{sub}` is not a subindex of `{parent}`"),
                        ));
                    }
                    _ => {
                        return Err(err(*line, format!("`{sub}` is not a subindex")));
                    }
                }
                // The super index must be well-defined here (§IV-E.3).
                self.require_bound(parent, *line)?;
                if *parallel && self.in_pardo {
                    // `pardo … in` inside a pardo body degenerates to a
                    // sequential loop on the worker; allowed.
                }
                self.bind_index(sub, *line)?;
                self.do_depth += 1;
                self.check_stmts(body)?;
                self.do_depth -= 1;
                self.bound.pop();
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                self.check_cond(cond, *line, None)?;
                self.check_stmts(then)?;
                self.check_stmts(els)
            }
            Stmt::Call { name, line } => {
                if !self.info.proc_order.iter().any(|p| p == name) {
                    return Err(err(*line, format!("unknown procedure `{name}`")));
                }
                if self.call_stack.iter().any(|c| c == name) {
                    return Err(err(*line, format!("recursive call to `{name}`")));
                }
                // Check the callee body in the current (empty-loop) context is
                // done separately in `analyze`; here we only resolve the name.
                Ok(())
            }
            Stmt::Get(b) => {
                self.check_block_ref(b)?;
                let kind = self.array_kind(&b.array, b.line)?;
                if kind != ArrayKind::Distributed {
                    return Err(err(
                        b.line,
                        format!(
                            "`get` requires a distributed array; `{}` is {kind:?}",
                            b.array
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::Request(b) => {
                self.check_block_ref(b)?;
                let kind = self.array_kind(&b.array, b.line)?;
                if kind != ArrayKind::Served {
                    return Err(err(
                        b.line,
                        format!(
                            "`request` requires a served array; `{}` is {kind:?}",
                            b.array
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::Put { dest, src, .. } => {
                self.check_block_ref(dest)?;
                self.check_readable(src)?;
                let kind = self.array_kind(&dest.array, dest.line)?;
                if kind != ArrayKind::Distributed {
                    return Err(err(
                        dest.line,
                        format!(
                            "`put` requires a distributed array; `{}` is {kind:?}",
                            dest.array
                        ),
                    ));
                }
                if self.array_kind(&src.array, src.line)?.is_remote() {
                    return Err(err(
                        src.line,
                        "`put` source must be a local block (temp/local/static)",
                    ));
                }
                Ok(())
            }
            Stmt::Prepare { dest, src, .. } => {
                self.check_block_ref(dest)?;
                self.check_readable(src)?;
                let kind = self.array_kind(&dest.array, dest.line)?;
                if kind != ArrayKind::Served {
                    return Err(err(
                        dest.line,
                        format!(
                            "`prepare` requires a served array; `{}` is {kind:?}",
                            dest.array
                        ),
                    ));
                }
                if self.array_kind(&src.array, src.line)?.is_remote() {
                    return Err(err(
                        src.line,
                        "`prepare` source must be a local block (temp/local/static)",
                    ));
                }
                Ok(())
            }
            Stmt::Assign {
                dest,
                op,
                rhs,
                line,
            } => self.check_assign(dest, *op, rhs, *line),
            Stmt::Execute { args, .. } => {
                for a in args {
                    match a {
                        ExecArg::Block(b) => self.check_block_ref(b)?,
                        ExecArg::Name(n, l) => {
                            if self.info.scalar_ids.contains_key(n)
                                || self.info.const_ids.contains_key(n)
                            {
                                continue;
                            }
                            if self.info.index_ids.contains_key(n) {
                                self.require_bound(n, *l)?;
                                continue;
                            }
                            return Err(err(*l, format!("unknown `execute` argument `{n}`")));
                        }
                        ExecArg::Num(_) => {}
                    }
                }
                Ok(())
            }
            Stmt::Exit(line) => {
                if self.do_depth == 0 {
                    return Err(err(
                        *line,
                        "`exit` must appear inside a `do` or `do … in` loop",
                    ));
                }
                Ok(())
            }
            Stmt::Barrier(_, _) => Ok(()),
            Stmt::BlocksToList { array, line, .. } | Stmt::ListToBlocks { array, line, .. } => {
                let kind = self.array_kind(array, *line)?;
                if kind != ArrayKind::Distributed && kind != ArrayKind::Served {
                    return Err(err(
                        *line,
                        "checkpointing applies to distributed or served arrays",
                    ));
                }
                Ok(())
            }
            Stmt::Print { items, line } => {
                for i in items {
                    if let AstPrintItem::Expr(e) = i {
                        self.check_expr(e, *line, None)?;
                    }
                }
                Ok(())
            }
            Stmt::Create(name, line) | Stmt::Delete(name, line) => {
                let kind = self.array_kind(name, *line)?;
                if !kind.is_remote() && kind != ArrayKind::Local {
                    return Err(err(
                        *line,
                        format!("`create`/`delete` applies to distributed, served, or local arrays, not {kind:?}"),
                    ));
                }
                Ok(())
            }
        }
    }

    fn check_assign(
        &mut self,
        dest: &LValue,
        op: AssignOp,
        rhs: &Rhs,
        line: u32,
    ) -> Result<(), CompileError> {
        match dest {
            LValue::Block(d) => {
                self.check_writable(d)?;
                match (op, rhs) {
                    (AssignOp::Set | AssignOp::Add | AssignOp::Sub, Rhs::Block(srcb)) => {
                        self.check_readable(srcb)?;
                        // Copy/accumulate: both refs must use the same index
                        // set (possibly permuted).
                        let mut a: Vec<&String> = d.indices.iter().collect();
                        let mut b: Vec<&String> = srcb.indices.iter().collect();
                        a.sort();
                        b.sort();
                        if a != b {
                            return Err(err(
                                line,
                                format!(
                                    "block assignment `{} = {}` must use the same index set \
                                     on both sides (a permutation), got {:?} vs {:?}",
                                    d.array, srcb.array, d.indices, srcb.indices
                                ),
                            ));
                        }
                        Ok(())
                    }
                    (AssignOp::Set | AssignOp::Add, Rhs::Contract(a, b)) => {
                        self.check_readable(a)?;
                        self.check_readable(b)?;
                        self.check_contraction(&d.indices, a, b, line)
                    }
                    (AssignOp::Set, Rhs::Scalar(e)) => self.check_expr(e, line, None),
                    (AssignOp::Mul, Rhs::Scalar(e)) => self.check_expr(e, line, None),
                    (AssignOp::Set | AssignOp::Add, Rhs::ScaledBlock(e, srcb)) => {
                        self.check_expr(e, line, None)?;
                        self.check_readable(srcb)?;
                        let mut a: Vec<&String> = d.indices.iter().collect();
                        let mut b: Vec<&String> = srcb.indices.iter().collect();
                        a.sort();
                        b.sort();
                        if a != b {
                            return Err(err(
                                line,
                                "scaled block assignment must use the same index set on both sides",
                            ));
                        }
                        Ok(())
                    }
                    (op, rhs) => Err(err(
                        line,
                        format!("unsupported block assignment form {op:?} with {rhs:?}"),
                    )),
                }
            }
            LValue::Scalar(name, _) => {
                if !self.info.scalar_ids.contains_key(name) {
                    return Err(err(line, format!("unknown scalar `{name}`")));
                }
                match (op, rhs) {
                    (
                        AssignOp::Set | AssignOp::Add | AssignOp::Sub | AssignOp::Mul,
                        Rhs::Scalar(e),
                    ) => self.check_expr(e, line, None),
                    (AssignOp::Set | AssignOp::Add, Rhs::Contract(a, b)) => {
                        self.check_readable(a)?;
                        self.check_readable(b)?;
                        // Full contraction: result has no free indices.
                        self.check_contraction(&[], a, b, line)
                    }
                    (op, rhs) => Err(err(
                        line,
                        format!("unsupported scalar assignment form {op:?} with {rhs:?}"),
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<SemaInfo, CompileError> {
        analyze(&parse(src).unwrap())
    }

    const HEADER: &str = "sial t\naoindex M = 1, 4\naoindex N = 1, 4\naoindex L = 1, 4\nmoindex I = 1, 2\ndistributed D(M,N)\nserved V(M,N)\ntemp x(M,N)\ntemp y(M,N)\nscalar s\n";

    fn with_body(body: &str) -> String {
        format!("{HEADER}{body}\nendsial\n")
    }

    #[test]
    fn clean_program_passes() {
        let info = analyze_src(&with_body(
            "pardo M, N\nx(M,N) = 0.0\ndo L\nget D(L,N)\ny(M,N) += x(M,L) * D(L,N)\nenddo L\nput D(M,N) += y(M,N)\nendpardo",
        ))
        .unwrap();
        assert_eq!(info.arrays.len(), 4);
        assert_eq!(info.indices.len(), 4);
    }

    #[test]
    fn nested_pardo_rejected() {
        let e = analyze_src(&with_body(
            "pardo M\npardo N\nx(M,N) = 0.0\nendpardo\nendpardo",
        ))
        .unwrap_err();
        assert!(e.message.contains("nested"));
    }

    #[test]
    fn unbound_index_in_block_ref() {
        let e = analyze_src(&with_body("pardo M\nx(M,N) = 0.0\nendpardo")).unwrap_err();
        assert!(e.message.contains("not defined by an enclosing loop"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let e = analyze_src(&with_body("pardo M, I\nx(M,I) = 0.0\nendpardo")).unwrap_err();
        assert!(e.message.contains("kind"), "{e}");
    }

    #[test]
    fn get_on_non_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nget V(M,N)\nendpardo")).unwrap_err();
        assert!(e.message.contains("distributed"));
    }

    #[test]
    fn request_on_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nrequest D(M,N)\nendpardo")).unwrap_err();
        assert!(e.message.contains("served"));
    }

    #[test]
    fn direct_write_to_distributed_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nD(M,N) = 0.0\nendpardo")).unwrap_err();
        assert!(e.message.contains("put"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let src = "sial t\naoindex M = 1, 4\nscalar M\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e.message.contains("more than once"));
    }

    #[test]
    fn contraction_structure_checked() {
        // y(M,N) = x(M,N) * x(M,N): M,N in both operands AND the result.
        let e =
            analyze_src(&with_body("pardo M, N\ny(M,N) = x(M,N) * x(M,N)\nendpardo")).unwrap_err();
        assert!(e.message.contains("both operands"));
    }

    #[test]
    fn scalar_contraction_allowed() {
        analyze_src(&with_body("pardo M, N\ns = x(M,N) * y(M,N)\nendpardo")).unwrap();
    }

    #[test]
    fn scalar_contraction_with_free_index_rejected() {
        // s = x(M,N) * y(N,M) contracts fully; but x(M,N)*y(M,N) also fully
        // contracts. Use mismatched: need a case with a dangling index — use
        // a rank-2 times rank-2 sharing one index.
        let e = analyze_src(&with_body("pardo M, N\ns = x(M,N) * y(M,M)\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn where_restricted_to_pardo_indices() {
        let ok = analyze_src(&with_body("pardo M, N where M < N\nx(M,N) = 0.0\nendpardo"));
        assert!(ok.is_ok());
        let e = analyze_src(&with_body("pardo M where M < N\nx(M,M) = 0.0\nendpardo")).unwrap_err();
        assert!(e.message.contains("pardo's own indices"));
    }

    #[test]
    fn subindex_rules() {
        let src = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\nlocal Xi(i,j)\ntemp Xii(ii,j)\npardo j\ndo i\ndo ii in i\nXii(ii,j) = Xi(ii,j)\nenddo\nenddo\nendpardo\nendsial\n";
        analyze_src(src).unwrap();
    }

    #[test]
    fn do_in_wrong_parent_rejected() {
        let src = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\ntemp X(i,j)\npardo j\ndo ii in j\nendpardo\nendsial\n";
        // Note: `do ii in j` then endpardo — parser wants enddo; craft properly:
        let src2 = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\ntemp X(i,j)\npardo j\ndo ii in j\nX(j,j) = 0.0\nenddo\nendpardo\nendsial\n";
        let _ = src;
        let e = analyze_src(src2).unwrap_err();
        assert!(e.message.contains("not a subindex of"));
    }

    #[test]
    fn do_in_without_bound_parent_rejected() {
        let src = "sial t\naoindex i = 1, 4\nsubindex ii of i\ntemp X(i)\ndo ii in i\nX(i) = 0.0\nenddo\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e.message.contains("not defined by an enclosing loop"));
    }

    #[test]
    fn recursion_rejected() {
        let src = "sial t\nscalar s\nproc a\ncall a\nendproc\ncall a\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e.message.contains("recursive"));
    }

    #[test]
    fn unknown_procedure_rejected() {
        let e = analyze_src(&with_body("call nope")).unwrap_err();
        assert!(e.message.contains("unknown procedure"));
    }

    #[test]
    fn const_collision_rejected() {
        // `s` is declared scalar and also used as a symbolic bound.
        let src = "sial t\nscalar s\naoindex M = 1, s\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e.message.contains("symbolic constant"));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = analyze_src(&with_body("pardo M, N\nx(M) = 0.0\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn permutation_assignment_checked() {
        let ok = analyze_src(&with_body("pardo M, N\nx(N,M) = y(M,N)\nendpardo"));
        assert!(ok.is_ok());
        let e = analyze_src(&with_body("pardo M, N\nx(M,M) = y(M,N)\nendpardo"));
        assert!(e.is_err());
    }

    #[test]
    fn simple_index_cannot_shape_arrays() {
        let src = "sial t\nindex n = 1, 10\ntemp X(n)\nendsial\n";
        let e = analyze_src(src).unwrap_err();
        assert!(e.message.contains("simple index"));
    }
}
