//! SIAL tokens.
//!
//! SIAL is line-oriented: one statement per line, `#` comments to end of
//! line. The lexer therefore emits explicit [`Token::Newline`] tokens that
//! the parser uses as statement terminators.

use std::fmt;

/// SIAL keywords. Keyword recognition is case-insensitive (the original
/// corpus mixes `PARDO` and `pardo`), but identifiers keep their case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `sial` — program header.
    Sial,
    /// `endsial` — program end.
    EndSial,
    /// `aoindex` — atomic-orbital segment index declaration.
    AoIndex,
    /// `moindex` — molecular-orbital segment index declaration.
    MoIndex,
    /// `moaindex` — alpha-spin MO segment index declaration.
    MoAIndex,
    /// `mobindex` — beta-spin MO segment index declaration.
    MoBIndex,
    /// `laindex` — auxiliary segment index declaration.
    LaIndex,
    /// `index` — simple (iteration-count) index declaration.
    Index,
    /// `subindex` — subsegment index declaration.
    Subindex,
    /// `of` — in `subindex ii of i`.
    Of,
    /// `static` — replicated array.
    Static,
    /// `temp` — iteration-local block.
    Temp,
    /// `local` — node-local array.
    Local,
    /// `distributed` — RAM-distributed array.
    Distributed,
    /// `served` — disk-backed array.
    Served,
    /// `sparse` — block-sparse modifier on `distributed`/`served`.
    Sparse,
    /// `scalar` — scalar variable declaration.
    Scalar,
    /// `pardo` — parallel loop.
    Pardo,
    /// `endpardo`.
    EndPardo,
    /// `do` — sequential loop.
    Do,
    /// `enddo`.
    EndDo,
    /// `in` — in `do ii in i`.
    In,
    /// `where` — pardo filter clause.
    Where,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `endif`.
    EndIf,
    /// `proc` — procedure definition.
    Proc,
    /// `endproc`.
    EndProc,
    /// `call`.
    Call,
    /// `get` — fetch distributed block.
    Get,
    /// `put` — store distributed block.
    Put,
    /// `request` — fetch served block.
    Request,
    /// `prepare` — store served block.
    Prepare,
    /// `execute` — user super instruction.
    Execute,
    /// `print`.
    Print,
    /// `create`.
    Create,
    /// `delete`.
    Delete,
    /// `sip_barrier` — distributed-array barrier.
    SipBarrier,
    /// `server_barrier` — served-array barrier.
    ServerBarrier,
    /// `blocks_to_list` — checkpoint serialize.
    BlocksToList,
    /// `list_to_blocks` — checkpoint restore.
    ListToBlocks,
    /// `and` in boolean expressions.
    And,
    /// `or` in boolean expressions.
    Or,
    /// `not` in boolean expressions.
    Not,
    /// `exit` — leave the innermost sequential loop.
    Exit,
}

impl Keyword {
    /// Parses a keyword from a lowercased identifier.
    pub fn from_str_lower(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "sial" => Sial,
            "endsial" => EndSial,
            "aoindex" => AoIndex,
            "moindex" => MoIndex,
            "moaindex" => MoAIndex,
            "mobindex" => MoBIndex,
            "laindex" => LaIndex,
            "index" => Index,
            "subindex" => Subindex,
            "of" => Of,
            "static" => Static,
            "temp" => Temp,
            "local" => Local,
            "distributed" => Distributed,
            "served" => Served,
            "sparse" => Sparse,
            "scalar" => Scalar,
            "pardo" => Pardo,
            "endpardo" => EndPardo,
            "do" => Do,
            "enddo" => EndDo,
            "in" => In,
            "where" => Where,
            "if" => If,
            "else" => Else,
            "endif" => EndIf,
            "proc" => Proc,
            "endproc" => EndProc,
            "call" => Call,
            "get" => Get,
            "put" => Put,
            "request" => Request,
            "prepare" => Prepare,
            "execute" => Execute,
            "print" => Print,
            "create" => Create,
            "delete" => Delete,
            "sip_barrier" => SipBarrier,
            "server_barrier" => ServerBarrier,
            "blocks_to_list" => BlocksToList,
            "list_to_blocks" => ListToBlocks,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "exit" => Exit,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword.
    Kw(Keyword),
    /// An identifier (index, array, scalar, constant, or procedure name).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of line (statement terminator).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Kw(k) => write!(f, "keyword `{k:?}`"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::Str(s) => write!(f, "string \"{s}\""),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Assign => write!(f, "`=`"),
            Token::PlusAssign => write!(f, "`+=`"),
            Token::MinusAssign => write!(f, "`-=`"),
            Token::StarAssign => write!(f, "`*=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::EqEq => write!(f, "`==`"),
            Token::NotEq => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Newline => write!(f, "end of line"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

use sia_bytecode::diag::Span;

/// A token with its source position: the byte span and the 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte range in the source.
    pub span: Span,
    /// 1-based source line.
    pub line: u32,
}
