//! The SIAL parser: line-oriented recursive descent with statement-level
//! error recovery.
//!
//! Because SIAL is one-statement-per-line, the newline token is a natural
//! synchronization point: when a statement fails to parse, the parser
//! records a [`Diagnostic`] and skips to the next line, so a single pass
//! reports every syntax error and still produces a (partial) AST for the
//! later stages and the LSP to work with.

use crate::ast::*;
use crate::lexer::lex_partial;
use crate::token::{Keyword as K, Spanned, Token as T};
use sia_bytecode::diag::{Diagnostic, Span};

/// Parses SIAL source into an [`AstProgram`], failing if there is any
/// lexical or syntax error (all of them are reported at once).
pub fn parse(source: &str) -> Result<AstProgram, Vec<Diagnostic>> {
    let (ast, diags) = parse_partial(source);
    if diags.is_empty() {
        Ok(ast)
    } else {
        Err(diags)
    }
}

/// Error-recovering parse: always yields an AST (possibly partial) plus all
/// lexical and syntax diagnostics found in one pass.
pub fn parse_partial(source: &str) -> (AstProgram, Vec<Diagnostic>) {
    let (tokens, mut diags) = lex_partial(source);
    let (ast, parse_diags) = parse_tokens(tokens);
    diags.extend(parse_diags);
    (ast, diags)
}

/// Parses an already-lexed token stream (the `ast` query of the compiler
/// database calls this so lexing and parsing memoize independently).
pub fn parse_tokens(tokens: Vec<Spanned>) -> (AstProgram, Vec<Diagnostic>) {
    let mut p = Parser::new(tokens);
    let ast = p.program();
    (ast, p.diags)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser {
            tokens,
            pos: 0,
            diags: Vec::new(),
        }
    }

    fn peek(&self) -> &T {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &T {
        self.tokens
            .get(self.pos + 1)
            .map(|s| &s.token)
            .unwrap_or(&T::Eof)
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> T {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error("parse/syntax", self.span(), msg)
    }

    fn err_code(&self, code: &str, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(code, self.span(), msg)
    }

    /// Skips tokens up to and including the next newline — the recovery
    /// point after a malformed statement.
    fn sync_to_newline(&mut self) {
        loop {
            match self.peek() {
                T::Newline => {
                    self.bump();
                    return;
                }
                T::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn expect(&mut self, want: &T) -> PResult<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err_code(
                "parse/expected",
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn accept(&mut self, want: &T) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<String> {
        match self.peek().clone() {
            T::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                Err(self.err_code("parse/expected", format!("expected {what}, found {other}")))
            }
        }
    }

    /// Like [`Self::expect_ident`] but also yields the identifier's span
    /// (declaration sites record it for go-to-definition).
    fn ident_sp(&mut self, what: &str) -> PResult<(String, Span)> {
        let span = self.span();
        Ok((self.expect_ident(what)?, span))
    }

    fn expect_newline(&mut self) -> PResult<()> {
        match self.peek() {
            T::Newline => {
                self.bump();
                Ok(())
            }
            T::Eof => Ok(()),
            other => Err(self.err_code(
                "parse/expected",
                format!("expected end of line, found {other}"),
            )),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), T::Newline) {
            self.bump();
        }
    }

    // ---- program structure ---------------------------------------------

    fn program(&mut self) -> AstProgram {
        self.skip_newlines();
        let name = if self.accept(&T::Kw(K::Sial)) {
            match self.expect_ident("program name") {
                Ok(n) => {
                    if let Err(e) = self.expect_newline() {
                        self.diags.push(e);
                        self.sync_to_newline();
                    }
                    n
                }
                Err(e) => {
                    self.diags.push(e);
                    self.sync_to_newline();
                    String::new()
                }
            }
        } else {
            self.diags.push(self.err_code(
                "parse/missing-header",
                "a SIAL program must begin with `sial <name>`",
            ));
            String::new()
        };

        let mut decls = Vec::new();
        let mut procs = Vec::new();
        let mut body: Vec<Stmt> = Vec::new();

        loop {
            self.skip_newlines();
            match self.peek() {
                T::Eof => break,
                T::Kw(K::EndSial) => {
                    self.bump();
                    self.skip_newlines();
                    if !matches!(self.peek(), T::Eof) {
                        self.diags.push(
                            self.err_code("parse/trailing-content", "content after `endsial`"),
                        );
                    }
                    break;
                }
                T::Kw(
                    K::AoIndex
                    | K::MoIndex
                    | K::MoAIndex
                    | K::MoBIndex
                    | K::LaIndex
                    | K::Index
                    | K::Subindex
                    | K::Static
                    | K::Temp
                    | K::Local
                    | K::Distributed
                    | K::Served
                    | K::Sparse
                    | K::Scalar,
                ) => {
                    if !body.is_empty() {
                        self.diags.push(self.err_code(
                            "parse/decl-after-stmt",
                            "declarations must precede executable statements",
                        ));
                    }
                    match self.declaration() {
                        Ok(d) => decls.push(d),
                        Err(e) => {
                            self.diags.push(e);
                            self.sync_to_newline();
                        }
                    }
                }
                T::Kw(K::Proc) => match self.proc_def() {
                    Ok(p) => procs.push(p),
                    Err(e) => {
                        self.diags.push(e);
                        self.sync_to_newline();
                    }
                },
                _ => match self.statement() {
                    Ok(s) => body.push(s),
                    Err(e) => {
                        self.diags.push(e);
                        self.sync_to_newline();
                    }
                },
            }
        }
        AstProgram {
            name,
            decls,
            procs,
            body,
        }
    }

    fn proc_def(&mut self) -> PResult<ProcDef> {
        self.expect(&T::Kw(K::Proc))?;
        let (name, span) = self.ident_sp("procedure name")?;
        self.expect_newline()?;
        let body = self.block_until(|t| matches!(t, T::Kw(K::EndProc)))?;
        self.expect(&T::Kw(K::EndProc))?;
        // Optional repeated name.
        if let T::Ident(n) = self.peek().clone() {
            if n == name {
                self.bump();
            } else {
                return Err(self.err_code(
                    "parse/endproc-mismatch",
                    format!("`endproc {n}` does not match `proc {name}`"),
                ));
            }
        }
        self.expect_newline()?;
        Ok(ProcDef { name, body, span })
    }

    /// Parses statements until `stop` matches the current token (newlines
    /// skipped), recovering at line boundaries inside the block.
    fn block_until(&mut self, stop: impl Fn(&T) -> bool) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if stop(self.peek()) {
                return Ok(out);
            }
            if matches!(self.peek(), T::Eof) {
                return Err(self.err_code(
                    "parse/unclosed-block",
                    "unexpected end of input inside a block",
                ));
            }
            match self.statement() {
                Ok(s) => out.push(s),
                Err(e) => {
                    self.diags.push(e);
                    self.sync_to_newline();
                }
            }
        }
    }

    // ---- declarations -----------------------------------------------------

    fn bound(&mut self) -> PResult<Bound> {
        match self.peek().clone() {
            T::Number(n) => {
                if n.fract() != 0.0 {
                    return Err(self.err_code("parse/int-bound", "index bounds must be integers"));
                }
                self.bump();
                Ok(Bound::Lit(n as i64))
            }
            T::Ident(s) => {
                self.bump();
                Ok(Bound::Sym(s))
            }
            other => Err(self.err_code(
                "parse/expected",
                format!("expected index bound, found {other}"),
            )),
        }
    }

    fn declaration(&mut self) -> PResult<Decl> {
        let kw = match self.bump() {
            T::Kw(k) => k,
            _ => unreachable!("caller checked"),
        };
        match kw {
            K::AoIndex | K::MoIndex | K::MoAIndex | K::MoBIndex | K::LaIndex | K::Index => {
                let kind = match kw {
                    K::AoIndex => AstIndexKind::Ao,
                    K::MoIndex => AstIndexKind::Mo,
                    K::MoAIndex => AstIndexKind::MoA,
                    K::MoBIndex => AstIndexKind::MoB,
                    K::LaIndex => AstIndexKind::La,
                    _ => AstIndexKind::Simple,
                };
                let (name, span) = self.ident_sp("index name")?;
                self.expect(&T::Assign)?;
                let low = self.bound()?;
                self.expect(&T::Comma)?;
                let high = self.bound()?;
                self.expect_newline()?;
                Ok(Decl::Index {
                    name,
                    kind,
                    low,
                    high,
                    span,
                })
            }
            K::Subindex => {
                let (name, span) = self.ident_sp("subindex name")?;
                self.expect(&T::Kw(K::Of))?;
                let parent = self.expect_ident("parent index name")?;
                self.expect_newline()?;
                Ok(Decl::Subindex { name, parent, span })
            }
            K::Static | K::Temp | K::Local | K::Distributed | K::Served | K::Sparse => {
                let sparse = kw == K::Sparse;
                let kw = if sparse {
                    // `sparse` modifies a remote storage class.
                    match self.peek().clone() {
                        T::Kw(k @ (K::Distributed | K::Served)) => {
                            self.bump();
                            k
                        }
                        other => {
                            return Err(self.err_code(
                                "parse/sparse-kind",
                                format!(
                                "`sparse` must be followed by `distributed` or `served`, found {other}"
                            ),
                            ));
                        }
                    }
                } else {
                    kw
                };
                let kind = match kw {
                    K::Static => AstArrayKind::Static,
                    K::Temp => AstArrayKind::Temp,
                    K::Local => AstArrayKind::Local,
                    K::Distributed => AstArrayKind::Distributed,
                    _ => AstArrayKind::Served,
                };
                let (name, span) = self.ident_sp("array name")?;
                self.expect(&T::LParen)?;
                let mut dims = vec![self.expect_ident("index name")?];
                while self.accept(&T::Comma) {
                    dims.push(self.expect_ident("index name")?);
                }
                self.expect(&T::RParen)?;
                self.expect_newline()?;
                Ok(Decl::Array {
                    name,
                    kind,
                    dims,
                    sparse,
                    span,
                })
            }
            K::Scalar => {
                let (name, span) = self.ident_sp("scalar name")?;
                let mut init = 0.0;
                if self.accept(&T::Assign) {
                    let neg = self.accept(&T::Minus);
                    match self.peek().clone() {
                        T::Number(n) => {
                            self.bump();
                            init = if neg { -n } else { n };
                        }
                        other => {
                            return Err(self.err_code(
                                "parse/expected",
                                format!("expected numeric initializer, found {other}"),
                            ));
                        }
                    }
                }
                self.expect_newline()?;
                Ok(Decl::Scalar { name, init, span })
            }
            _ => unreachable!("caller checked"),
        }
    }

    // ---- expressions -------------------------------------------------------

    fn block_expr(&mut self) -> PResult<BlockExpr> {
        let (array, span) = self.ident_sp("array name")?;
        self.expect(&T::LParen)?;
        let mut indices = vec![self.expect_ident("index name")?];
        while self.accept(&T::Comma) {
            indices.push(self.expect_ident("index name")?);
        }
        self.expect(&T::RParen)?;
        Ok(BlockExpr {
            array,
            indices,
            span,
        })
    }

    fn at_block_ref(&self) -> bool {
        matches!(self.peek(), T::Ident(_)) && matches!(self.peek2(), T::LParen)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            T::Number(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            T::Ident(s) => {
                if self.at_block_ref() {
                    return Err(self.err("block reference not allowed inside a scalar expression"));
                }
                self.bump();
                Ok(Expr::Name(s))
            }
            T::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.primary()?)))
            }
            T::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&T::RParen)?;
                Ok(e)
            }
            other => Err(self.err_code(
                "parse/expected",
                format!("expected expression, found {other}"),
            )),
        }
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                T::Star => {
                    // `expr * blockref` belongs to the statement level; stop
                    // without consuming the `*`.
                    if matches!(self.peek2(), T::Ident(_))
                        && matches!(
                            self.tokens.get(self.pos + 2).map(|s| &s.token),
                            Some(T::LParen)
                        )
                    {
                        return Ok(lhs);
                    }
                    BinOp::Mul
                }
                T::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                T::Plus => BinOp::Add,
                T::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn cmp(&mut self) -> PResult<Cond> {
        if self.accept(&T::Kw(K::Not)) {
            return Ok(Cond::Not(Box::new(self.cmp()?)));
        }
        if matches!(self.peek(), T::LParen) {
            // Could be a parenthesized condition or a parenthesized scalar
            // expr starting a comparison; try condition first by scanning for
            // a comparison operator before the matching close paren.
            if self.paren_wraps_cond() {
                self.bump();
                let c = self.cond()?;
                self.expect(&T::RParen)?;
                return Ok(c);
            }
        }
        let l = self.expr()?;
        let op = match self.peek() {
            T::EqEq => CmpOp::Eq,
            T::NotEq => CmpOp::Ne,
            T::Lt => CmpOp::Lt,
            T::Le => CmpOp::Le,
            T::Gt => CmpOp::Gt,
            T::Ge => CmpOp::Ge,
            other => {
                return Err(self.err_code(
                    "parse/expected",
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        self.bump();
        let r = self.expr()?;
        Ok(Cond::Cmp(l, op, r))
    }

    /// Heuristic: does the parenthesis at the cursor enclose a boolean
    /// condition (contains a comparison/and/or at depth 1)?
    fn paren_wraps_cond(&self) -> bool {
        let mut depth = 0usize;
        let mut i = self.pos;
        while let Some(s) = self.tokens.get(i) {
            match &s.token {
                T::LParen => depth += 1,
                T::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                T::EqEq
                | T::NotEq
                | T::Lt
                | T::Le
                | T::Gt
                | T::Ge
                | T::Kw(K::And)
                | T::Kw(K::Or)
                | T::Kw(K::Not)
                    if depth == 1 =>
                {
                    return true;
                }
                T::Newline | T::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    fn cond(&mut self) -> PResult<Cond> {
        let mut lhs = self.and_cond()?;
        while self.accept(&T::Kw(K::Or)) {
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> PResult<Cond> {
        let mut lhs = self.cmp()?;
        while self.accept(&T::Kw(K::And)) {
            let rhs = self.cmp()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // ---- statements ----------------------------------------------------------

    fn statement(&mut self) -> PResult<Stmt> {
        let span = self.span();
        match self.peek().clone() {
            T::Kw(K::Pardo) => self.pardo_stmt(),
            T::Kw(K::Do) => self.do_stmt(),
            T::Kw(K::If) => self.if_stmt(),
            T::Kw(K::Call) => {
                self.bump();
                let (name, span) = self.ident_sp("procedure name")?;
                self.expect_newline()?;
                Ok(Stmt::Call { name, span })
            }
            T::Kw(K::Get) => {
                self.bump();
                let b = self.block_expr()?;
                self.expect_newline()?;
                Ok(Stmt::Get(b))
            }
            T::Kw(K::Request) => {
                self.bump();
                let b = self.block_expr()?;
                self.expect_newline()?;
                Ok(Stmt::Request(b))
            }
            T::Kw(K::Put) => {
                self.bump();
                let dest = self.block_expr()?;
                let mode = self.store_mode()?;
                let src = self.block_expr()?;
                self.expect_newline()?;
                Ok(Stmt::Put { dest, src, mode })
            }
            T::Kw(K::Prepare) => {
                self.bump();
                let dest = self.block_expr()?;
                let mode = self.store_mode()?;
                let src = self.block_expr()?;
                self.expect_newline()?;
                Ok(Stmt::Prepare { dest, src, mode })
            }
            T::Kw(K::Execute) => {
                self.bump();
                let name = self.expect_ident("super instruction name")?;
                let mut args = Vec::new();
                loop {
                    match self.peek().clone() {
                        T::Newline | T::Eof => break,
                        T::Ident(s) => {
                            if self.at_block_ref() {
                                args.push(ExecArg::Block(self.block_expr()?));
                            } else {
                                let sp = self.span();
                                self.bump();
                                args.push(ExecArg::Name(s, sp));
                            }
                        }
                        T::Number(n) => {
                            self.bump();
                            args.push(ExecArg::Num(n));
                        }
                        T::Comma => {
                            self.bump();
                        }
                        other => {
                            return Err(self.err(format!("bad `execute` argument: {other}")));
                        }
                    }
                }
                self.expect_newline()?;
                Ok(Stmt::Execute { name, args, span })
            }
            T::Kw(K::Print) => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    match self.peek().clone() {
                        T::Newline | T::Eof => break,
                        T::Str(s) => {
                            self.bump();
                            items.push(AstPrintItem::Str(s));
                        }
                        T::Comma => {
                            self.bump();
                        }
                        _ => items.push(AstPrintItem::Expr(self.expr()?)),
                    }
                }
                self.expect_newline()?;
                Ok(Stmt::Print { items, span })
            }
            T::Kw(K::Exit) => {
                self.bump();
                self.expect_newline()?;
                Ok(Stmt::Exit(span))
            }
            T::Kw(K::SipBarrier) => {
                self.bump();
                self.expect_newline()?;
                Ok(Stmt::Barrier(BarrierKind::Sip, span))
            }
            T::Kw(K::ServerBarrier) => {
                self.bump();
                self.expect_newline()?;
                Ok(Stmt::Barrier(BarrierKind::Server, span))
            }
            T::Kw(K::BlocksToList) => {
                self.bump();
                let array = self.expect_ident("array name")?;
                let label = match self.peek().clone() {
                    T::Str(s) => {
                        self.bump();
                        s
                    }
                    other => {
                        return Err(self.err_code(
                            "parse/expected",
                            format!("expected checkpoint label, found {other}"),
                        ))
                    }
                };
                self.expect_newline()?;
                Ok(Stmt::BlocksToList { array, label, span })
            }
            T::Kw(K::ListToBlocks) => {
                self.bump();
                let array = self.expect_ident("array name")?;
                let label = match self.peek().clone() {
                    T::Str(s) => {
                        self.bump();
                        s
                    }
                    other => {
                        return Err(self.err_code(
                            "parse/expected",
                            format!("expected checkpoint label, found {other}"),
                        ))
                    }
                };
                self.expect_newline()?;
                Ok(Stmt::ListToBlocks { array, label, span })
            }
            T::Kw(K::Create) => {
                self.bump();
                let (a, sp) = self.ident_sp("array name")?;
                self.expect_newline()?;
                Ok(Stmt::Create(a, sp))
            }
            T::Kw(K::Delete) => {
                self.bump();
                let (a, sp) = self.ident_sp("array name")?;
                self.expect_newline()?;
                Ok(Stmt::Delete(a, sp))
            }
            T::Ident(_) => self.assign_stmt(),
            other => Err(self.err(format!("unexpected {other} at start of statement"))),
        }
    }

    fn store_mode(&mut self) -> PResult<StoreMode> {
        if self.accept(&T::Assign) {
            Ok(StoreMode::Replace)
        } else if self.accept(&T::PlusAssign) {
            Ok(StoreMode::Accumulate)
        } else {
            Err(self.err_code(
                "parse/expected",
                format!("expected `=` or `+=`, found {}", self.peek()),
            ))
        }
    }

    fn pardo_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&T::Kw(K::Pardo))?;
        let first = self.expect_ident("index name")?;
        // `pardo ii in i` — parallel subsegment loop.
        if self.accept(&T::Kw(K::In)) {
            let parent = self.expect_ident("parent index name")?;
            self.expect_newline()?;
            let body = self.block_until(|t| matches!(t, T::Kw(K::EndPardo)))?;
            self.expect(&T::Kw(K::EndPardo))?;
            self.consume_index_list()?;
            self.expect_newline()?;
            return Ok(Stmt::DoIn {
                sub: first,
                parent,
                parallel: true,
                body,
                span,
            });
        }
        let mut indices = vec![first];
        while self.accept(&T::Comma) {
            indices.push(self.expect_ident("index name")?);
        }
        let mut wheres = Vec::new();
        while self.accept(&T::Kw(K::Where)) {
            wheres.push(self.cond()?);
        }
        self.expect_newline()?;
        // Additional `where` lines immediately following.
        loop {
            self.skip_newlines();
            if self.accept(&T::Kw(K::Where)) {
                wheres.push(self.cond()?);
                self.expect_newline()?;
            } else {
                break;
            }
        }
        let body = self.block_until(|t| matches!(t, T::Kw(K::EndPardo)))?;
        self.expect(&T::Kw(K::EndPardo))?;
        self.consume_index_list()?;
        self.expect_newline()?;
        Ok(Stmt::Pardo {
            indices,
            wheres,
            body,
            span,
        })
    }

    /// `enddo L` / `endpardo M, N, I, J` — consume the optional echo of the
    /// loop indices.
    fn consume_index_list(&mut self) -> PResult<()> {
        while matches!(self.peek(), T::Ident(_)) {
            self.bump();
            if !self.accept(&T::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn do_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&T::Kw(K::Do))?;
        let first = self.expect_ident("index name")?;
        if self.accept(&T::Kw(K::In)) {
            let parent = self.expect_ident("parent index name")?;
            self.expect_newline()?;
            let body = self.block_until(|t| matches!(t, T::Kw(K::EndDo)))?;
            self.expect(&T::Kw(K::EndDo))?;
            self.consume_index_list()?;
            self.expect_newline()?;
            return Ok(Stmt::DoIn {
                sub: first,
                parent,
                parallel: false,
                body,
                span,
            });
        }
        self.expect_newline()?;
        let body = self.block_until(|t| matches!(t, T::Kw(K::EndDo)))?;
        self.expect(&T::Kw(K::EndDo))?;
        self.consume_index_list()?;
        self.expect_newline()?;
        Ok(Stmt::Do {
            index: first,
            body,
            span,
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&T::Kw(K::If))?;
        let cond = self.cond()?;
        self.expect_newline()?;
        let then = self.block_until(|t| matches!(t, T::Kw(K::Else) | T::Kw(K::EndIf)))?;
        let els = if self.accept(&T::Kw(K::Else)) {
            self.expect_newline()?;
            self.block_until(|t| matches!(t, T::Kw(K::EndIf)))?
        } else {
            Vec::new()
        };
        self.expect(&T::Kw(K::EndIf))?;
        self.expect_newline()?;
        Ok(Stmt::If {
            cond,
            then,
            els,
            span,
        })
    }

    fn assign_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        let dest = if self.at_block_ref() {
            LValue::Block(self.block_expr()?)
        } else {
            let (name, sp) = self.ident_sp("variable name")?;
            LValue::Scalar(name, sp)
        };
        let op = match self.peek().clone() {
            T::Assign => {
                self.bump();
                AssignOp::Set
            }
            T::PlusAssign => {
                self.bump();
                AssignOp::Add
            }
            T::MinusAssign => {
                self.bump();
                AssignOp::Sub
            }
            T::StarAssign => {
                self.bump();
                AssignOp::Mul
            }
            other => {
                return Err(self.err_code(
                    "parse/expected",
                    format!("expected assignment operator, found {other}"),
                ))
            }
        };
        let rhs = self.rhs()?;
        self.expect_newline()?;
        Ok(Stmt::Assign {
            dest,
            op,
            rhs,
            span,
        })
    }

    fn rhs(&mut self) -> PResult<Rhs> {
        if self.at_block_ref() {
            let first = self.block_expr()?;
            if self.accept(&T::Star) {
                if self.at_block_ref() {
                    let second = self.block_expr()?;
                    return Ok(Rhs::Contract(first, second));
                }
                let factor = self.expr()?;
                return Ok(Rhs::ScaledBlock(factor, first));
            }
            return Ok(Rhs::Block(first));
        }
        let e = self.expr()?;
        // `expr * blockref` — the mul level stopped before the `*`.
        if matches!(self.peek(), T::Star) {
            self.bump();
            if self.at_block_ref() {
                let b = self.block_expr()?;
                return Ok(Rhs::ScaledBlock(e, b));
            }
            return Err(self.err("expected block reference after `*`"));
        }
        Ok(Rhs::Scalar(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_body(stmts: &str) -> AstProgram {
        let src = format!(
            "sial t\naoindex M = 1, 4\naoindex N = 1, 4\ndistributed A(M,N)\ntemp x(M,N)\nscalar s\n{stmts}\nendsial\n"
        );
        parse(&src).unwrap_or_else(|e| panic!("{e:?}\nsource:\n{src}"))
    }

    #[test]
    fn paper_example_parses() {
        let src = r#"
sial ccsd_term
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L,S,I,J)
distributed R(M,N,I,J)
temp V(M,N,L,S)
temp tmp(M,N,I,J)
temp tmpsum(M,N,I,J)
pardo M, N, I, J
  tmpsum(M,N,I,J) = 0.0
  do L
    do S
      get T(L,S,I,J)
      execute compute_integrals V(M,N,L,S)
      tmp(M,N,I,J) = V(M,N,L,S) * T(L,S,I,J)
      tmpsum(M,N,I,J) += tmp(M,N,I,J)
    enddo S
  enddo L
  put R(M,N,I,J) = tmpsum(M,N,I,J)
endpardo M, N, I, J
endsial
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.name, "ccsd_term");
        assert_eq!(p.decls.len(), 11);
        assert_eq!(p.body.len(), 1);
        match &p.body[0] {
            Stmt::Pardo { indices, body, .. } => {
                assert_eq!(indices, &["M", "N", "I", "J"]);
                assert_eq!(body.len(), 3); // fill, do L, put
            }
            other => panic!("expected pardo, got {other:?}"),
        }
    }

    #[test]
    fn sparse_modifier_parses_on_remote_kinds() {
        let src = "sial t\naoindex M = 1, 4\nsparse distributed X(M)\nsparse served Y(M)\ndistributed Z(M)\nendsial\n";
        let p = parse(src).unwrap();
        let sparse_of = |want: &str| {
            p.decls
                .iter()
                .find_map(|d| match d {
                    Decl::Array { name, sparse, .. } if name == want => Some(*sparse),
                    _ => None,
                })
                .unwrap()
        };
        assert!(sparse_of("X"));
        assert!(sparse_of("Y"));
        assert!(!sparse_of("Z"));
    }

    #[test]
    fn sparse_requires_remote_storage_class() {
        let src = "sial t\naoindex M = 1, 4\nsparse temp X(M)\nendsial\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e[0].code, "parse/sparse-kind");
        assert!(
            e[0].message.contains("`sparse` must be followed by"),
            "{}",
            e[0].message
        );
    }

    #[test]
    fn where_clause_inline_and_following_line() {
        let p = parse_body("pardo M, N where M < N\nwhere N <= 3\nx(M,N) = 0.0\nendpardo");
        match &p.body[0] {
            Stmt::Pardo { wheres, .. } => assert_eq!(wheres.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn subindex_loop_forms() {
        let src = "sial t\naoindex i = 1, 4\naoindex j = 1, 4\nsubindex ii of i\nlocal Xi(i,j)\ntemp Xii(ii,j)\npardo j\ndo i\ndo ii in i\nXii(ii,j) = Xi(ii,j)\nenddo ii\nenddo i\nendpardo j\nendsial\n";
        let p = parse(src).unwrap();
        match &p.body[0] {
            Stmt::Pardo { body, .. } => match &body[0] {
                Stmt::Do { body, .. } => {
                    assert!(matches!(
                        &body[0],
                        Stmt::DoIn {
                            parallel: false,
                            ..
                        }
                    ));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn pardo_in_parses_parallel() {
        let p = parse_body("do M\npardo N in M\nx(M,N) = 1.0\nendpardo\nenddo");
        match &p.body[0] {
            Stmt::Do { body, .. } => {
                assert!(matches!(&body[0], Stmt::DoIn { parallel: true, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn scaled_block_both_orders() {
        let p = parse_body("x(M,N) = 2.0 * A(M,N)\nx(M,N) = A(M,N) * 2.0");
        assert!(matches!(
            &p.body[0],
            Stmt::Assign {
                rhs: Rhs::ScaledBlock(_, _),
                ..
            }
        ));
        assert!(matches!(
            &p.body[1],
            Stmt::Assign {
                rhs: Rhs::ScaledBlock(_, _),
                ..
            }
        ));
    }

    #[test]
    fn contraction_rhs() {
        let p = parse_body("x(M,N) = A(M,N) * A(M,N)");
        assert!(matches!(
            &p.body[0],
            Stmt::Assign {
                rhs: Rhs::Contract(_, _),
                ..
            }
        ));
    }

    #[test]
    fn scalar_assign_with_expr() {
        let p = parse_body("s = 1.0 + 2.0 * 3.0 - s / 2.0");
        match &p.body[0] {
            Stmt::Assign {
                dest: LValue::Scalar(n, _),
                rhs: Rhs::Scalar(_),
                ..
            } => assert_eq!(n, "s"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else() {
        let p = parse_body("if s < 1.0 and not (s == 0.0)\ns = 1.0\nelse\ns = 2.0\nendif");
        match &p.body[0] {
            Stmt::If { then, els, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn put_and_prepare_modes() {
        let p = parse_body("put A(M,N) = x(M,N)\nput A(M,N) += x(M,N)");
        assert!(matches!(
            &p.body[0],
            Stmt::Put {
                mode: StoreMode::Replace,
                ..
            }
        ));
        assert!(matches!(
            &p.body[1],
            Stmt::Put {
                mode: StoreMode::Accumulate,
                ..
            }
        ));
    }

    #[test]
    fn proc_and_call() {
        let src = "sial t\nscalar s\nproc bump\ns = s + 1.0\nendproc bump\ncall bump\nendsial\n";
        let p = parse(src).unwrap();
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].name, "bump");
        assert!(matches!(&p.body[0], Stmt::Call { .. }));
    }

    #[test]
    fn endproc_name_mismatch_rejected() {
        let src = "sial t\nproc a\nendproc b\nendsial\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn checkpoint_statements() {
        let p = parse_body("blocks_to_list A \"ck\"\nlist_to_blocks A \"ck\"");
        assert!(matches!(&p.body[0], Stmt::BlocksToList { .. }));
        assert!(matches!(&p.body[1], Stmt::ListToBlocks { .. }));
    }

    #[test]
    fn barriers_create_delete() {
        let p = parse_body("sip_barrier\nserver_barrier\ncreate A\ndelete A");
        assert!(matches!(&p.body[0], Stmt::Barrier(BarrierKind::Sip, _)));
        assert!(matches!(&p.body[1], Stmt::Barrier(BarrierKind::Server, _)));
        assert!(matches!(&p.body[2], Stmt::Create(_, _)));
        assert!(matches!(&p.body[3], Stmt::Delete(_, _)));
    }

    #[test]
    fn print_statement() {
        let p = parse_body("print \"energy =\", s");
        match &p.body[0] {
            Stmt::Print { items, .. } => assert_eq!(items.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn declarations_after_statements_rejected() {
        let src = "sial t\nscalar s\ns = 1.0\nscalar q\nendsial\n";
        let err = parse(src).unwrap_err();
        assert!(err[0].message.contains("precede"));
    }

    #[test]
    fn missing_sial_header_rejected() {
        let err = parse("scalar s\n").unwrap_err();
        assert_eq!(err[0].code, "parse/missing-header");
    }

    #[test]
    fn unclosed_loop_rejected() {
        let src = "sial t\naoindex M = 1, 4\ntemp x(M)\ndo M\nx(M) = 0.0\nendsial\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn recovery_reports_every_bad_statement() {
        // Three broken lines, two good ones: one pass reports all three
        // errors and the AST keeps both good statements.
        let src = "sial t\nscalar s\ns = \ns = 1.0\nput\ns = 2.0\nblocks_to_list\nendsial\n";
        let (ast, diags) = parse_partial(src);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert_eq!(ast.body.len(), 2, "good statements survive");
        for d in &diags {
            assert!(d.code.starts_with("parse/"), "{}", d.code);
        }
    }

    #[test]
    fn recovery_inside_loop_body() {
        let p = {
            let src =
                "sial t\naoindex M = 1, 4\ntemp x(M)\ndo M\nx(M) = \nx(M) = 1.0\nenddo\nendsial\n";
            let (ast, diags) = parse_partial(src);
            assert_eq!(diags.len(), 1);
            ast
        };
        match &p.body[0] {
            Stmt::Do { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decl_spans_point_at_names() {
        let src = "sial t\naoindex M = 1, 4\nendsial\n";
        let p = parse(src).unwrap();
        let span = p.decls[0].span();
        assert_eq!(&src[span.start as usize..span.end as usize], "M");
    }
}
