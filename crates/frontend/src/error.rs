//! Compiler diagnostics.

use std::fmt;

/// What phase rejected the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Tokenizer error (bad character, malformed number/string).
    Lex,
    /// Grammar error.
    Parse,
    /// Name/type/structure error.
    Sema,
    /// Lowering error (should be rare; sema catches most).
    Lower,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lex"),
            ErrorKind::Parse => write!(f, "parse"),
            ErrorKind::Sema => write!(f, "semantic"),
            ErrorKind::Lower => write!(f, "lowering"),
        }
    }
}

/// A compiler error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The phase that failed.
    pub kind: ErrorKind,
    /// 1-based source line (0 when no location applies).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl CompileError {
    /// Constructs an error.
    pub fn new(kind: ErrorKind, line: u32, message: impl Into<String>) -> Self {
        CompileError {
            kind,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} error at line {}: {}",
                self.kind, self.line, self.message
            )
        } else {
            write!(f, "{} error: {}", self.kind, self.message)
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let e = CompileError::new(ErrorKind::Parse, 7, "unexpected token");
        assert_eq!(e.to_string(), "parse error at line 7: unexpected token");
        let e = CompileError::new(ErrorKind::Sema, 0, "boom");
        assert_eq!(e.to_string(), "semantic error: boom");
    }
}
