//! Compiler error aggregation.
//!
//! The front end is multi-error: every stage reports all the
//! [`Diagnostic`]s it can find in one pass. `CompileErrors` bundles them
//! into a single `std::error::Error` value for callers that want a plain
//! `Result` (the `compile()` facade, the CLI, the chem workloads).

use sia_bytecode::diag::Diagnostic;
use std::fmt;

/// Every diagnostic from a failed compilation, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileErrors {
    /// The individual findings (never empty for a returned error).
    pub diagnostics: Vec<Diagnostic>,
}

/// Backwards-compatible name: earlier revisions surfaced a single
/// `CompileError`; the multi-error recut aggregates instead.
pub type CompileError = CompileErrors;

impl CompileErrors {
    /// Wraps a list of diagnostics.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        CompileErrors { diagnostics }
    }

    /// The first (usually most relevant) diagnostic.
    pub fn primary(&self) -> Option<&Diagnostic> {
        self.diagnostics.first()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when there are no diagnostics.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl From<Vec<Diagnostic>> for CompileErrors {
    fn from(diagnostics: Vec<Diagnostic>) -> Self {
        CompileErrors { diagnostics }
    }
}

impl From<Diagnostic> for CompileErrors {
    fn from(d: Diagnostic) -> Self {
        CompileErrors {
            diagnostics: vec![d],
        }
    }
}

impl fmt::Display for CompileErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileErrors {}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_bytecode::diag::Span;

    #[test]
    fn display_joins_diagnostics() {
        let e = CompileErrors::new(vec![
            Diagnostic::error("parse/syntax", Span::new(0, 1), "first"),
            Diagnostic::error("sema/invalid", Span::new(2, 3), "second"),
        ]);
        let s = e.to_string();
        assert!(s.contains("error[parse/syntax]: first"), "{s}");
        assert!(s.contains("error[sema/invalid]: second"), "{s}");
        assert_eq!(s.lines().count(), 2);
        assert_eq!(e.len(), 2);
        assert_eq!(e.primary().unwrap().message, "first");
    }
}
