//! End-to-end LSP session over a real pipe: spawn the `sial-lsp` binary,
//! speak framed JSON-RPC on its stdin/stdout, and assert the full
//! initialize → didOpen → didChange → publishDiagnostics flow, plus
//! go-to-definition and hover against `programs/mp2_screened.sial`.

use sia_runtime::events::{parse_json, Json};
use sial_lsp::{read_message, write_message};
use std::io::BufReader;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Lsp {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Lsp {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sial-lsp"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("sial-lsp spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Lsp {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, payload: &str) {
        write_message(&mut self.stdin, payload).expect("write to server");
    }

    fn recv(&mut self) -> Json {
        let msg = read_message(&mut self.stdout)
            .expect("read from server")
            .expect("server still up");
        parse_json(&msg).expect("server speaks JSON")
    }

    /// Reads messages until one has this `id` (responses) — notifications
    /// arriving in between are discarded.
    fn recv_response(&mut self, id: u64) -> Json {
        loop {
            let m = self.recv();
            if m.get("id").and_then(Json::as_f64) == Some(id as f64) {
                return m;
            }
        }
    }

    /// Reads messages until a `textDocument/publishDiagnostics`
    /// notification arrives; returns its diagnostic array length and the
    /// raw params.
    fn recv_diagnostics(&mut self) -> Json {
        loop {
            let m = self.recv();
            if m.get("method").and_then(Json::as_str) == Some("textDocument/publishDiagnostics") {
                return m;
            }
        }
    }
}

fn diag_count(publish: &Json) -> usize {
    publish
        .get("params")
        .and_then(|p| p.get("diagnostics"))
        .and_then(Json::as_array)
        .map(<[Json]>::len)
        .expect("diagnostics array")
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[test]
fn full_session_over_a_pipe() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../programs/mp2_screened.sial"
    ))
    .expect("example program exists");
    let uri = "file:///mp2_screened.sial";
    let mut lsp = Lsp::spawn();

    // initialize → capabilities.
    lsp.send(r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"capabilities":{}}}"#);
    let init = lsp.recv_response(1);
    let caps = init
        .get("result")
        .and_then(|r| r.get("capabilities"))
        .expect("capabilities");
    assert!(caps.get("definitionProvider").is_some());
    lsp.send(r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#);

    // didOpen a clean program → empty diagnostics.
    lsp.send(&format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","languageId":"sial","version":1,"text":"{}"}}}}}}"#,
        esc(&src)
    ));
    assert_eq!(diag_count(&lsp.recv_diagnostics()), 0, "program is clean");

    // didChange introducing an undeclared array → one located finding.
    let broken = src.replace("get Vd(i,a,j,b)", "get Vq(i,a,j,b)");
    lsp.send(&format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":2}},"contentChanges":[{{"text":"{}"}}]}}}}"#,
        esc(&broken)
    ));
    let publish = lsp.recv_diagnostics();
    assert!(diag_count(&publish) >= 1, "edit introduced a finding");
    let first = publish
        .get("params")
        .and_then(|p| p.get("diagnostics"))
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .unwrap();
    assert_eq!(
        first.get("code").and_then(Json::as_str),
        Some("sema/unknown-name")
    );
    // The finding lands on the line of the edited statement.
    let line = first
        .get("range")
        .and_then(|r| r.get("start"))
        .and_then(|s| s.get("line"))
        .and_then(Json::as_f64)
        .expect("range.start.line") as usize;
    let expected = broken
        .lines()
        .position(|l| l.contains("Vq"))
        .expect("broken line present");
    assert_eq!(line, expected, "diagnostic is on the edited line");

    // didChange back → diagnostics clear.
    lsp.send(&format!(
        r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":3}},"contentChanges":[{{"text":"{}"}}]}}}}"#,
        esc(&src)
    ));
    assert_eq!(
        diag_count(&lsp.recv_diagnostics()),
        0,
        "fix clears findings"
    );

    // definition on a use of `Vd` lands on its declaration.
    let to_pos = |off: usize| {
        let before = &src[..off];
        let line = before.matches('\n').count();
        let col = off - before.rfind('\n').map_or(0, |i| i + 1);
        (line, col)
    };
    let (ul, uc) = to_pos(src.rfind("Vd(i,a,j,b)").unwrap());
    lsp.send(&format!(
        r#"{{"jsonrpc":"2.0","id":4,"method":"textDocument/definition","params":{{"textDocument":{{"uri":"{uri}"}},"position":{{"line":{ul},"character":{uc}}}}}}}"#
    ));
    let def = lsp.recv_response(4);
    let (dl, dc) = to_pos(src.find("Vd(i,a,j,b)").unwrap());
    let start = def
        .get("result")
        .and_then(|r| r.get("range"))
        .and_then(|r| r.get("start"))
        .expect("definition range");
    assert_eq!(
        start.get("line").and_then(Json::as_f64),
        Some(dl as f64),
        "definition line"
    );
    assert_eq!(
        start.get("character").and_then(Json::as_f64),
        Some(dc as f64),
        "definition column"
    );

    // hover on the same array reports the dry-run block size.
    lsp.send(&format!(
        r#"{{"jsonrpc":"2.0","id":5,"method":"textDocument/hover","params":{{"textDocument":{{"uri":"{uri}"}},"position":{{"line":{ul},"character":{uc}}}}}}}"#
    ));
    let hover = lsp.recv_response(5);
    let text = hover
        .get("result")
        .and_then(|r| r.get("contents"))
        .and_then(|c| c.get("value"))
        .and_then(Json::as_str)
        .expect("hover markdown");
    assert!(text.contains("dry-run block size"), "{text}");

    // shutdown → exit → process terminates cleanly.
    lsp.send(r#"{"jsonrpc":"2.0","id":6,"method":"shutdown"}"#);
    lsp.recv_response(6);
    lsp.send(r#"{"jsonrpc":"2.0","method":"exit"}"#);
    let status = lsp.child.wait().expect("server exits");
    assert!(status.success(), "clean exit, got {status:?}");
}
