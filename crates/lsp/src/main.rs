//! `sial-lsp` — stdio entry point: Content-Length framing around
//! [`sial_lsp::Server`]. Point your editor's LSP client at this binary for
//! live SIAL diagnostics, go-to-definition, and hover.

use std::io::{self, BufReader, Write};

fn main() -> io::Result<()> {
    let stdin = io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    let stdout = io::stdout();
    let mut writer = stdout.lock();
    let mut server = sial_lsp::Server::new();
    while let Some(msg) = sial_lsp::read_message(&mut reader)? {
        for out in server.handle(&msg) {
            sial_lsp::write_message(&mut writer, &out)?;
        }
        if server.exited {
            break;
        }
    }
    writer.flush()
}
