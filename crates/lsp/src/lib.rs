//! # sial-lsp — a language server over the incremental compiler database
//!
//! Speaks JSON-RPC 2.0 with `Content-Length` framing over stdio (the LSP
//! base protocol). One [`CompilerDb`] per open document gives the server
//! its incrementality: a keystroke re-runs only the queries the edit
//! invalidated, so diagnostics for a proc-local change re-typecheck only
//! that proc.
//!
//! Protocol surface (see `DESIGN.md` §19):
//!
//! * `initialize` / `shutdown` / `exit` — lifecycle; full-document sync.
//! * `textDocument/didOpen` / `didChange` / `didClose` — document state;
//!   every change pushes `textDocument/publishDiagnostics` combining the
//!   front-end stages (lex/parse/resolve/typecheck/lower) with the
//!   bytecode verifier's structural and pardo-race findings.
//! * `textDocument/definition` — indices, arrays, scalars, and procs
//!   resolve to the span of their declared name.
//! * `textDocument/hover` — declared segment ranges for indices, kind and
//!   dry-run block size for arrays, statement counts for procs.
//!
//! The server is a plain library ([`Server::handle`] maps one incoming
//! message to its outgoing messages) so tests can drive it without a
//! process boundary; `main.rs` adds the stdio framing.

use sia_bytecode::diag::{LineMap, Severity, Span};
use sia_runtime::events::{parse_json, Json};
use sia_runtime::SegmentConfig;
use sial_frontend::ast::{AstArrayKind, AstIndexKind, Bound, Decl};
use sial_frontend::token::Token;
use sial_frontend::CompilerDb;
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

// ---- framing ---------------------------------------------------------------

/// Reads one `Content-Length`-framed message; `None` at clean EOF.
pub fn read_message(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .strip_prefix("Content-Length:")
            .or_else(|| line.strip_prefix("content-length:"))
        {
            content_length = v.trim().parse().ok();
        }
        // Content-Type headers are tolerated and ignored.
    }
    let len = content_length
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing Content-Length"))?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "message is not UTF-8"))
}

/// Writes one `Content-Length`-framed message.
pub fn write_message(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(w, "Content-Length: {}\r\n\r\n{}", payload.len(), payload)?;
    w.flush()
}

// ---- JSON helpers ----------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Re-serializes a request id (number or string) for the response.
fn id_str(id: &Json) -> String {
    match id {
        Json::Num(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => format!("\"{}\"", esc(s)),
        _ => "null".to_string(),
    }
}

/// `{"line":L,"character":C}` — LSP positions are 0-based.
fn pos_json(map: &LineMap, offset: u32) -> String {
    let (line, col) = map.line_col(offset);
    format!("{{\"line\":{},\"character\":{}}}", line - 1, col - 1)
}

fn range_json(map: &LineMap, span: Span) -> String {
    format!(
        "{{\"start\":{},\"end\":{}}}",
        pos_json(map, span.start),
        pos_json(map, span.end)
    )
}

// ---- the server ------------------------------------------------------------

/// One language-server session: per-document compiler databases plus the
/// lifecycle flags.
#[derive(Default)]
pub struct Server {
    docs: BTreeMap<String, CompilerDb>,
    /// Set by `exit`; the stdio loop terminates on it.
    pub exited: bool,
}

impl Server {
    /// A fresh server with no open documents.
    pub fn new() -> Self {
        Server::default()
    }

    /// Handles one incoming JSON-RPC message, returning every outgoing
    /// message (the response, if the input was a request, plus any
    /// notifications it triggered).
    pub fn handle(&mut self, text: &str) -> Vec<String> {
        let Ok(msg) = parse_json(text) else {
            return vec![
                "{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{\"code\":-32700,\"message\":\"parse error\"}}"
                    .to_string(),
            ];
        };
        let method = msg.get("method").and_then(Json::as_str).unwrap_or("");
        let id = msg.get("id");
        let params = msg.get("params");
        match method {
            "initialize" => vec![self.resp(
                id,
                "{\"capabilities\":{\"textDocumentSync\":1,\"hoverProvider\":true,\
                 \"definitionProvider\":true},\
                 \"serverInfo\":{\"name\":\"sial-lsp\",\"version\":\"0.1.0\"}}",
            )],
            "initialized" | "$/cancelRequest" => Vec::new(),
            "shutdown" => vec![self.resp(id, "null")],
            "exit" => {
                self.exited = true;
                Vec::new()
            }
            "textDocument/didOpen" => self.did_open(params),
            "textDocument/didChange" => self.did_change(params),
            "textDocument/didClose" => self.did_close(params),
            "textDocument/definition" => vec![self.definition(id, params)],
            "textDocument/hover" => vec![self.hover(id, params)],
            _ if id.is_some() => vec![format!(
                "{{\"jsonrpc\":\"2.0\",\"id\":{},\"error\":{{\"code\":-32601,\
                 \"message\":\"method not found: {}\"}}}}",
                id_str(id.unwrap()),
                esc(method)
            )],
            _ => Vec::new(),
        }
    }

    fn resp(&self, id: Option<&Json>, result: &str) -> String {
        format!(
            "{{\"jsonrpc\":\"2.0\",\"id\":{},\"result\":{}}}",
            id.map(id_str).unwrap_or_else(|| "null".into()),
            result
        )
    }

    // ---- document sync ------------------------------------------------------

    fn did_open(&mut self, params: Option<&Json>) -> Vec<String> {
        let Some(p) = params else { return Vec::new() };
        let doc = p.get("textDocument");
        let (Some(uri), Some(text)) = (
            doc.and_then(|d| d.get("uri")).and_then(Json::as_str),
            doc.and_then(|d| d.get("text")).and_then(Json::as_str),
        ) else {
            return Vec::new();
        };
        self.docs
            .insert(uri.to_string(), CompilerDb::new(uri, text));
        vec![self.publish(uri)]
    }

    fn did_change(&mut self, params: Option<&Json>) -> Vec<String> {
        let Some(p) = params else { return Vec::new() };
        let Some(uri) = p
            .get("textDocument")
            .and_then(|d| d.get("uri"))
            .and_then(Json::as_str)
            .map(str::to_string)
        else {
            return Vec::new();
        };
        // Full sync: the last change carries the whole new text.
        let Some(text) = p
            .get("contentChanges")
            .and_then(Json::as_array)
            .and_then(|a| a.last())
            .and_then(|c| c.get("text"))
            .and_then(Json::as_str)
        else {
            return Vec::new();
        };
        match self.docs.get_mut(&uri) {
            Some(db) => db.set_source(text),
            None => {
                self.docs.insert(uri.clone(), CompilerDb::new(&uri, text));
            }
        }
        vec![self.publish(&uri)]
    }

    fn did_close(&mut self, params: Option<&Json>) -> Vec<String> {
        let Some(uri) = params
            .and_then(|p| p.get("textDocument"))
            .and_then(|d| d.get("uri"))
            .and_then(Json::as_str)
        else {
            return Vec::new();
        };
        self.docs.remove(uri);
        vec![format!(
            "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/publishDiagnostics\",\
             \"params\":{{\"uri\":\"{}\",\"diagnostics\":[]}}}}",
            esc(uri)
        )]
    }

    // ---- diagnostics --------------------------------------------------------

    /// The full diagnostic set for a document: every front-end stage via
    /// the database, plus the bytecode verifier (structure and pardo
    /// races) when the program lowers cleanly.
    fn publish(&mut self, uri: &str) -> String {
        let db = self.docs.get_mut(uri).expect("document is open");
        let map = db.line_map();
        let mut items: Vec<String> = db
            .diagnostics()
            .iter()
            .map(|d| lsp_diag(&map, d.span, d.severity, &d.code, &d.message))
            .collect();
        if let Some(program) = db.program() {
            for v in sia_runtime::verify::check_program(&program) {
                // Bytecode findings are line-granular: highlight the whole
                // source line the instruction was lowered from.
                let span = v
                    .source
                    .as_ref()
                    .map(|&(_, line)| map.line_span(line))
                    .unwrap_or_else(|| Span::new(0, 0));
                items.push(lsp_diag(
                    &map,
                    span,
                    Severity::Error,
                    &format!("verify/{}", v.rule.name()),
                    &v.message,
                ));
            }
        }
        format!(
            "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/publishDiagnostics\",\
             \"params\":{{\"uri\":\"{}\",\"diagnostics\":[{}]}}}}",
            esc(uri),
            items.join(",")
        )
    }

    // ---- navigation ---------------------------------------------------------

    /// The identifier under the cursor, from the token query.
    fn ident_at(&mut self, uri: &str, offset: u32) -> Option<(String, Span)> {
        let db = self.docs.get_mut(uri)?;
        let (tokens, _) = db.tokens();
        tokens.iter().find_map(|t| match &t.token {
            Token::Ident(name) if t.span.start <= offset && offset <= t.span.end => {
                Some((name.clone(), t.span))
            }
            _ => None,
        })
    }

    /// The declaration site of `name`: a top-level decl or a proc.
    fn decl_of(&mut self, uri: &str, name: &str) -> Option<Span> {
        let db = self.docs.get_mut(uri)?;
        let (ast, _) = db.ast();
        ast.decls
            .iter()
            .find(|d| d.name() == name)
            .map(Decl::span)
            .or_else(|| ast.procs.iter().find(|p| p.name == name).map(|p| p.span))
    }

    fn definition(&mut self, id: Option<&Json>, params: Option<&Json>) -> String {
        let Some((uri, offset)) = self.uri_offset(params) else {
            return self.resp(id, "null");
        };
        let target = self
            .ident_at(&uri, offset)
            .and_then(|(name, _)| self.decl_of(&uri, &name));
        match target {
            Some(span) => {
                let map = self
                    .docs
                    .get_mut(&uri)
                    .expect("document is open")
                    .line_map();
                self.resp(
                    id,
                    &format!(
                        "{{\"uri\":\"{}\",\"range\":{}}}",
                        esc(&uri),
                        range_json(&map, span)
                    ),
                )
            }
            None => self.resp(id, "null"),
        }
    }

    fn hover(&mut self, id: Option<&Json>, params: Option<&Json>) -> String {
        let Some((uri, offset)) = self.uri_offset(params) else {
            return self.resp(id, "null");
        };
        let Some((name, span)) = self.ident_at(&uri, offset) else {
            return self.resp(id, "null");
        };
        let Some(text) = self.hover_text(&uri, &name) else {
            return self.resp(id, "null");
        };
        let map = self
            .docs
            .get_mut(&uri)
            .expect("document is open")
            .line_map();
        self.resp(
            id,
            &format!(
                "{{\"contents\":{{\"kind\":\"markdown\",\"value\":\"{}\"}},\"range\":{}}}",
                esc(&text),
                range_json(&map, span)
            ),
        )
    }

    /// Hover content: declared segment ranges for indices, kind plus the
    /// dry-run block size for arrays (default segment configuration, f64
    /// elements), statement counts for procs.
    fn hover_text(&mut self, uri: &str, name: &str) -> Option<String> {
        let db = self.docs.get_mut(uri)?;
        let (ast, _) = db.ast();
        let segs = SegmentConfig::default();
        if let Some(d) = ast.decls.iter().find(|d| d.name() == name) {
            return Some(match d {
                Decl::Index {
                    name,
                    kind,
                    low,
                    high,
                    ..
                } => {
                    let seg = segs.default;
                    format!(
                        "**{name}** — `{}`, declared range {}..{}\n\ndry-run segments of {seg} \
                         elements per block dimension",
                        index_kind_name(*kind),
                        bound_str(low),
                        bound_str(high),
                    )
                }
                Decl::Subindex { name, parent, .. } => format!(
                    "**{name}** — `subindex` of `{parent}`\n\naddresses {} subsegments of each \
                     `{parent}` segment",
                    segs.nsub
                ),
                Decl::Array {
                    name,
                    kind,
                    dims,
                    sparse,
                    ..
                } => {
                    let seg = segs.default;
                    let block_bytes = (seg as u64).pow(dims.len() as u32) * 8;
                    format!(
                        "**{name}** — {}`{}` array, rank {} ({})\n\ndry-run block size: {} doubles \
                         = {}",
                        if *sparse { "`sparse` " } else { "" },
                        array_kind_name(*kind),
                        dims.len(),
                        dims.join(","),
                        (seg as u64).pow(dims.len() as u32),
                        human_bytes(block_bytes),
                    )
                }
                Decl::Scalar { name, init, .. } => {
                    format!("**{name}** — `scalar`, initial value {init}")
                }
            });
        }
        if let Some(p) = ast.procs.iter().find(|p| p.name == name) {
            return Some(format!(
                "**{}** — procedure, {} statement(s)",
                p.name,
                p.body.len()
            ));
        }
        None
    }

    /// Extracts `(uri, byte offset)` from positional request params.
    fn uri_offset(&mut self, params: Option<&Json>) -> Option<(String, u32)> {
        let p = params?;
        let uri = p.get("textDocument")?.get("uri")?.as_str()?.to_string();
        let pos = p.get("position")?;
        let line = pos.get("line")?.as_f64()? as u32;
        let character = pos.get("character")?.as_f64()? as u32;
        let map = self.docs.get_mut(&uri)?.line_map();
        Some((uri, map.offset(line + 1, character + 1)))
    }

    /// Memo-table hit/miss counters for a document (observability; used by
    /// the incrementality tests).
    pub fn stats_summary(&self, uri: &str) -> Option<String> {
        self.docs.get(uri).map(|db| db.stats().summary())
    }
}

fn lsp_diag(map: &LineMap, span: Span, severity: Severity, code: &str, message: &str) -> String {
    let sev = match severity {
        Severity::Error => 1,
        Severity::Warning => 2,
        Severity::Note => 3,
    };
    format!(
        "{{\"range\":{},\"severity\":{},\"code\":\"{}\",\"source\":\"sial\",\"message\":\"{}\"}}",
        range_json(map, span),
        sev,
        esc(code),
        esc(message)
    )
}

fn index_kind_name(k: AstIndexKind) -> &'static str {
    match k {
        AstIndexKind::Ao => "aoindex",
        AstIndexKind::Mo => "moindex",
        AstIndexKind::MoA => "moaindex",
        AstIndexKind::MoB => "mobindex",
        AstIndexKind::La => "laindex",
        AstIndexKind::Simple => "index",
    }
}

fn array_kind_name(k: AstArrayKind) -> &'static str {
    match k {
        AstArrayKind::Static => "static",
        AstArrayKind::Temp => "temp",
        AstArrayKind::Local => "local",
        AstArrayKind::Distributed => "distributed",
        AstArrayKind::Served => "served",
    }
}

fn bound_str(b: &Bound) -> String {
    match b {
        Bound::Lit(v) => v.to_string(),
        Bound::Sym(s) => s.clone(),
    }
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, method: &str, params: &str) -> String {
        format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"{method}\",\"params\":{params}}}")
    }

    fn notif(method: &str, params: &str) -> String {
        format!("{{\"jsonrpc\":\"2.0\",\"method\":\"{method}\",\"params\":{params}}}")
    }

    fn open(server: &mut Server, uri: &str, text: &str) -> String {
        let out = server.handle(&notif(
            "textDocument/didOpen",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"{uri}\",\"languageId\":\"sial\",\
                 \"version\":1,\"text\":\"{}\"}}}}",
                esc(text)
            ),
        ));
        assert_eq!(out.len(), 1, "didOpen publishes once");
        out.into_iter().next().unwrap()
    }

    fn mp2_screened() -> String {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../programs/mp2_screened.sial"
        );
        std::fs::read_to_string(path).expect("programs/mp2_screened.sial exists")
    }

    /// Byte offset → LSP position params for a (line, character) pair
    /// derived from the first occurrence of `needle` in `text`.
    fn position_of(text: &str, needle: &str) -> (u32, u32) {
        let off = text.find(needle).expect("needle present") as u32;
        let map = LineMap::new(text);
        let (l, c) = map.line_col(off);
        (l - 1, c - 1)
    }

    #[test]
    fn initialize_advertises_capabilities() {
        let mut s = Server::new();
        let out = s.handle(&req(1, "initialize", "{}"));
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"id\":1"), "{}", out[0]);
        assert!(out[0].contains("\"hoverProvider\":true"), "{}", out[0]);
        assert!(out[0].contains("\"definitionProvider\":true"), "{}", out[0]);
    }

    #[test]
    fn clean_program_publishes_empty_diagnostics() {
        let mut s = Server::new();
        let out = open(&mut s, "file:///mp2.sial", &mp2_screened());
        assert!(out.contains("publishDiagnostics"), "{out}");
        assert!(out.contains("\"diagnostics\":[]"), "{out}");
    }

    #[test]
    fn broken_program_publishes_located_diagnostics() {
        let mut s = Server::new();
        let out = open(
            &mut s,
            "file:///bad.sial",
            "sial bad\naoindex i = 1, n\npardo i\n  get X(i)\nendpardo i\nendsial\n",
        );
        assert!(out.contains("sema/unknown-name"), "{out}");
        assert!(out.contains("\"severity\":1"), "{out}");
        // `get X(i)` sits on 0-based line 3.
        assert!(out.contains("\"line\":3"), "{out}");
    }

    #[test]
    fn race_findings_reach_the_client() {
        let mut s = Server::new();
        let out = open(
            &mut s,
            "file:///race.sial",
            "sial ww\naoindex i = 1, n\naoindex j = 1, n\ndistributed X(j)\ntemp t(j)\n\
             pardo i, j\n  t(j) = 1.0\n  put X(j) = t(j)\nendpardo i, j\nendsial\n",
        );
        assert!(out.contains("verify/write-write-race"), "{out}");
        // The put statement is 0-based line 7; the finding highlights it.
        assert!(out.contains("{\"line\":7,\"character\":0}"), "{out}");
    }

    #[test]
    fn did_change_clears_fixed_diagnostics() {
        let mut s = Server::new();
        let uri = "file:///fix.sial";
        let broken = "sial f\naoindex i = 1, n\npardo i\n  get X(i)\nendpardo i\nendsial\n";
        let fixed = "sial f\naoindex i = 1, n\ndistributed X(i)\npardo i\n  get X(i)\n\
                     endpardo i\nendsial\n";
        let out = open(&mut s, uri, broken);
        assert!(out.contains("sema/unknown-name"), "{out}");
        let out = s.handle(&notif(
            "textDocument/didChange",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"{uri}\",\"version\":2}},\
                 \"contentChanges\":[{{\"text\":\"{}\"}}]}}",
                esc(fixed)
            ),
        ));
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"diagnostics\":[]"), "{}", out[0]);
    }

    #[test]
    fn goto_definition_on_mp2_screened() {
        let src = mp2_screened();
        let mut s = Server::new();
        let uri = "file:///mp2_screened.sial";
        open(&mut s, uri, &src);
        // A use of `Vd` inside the second pardo body resolves to its
        // declaration line.
        let use_off = src.rfind("Vd(i,a,j,b)").expect("array used") as u32;
        let map = LineMap::new(&src);
        let (ul, uc) = map.line_col(use_off);
        let out = s.handle(&req(
            7,
            "textDocument/definition",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"{uri}\"}},\
                 \"position\":{{\"line\":{},\"character\":{}}}}}",
                ul - 1,
                uc - 1
            ),
        ));
        assert_eq!(out.len(), 1);
        let decl_off = src.find("Vd(i,a,j,b)").unwrap() as u32;
        let (dl, dc) = map.line_col(decl_off);
        assert!(
            out[0].contains(&format!(
                "\"start\":{{\"line\":{},\"character\":{}}}",
                dl - 1,
                dc - 1
            )),
            "definition should land on the declaration: {}",
            out[0]
        );
        assert!(out[0].contains(uri), "{}", out[0]);
    }

    #[test]
    fn hover_shows_ranges_and_block_sizes_on_mp2_screened() {
        let src = mp2_screened();
        let mut s = Server::new();
        let uri = "file:///mp2_screened.sial";
        open(&mut s, uri, &src);
        // Hover an index declaration: segment range.
        let (l, c) = position_of(&src, "i = 1, nocc");
        let out = s.handle(&req(
            8,
            "textDocument/hover",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"{uri}\"}},\
                 \"position\":{{\"line\":{l},\"character\":{c}}}}}"
            ),
        ));
        assert!(out[0].contains("declared range"), "{}", out[0]);
        // Hover an array: dry-run block size.
        let (l, c) = position_of(&src, "Vd(i,a,j,b)");
        let out = s.handle(&req(
            9,
            "textDocument/hover",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"{uri}\"}},\
                 \"position\":{{\"line\":{l},\"character\":{c}}}}}"
            ),
        ));
        assert!(out[0].contains("dry-run block size"), "{}", out[0]);
        assert!(out[0].contains("rank 4"), "{}", out[0]);
    }

    #[test]
    fn unknown_method_with_id_errors_politely() {
        let mut s = Server::new();
        let out = s.handle(&req(3, "textDocument/rename", "{}"));
        assert!(out[0].contains("-32601"), "{}", out[0]);
    }

    #[test]
    fn shutdown_then_exit_terminates() {
        let mut s = Server::new();
        let out = s.handle(&req(2, "shutdown", "null"));
        assert!(out[0].contains("\"result\":null"), "{}", out[0]);
        assert!(!s.exited);
        s.handle("{\"jsonrpc\":\"2.0\",\"method\":\"exit\"}");
        assert!(s.exited);
    }

    #[test]
    fn framing_roundtrips() {
        let mut buf = Vec::new();
        write_message(&mut buf, "{\"x\":1}").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(read_message(&mut r).unwrap().as_deref(), Some("{\"x\":1}"));
        assert_eq!(read_message(&mut r).unwrap(), None, "EOF after one message");
    }
}
