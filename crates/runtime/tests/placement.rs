//! Placement-strategy tests: the planner-derived placement must be an
//! invisible optimization — bitwise-identical collected blocks and scalars
//! versus hash placement — while measurably cutting fabric messages on
//! broadcast-shaped workloads, and the PR 2 fault machinery (retry, dedup,
//! crash recovery) must hold with multicast and envelope batching active.
//!
//! Values in these programs are small integers scaled by powers of two, so
//! every sum is exact in f64 regardless of the order placement-induced
//! scheduling produces — any bitwise deviation is a real protocol bug.

use proptest::prelude::*;
use sia_bytecode::ConstBindings;
use sia_runtime::{CrashSchedule, FaultConfig, FaultPlan, Placement, RunOutput, Sip, SipConfig};

/// `F(M)` is indexed by a strict subset of the `pardo M, N` indices: every
/// worker needs each F block once per N-column — the multicast shape.
const BCAST: &str = "sial bcast
aoindex M = 1, n
aoindex N = 1, n
distributed F(M)
distributed R(M,N)
temp f(M)
temp q(M,N)
pardo M
f(M) = 0.5
put F(M) = f(M)
endpardo
sip_barrier
pardo M, N
get F(M)
f(M) = F(M)
q(M,N) = 0.0
put R(M,N) = q(M,N)
endpardo
sip_barrier
endsial
";

/// Contraction shape with a do-loop get (not broadcast-shaped) plus a
/// pardo-aligned put (the owner-compute affinity path) and a scalar
/// reduction.
const CONTRACT: &str = "sial ctr
aoindex M = 1, n
aoindex N = 1, n
aoindex L = 1, n
distributed T(L,N)
distributed R(M,N)
temp t(L,N)
temp v(M,L)
temp p(M,N)
temp acc(M,N)
scalar rnorm
pardo L, N
t(L,N) = L + 10.0 * N
put T(L,N) = t(L,N)
endpardo L, N
sip_barrier
pardo M, N
acc(M,N) = 0.0
do L
get T(L,N)
v(M,L) = 2.0
p(M,N) = v(M,L) * T(L,N)
acc(M,N) += p(M,N)
enddo L
put R(M,N) = acc(M,N)
endpardo M, N
sip_barrier
pardo M, N
get R(M,N)
rnorm += R(M,N) * R(M,N)
endpardo M, N
sip_barrier
execute sip_allreduce rnorm
endsial
";

fn config(workers: usize, seg: usize, placement: Placement) -> SipConfig {
    SipConfig::builder()
        .workers(workers)
        .io_servers(0)
        .segment_size(seg)
        .placement(placement)
        .collect_distributed(true)
        .build()
        .unwrap()
}

fn run(src: &str, n: i64, config: SipConfig) -> RunOutput {
    let program = sial_frontend::compile(src).unwrap();
    let bindings: ConstBindings = [("n".to_string(), n)].into_iter().collect();
    Sip::new(config).run(program, &bindings).unwrap()
}

fn assert_bitwise_equal(a: &RunOutput, b: &RunOutput) {
    assert_eq!(
        a.collected.keys().collect::<Vec<_>>(),
        b.collected.keys().collect::<Vec<_>>()
    );
    for (name, blocks) in &a.collected {
        let other = &b.collected[name];
        assert_eq!(blocks.len(), other.len(), "{name}: block count");
        for (key, block) in blocks {
            let ob = &other[key];
            let bits: Vec<u64> = block.data().iter().map(|x| x.to_bits()).collect();
            let obits: Vec<u64> = ob.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, obits, "{name}{key:?}: bitwise mismatch");
        }
    }
    assert_eq!(
        a.scalars.keys().collect::<Vec<_>>(),
        b.scalars.keys().collect::<Vec<_>>()
    );
    for (name, v) in &a.scalars {
        assert_eq!(
            v.to_bits(),
            b.scalars[name].to_bits(),
            "scalar {name}: {} vs {}",
            v,
            b.scalars[name]
        );
    }
}

#[test]
fn planned_matches_hash_bitwise_on_broadcast_shape() {
    let hash = run(BCAST, 8, config(4, 4, Placement::Hash));
    let planned = run(BCAST, 8, config(4, 4, Placement::Planned));
    assert_bitwise_equal(&hash, &planned);
    assert!(
        planned.profile.metrics.plan.multicast_blocks > 0,
        "the broadcast shape must actually exercise multicast: {:?}",
        planned.profile.metrics.plan
    );
}

#[test]
fn planned_matches_hash_bitwise_on_contraction() {
    let hash = run(CONTRACT, 6, config(3, 3, Placement::Hash));
    let planned = run(CONTRACT, 6, config(3, 3, Placement::Planned));
    // All values are exact integers in f64, so the reduction is
    // order-independent: n=6 seg=3 gives ‖R‖² = 744874704 exactly.
    assert_eq!(hash.scalars["rnorm"], 744_874_704.0);
    assert_bitwise_equal(&hash, &planned);
}

/// The headline number: multicast + owner-compute affinity + envelope
/// batching must cut fabric messages by at least 30% on the broadcast
/// workload (the acceptance bar; measured runs sit near 60%).
#[test]
fn planned_cuts_messages_at_least_30_percent() {
    let hash = run(BCAST, 12, config(4, 4, Placement::Hash));
    let planned = run(BCAST, 12, config(4, 4, Placement::Planned));
    let (hm, pm) = (hash.traffic.messages, planned.traffic.messages);
    assert!(
        (pm as f64) <= 0.7 * hm as f64,
        "planned {pm} msgs vs hash {hm} msgs — reduction below 30%"
    );
    assert!(
        planned.profile.metrics.plan.coalesced_messages > 0,
        "envelope batching must coalesce staged forwards: {:?}",
        planned.profile.metrics.plan
    );
}

/// Seeded drops/dups/delays with multicast and batching active: dropped
/// multicast pushes fall back to demand GETs, batched envelopes retry as
/// units, and per-message OpId dedup still suppresses duplicates — the
/// collected result stays bitwise-exact.
#[test]
fn planned_placement_survives_seeded_faults_bitwise() {
    let clean = run(BCAST, 8, config(3, 4, Placement::Planned));

    let mut plan = FaultPlan::seeded(0xCAFE);
    plan.drop = 0.05;
    plan.duplicate = 0.02;
    plan.delay = 0.02;
    let cfg = SipConfig::builder()
        .workers(3)
        .io_servers(0)
        .segment_size(4)
        .placement(Placement::Planned)
        .collect_distributed(true)
        .fault(FaultConfig::new(plan))
        .build()
        .unwrap();
    let faulty = run(BCAST, 8, cfg);

    assert_bitwise_equal(&clean, &faulty);
    assert!(
        faulty.profile.metrics.fabric.perturbed() > 0,
        "the plan must actually have perturbed traffic: {:?}",
        faulty.profile.metrics.fabric
    );
}

/// A worker crash mid-pardo under planned placement: the dead rank's homes
/// re-hash to survivors and the master requeues its chunks — still exact.
#[test]
fn planned_placement_survives_worker_crash_bitwise() {
    let clean = run(BCAST, 8, config(3, 4, Placement::Planned));

    let mut plan = FaultPlan::seeded(0x5EEDED);
    plan.drop = 0.03;
    let mut fault = FaultConfig::new(plan);
    fault.crash = Some(CrashSchedule {
        worker: 1,
        after_iterations: 3,
    });
    let cfg = SipConfig::builder()
        .workers(3)
        .io_servers(0)
        .segment_size(4)
        .placement(Placement::Planned)
        .collect_distributed(true)
        .fault(fault)
        .build()
        .unwrap();
    let faulty = run(BCAST, 8, cfg);

    assert_bitwise_equal(&clean, &faulty);
    assert_eq!(faulty.profile.metrics.recovery.ranks_died, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: for arbitrary problem sizes, worker counts, and
    /// segment sizes, the planned placement is observationally identical to
    /// hash — bitwise on every collected block and scalar.
    #[test]
    fn planned_equals_hash_for_arbitrary_shapes(
        n in 2i64..10,
        workers in 1usize..5,
        seg in 2usize..5,
    ) {
        let hash = run(BCAST, n, config(workers, seg, Placement::Hash));
        let planned = run(BCAST, n, config(workers, seg, Placement::Planned));
        assert_bitwise_equal(&hash, &planned);
    }
}
