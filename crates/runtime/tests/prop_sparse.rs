//! Property tests for block-sparse arrays: a sparse declaration at threshold
//! zero stores bitwise-identical blocks to a dense one; a positive threshold
//! loses at most the screened norm bounds; and fabric faults (drops,
//! duplicates, delays) must neither resurrect a dropped block nor change
//! results.
//!
//! The fill uses strictly positive per-block values, so "skipped" and
//! "computed-as-zero" are the only two outcomes a contraction can have —
//! there is no `-0.0` ambiguity to excuse a bitwise mismatch with.

use proptest::prelude::*;
use sia_bytecode::ConstBindings;
use sia_runtime::{FaultConfig, FaultPlan, RunOutput, Sip, SipConfig};

/// Multi-worker `total +=` reductions pick up pardo chunks dynamically, so
/// the summation order — and hence the last ulp of the scalar — varies from
/// run to run even for a dense program. Block payloads stay bitwise
/// deterministic (each is a pure function of its key), so the strong
/// assertions below compare blocks by bits and scalars to within
/// summation-reorder noise.
const REORDER_EPS: f64 = 1e-12;

/// Bitwise comparison of every collected block: same key sets, same payload
/// bits. This is the property typed absence must preserve — which blocks
/// exist and exactly what they hold.
fn assert_blocks_bitwise_equal(a: &RunOutput, b: &RunOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        a.collected.keys().collect::<Vec<_>>(),
        b.collected.keys().collect::<Vec<_>>()
    );
    for (name, blocks) in &a.collected {
        let other = &b.collected[name];
        prop_assert_eq!(
            blocks.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "{}: resident-block sets differ",
            name
        );
        for (key, block) in blocks {
            let bits: Vec<u64> = block.data().iter().map(|x| x.to_bits()).collect();
            let obits: Vec<u64> = other[key].data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits, obits, "{}{:?}: bitwise mismatch", name, key);
        }
    }
    Ok(())
}

/// Fills `A(i,k)` with per-block values `1/(i·i·k·k)` — a decaying, strictly
/// positive pattern where far blocks fall under small thresholds — then
/// reduces `Σ A·A` through the contraction path.
fn sparse_src(sparse: bool) -> String {
    let decl = if sparse {
        "sparse distributed"
    } else {
        "distributed"
    };
    format!(
        "sial sp\n\
         aoindex i = 1, n\n\
         aoindex k = 1, n\n\
         {decl} A(i,k)\n\
         temp t(i,k)\n\
         scalar total\n\
         pardo i, k\n\
           t(i,k) = 1.0 / (i * i * k * k)\n\
           put A(i,k) = t(i,k)\n\
         endpardo i, k\n\
         sip_barrier\n\
         pardo i, k\n\
           get A(i,k)\n\
           total += A(i,k) * A(i,k)\n\
         endpardo i, k\n\
         sip_barrier\n\
         execute sip_allreduce total\n\
         endsial\n"
    )
}

fn run(src: &str, n: i64, workers: usize, threshold: f64, fault: Option<FaultConfig>) -> RunOutput {
    let program = sial_frontend::compile(src).unwrap();
    let bindings: ConstBindings = [("n".to_string(), n)].into_iter().collect();
    let mut b = SipConfig::builder()
        .workers(workers)
        .io_servers(0)
        .segment_size(2)
        .collect_distributed(true)
        .sparsity_threshold(threshold);
    if let Some(f) = fault {
        b = b.fault(f);
    }
    Sip::new(b.build().unwrap())
        .run(program, &bindings)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At threshold zero the sparse kind is a pure representation change:
    /// every stored block is bitwise-equal to the dense declaration's, for
    /// any size and worker count, and with one worker (deterministic chunk
    /// order) the reduced scalar matches bit-for-bit too.
    #[test]
    fn threshold_zero_is_bitwise_dense(n in 2i64..7, workers in 1usize..4) {
        let dense = run(&sparse_src(false), n, workers, 0.0, None);
        let sparse = run(&sparse_src(true), n, workers, 0.0, None);
        assert_blocks_bitwise_equal(&dense, &sparse)?;
        let (d, s) = (dense.scalars["total"], sparse.scalars["total"]);
        if workers == 1 {
            prop_assert_eq!(d.to_bits(), s.to_bits(), "dense {} vs sparse {}", d, s);
        } else {
            prop_assert!((d - s).abs() <= REORDER_EPS, "dense {d} vs sparse {s}");
        }
    }

    /// A positive threshold loses at most one norm-bound per block pair:
    /// each dropped put forfeits under `t²` of the reduction, each skipped
    /// contraction under `t` (Cauchy–Schwarz), so the dense/sparse gap is
    /// bounded by `blocks · t`.
    #[test]
    fn positive_threshold_error_is_bounded(
        n in 2i64..7,
        workers in 1usize..4,
        threshold in prop::sample::select(vec![1e-6, 1e-4, 1e-2]),
    ) {
        let dense = run(&sparse_src(true), n, workers, 0.0, None);
        let sparse = run(&sparse_src(true), n, workers, threshold, None);
        let blocks = dense.collected["A"].len() as f64;
        let gap = (dense.scalars["total"] - sparse.scalars["total"]).abs();
        prop_assert!(
            gap <= blocks * threshold + 1e-15,
            "gap {gap} exceeds {blocks} blocks × threshold {threshold}"
        );
        // Sparse totals never exceed dense ones here: screening only
        // removes strictly positive contributions.
        prop_assert!(sparse.scalars["total"] <= dense.scalars["total"] + 1e-15);
    }

    /// Seeded fabric faults against a screening run: retries and duplicate
    /// deliveries must not resurrect a dropped block (the home re-screens
    /// every redelivered payload) and must not change the reduction.
    #[test]
    fn faults_do_not_resurrect_dropped_blocks(
        n in 3i64..6,
        seed in 1u64..65,
    ) {
        let threshold = 1e-3;
        let clean = run(&sparse_src(true), n, 3, threshold, None);
        let mut plan = FaultPlan::seeded(seed);
        plan.drop = 0.05;
        plan.duplicate = 0.05;
        plan.delay = 0.02;
        let faulty = run(
            &sparse_src(true), n, 3, threshold, Some(FaultConfig::new(plan)),
        );
        assert_blocks_bitwise_equal(&clean, &faulty)?;
        let (c, f) = (clean.scalars["total"], faulty.scalars["total"]);
        prop_assert!(
            (c - f).abs() <= REORDER_EPS,
            "faults changed the screened reduction: clean {c} vs faulty {f}"
        );
    }
}

/// Deterministic spot check: with the decaying fill, a mid-range threshold
/// really does drop blocks (the property tests above would pass vacuously
/// if screening never fired).
#[test]
fn screening_actually_fires() {
    let n = 6;
    let dense = run(&sparse_src(true), n, 2, 0.0, None);
    let sparse = run(&sparse_src(true), n, 2, 1e-2, None);
    let (total, kept) = (dense.collected["A"].len(), sparse.collected["A"].len());
    assert!(
        kept < total,
        "threshold 1e-2 should drop some of the {total} blocks"
    );
    let sp = &sparse.profile.metrics.sparse;
    assert!(sp.blocks_skipped > 0, "contractions must skip: {sp:?}");
    assert!(sp.flops_avoided > 0);
}
