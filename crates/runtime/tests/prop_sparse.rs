//! Property tests for block-sparse arrays: a sparse declaration at threshold
//! zero stores bitwise-identical blocks to a dense one; a positive threshold
//! loses at most the screened norm bounds; and fabric faults (drops,
//! duplicates, delays) must neither resurrect a dropped block nor change
//! results.
//!
//! The fill uses strictly positive per-block values, so "skipped" and
//! "computed-as-zero" are the only two outcomes a contraction can have —
//! there is no `-0.0` ambiguity to excuse a bitwise mismatch with.

use proptest::prelude::*;
use sia_bytecode::ConstBindings;
use sia_runtime::{FaultConfig, FaultPlan, RunOutput, Sip, SipConfig};

/// Multi-worker `total +=` reductions pick up pardo chunks dynamically, so
/// the summation order — and hence the last ulp of the scalar — varies from
/// run to run even for a dense program. Block payloads stay bitwise
/// deterministic (each is a pure function of its key), so the strong
/// assertions below compare blocks by bits and scalars to within
/// summation-reorder noise.
const REORDER_EPS: f64 = 1e-12;

/// Bitwise comparison of every collected block: same key sets, same payload
/// bits. This is the property typed absence must preserve — which blocks
/// exist and exactly what they hold.
fn assert_blocks_bitwise_equal(a: &RunOutput, b: &RunOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        a.collected.keys().collect::<Vec<_>>(),
        b.collected.keys().collect::<Vec<_>>()
    );
    for (name, blocks) in &a.collected {
        let other = &b.collected[name];
        prop_assert_eq!(
            blocks.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "{}: resident-block sets differ",
            name
        );
        for (key, block) in blocks {
            let bits: Vec<u64> = block.data().iter().map(|x| x.to_bits()).collect();
            let obits: Vec<u64> = other[key].data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits, obits, "{}{:?}: bitwise mismatch", name, key);
        }
    }
    Ok(())
}

/// Fills `A(i,k)` with per-block values `1/(i·i·k·k)` — a decaying, strictly
/// positive pattern where far blocks fall under small thresholds — then
/// reduces `Σ A·A` through the contraction path.
fn sparse_src(sparse: bool) -> String {
    let decl = if sparse {
        "sparse distributed"
    } else {
        "distributed"
    };
    format!(
        "sial sp\n\
         aoindex i = 1, n\n\
         aoindex k = 1, n\n\
         {decl} A(i,k)\n\
         temp t(i,k)\n\
         scalar total\n\
         pardo i, k\n\
           t(i,k) = 1.0 / (i * i * k * k)\n\
           put A(i,k) = t(i,k)\n\
         endpardo i, k\n\
         sip_barrier\n\
         pardo i, k\n\
           get A(i,k)\n\
           total += A(i,k) * A(i,k)\n\
         endpardo i, k\n\
         sip_barrier\n\
         execute sip_allreduce total\n\
         endsial\n"
    )
}

fn run(src: &str, n: i64, workers: usize, threshold: f64, fault: Option<FaultConfig>) -> RunOutput {
    run_placed(src, n, workers, threshold, fault, false)
}

fn run_placed(
    src: &str,
    n: i64,
    workers: usize,
    threshold: f64,
    fault: Option<FaultConfig>,
    planned: bool,
) -> RunOutput {
    let program = sial_frontend::compile(src).unwrap();
    let bindings: ConstBindings = [("n".to_string(), n)].into_iter().collect();
    let mut b = SipConfig::builder()
        .workers(workers)
        .io_servers(0)
        .segment_size(2)
        .collect_distributed(true)
        .sparsity_threshold(threshold);
    if planned {
        b = b.placement(sia_runtime::Placement::Planned);
    }
    if let Some(f) = fault {
        b = b.fault(f);
    }
    Sip::new(b.build().unwrap())
        .run(program, &bindings)
        .unwrap()
}

/// A broadcast-shaped sparse operand: `F(i)` is read by every `k`, so under
/// planned placement its present blocks travel as `MulticastBlock` and its
/// screened-absent blocks as `MulticastAbsent` — staged down the same tree
/// edges and coalesced into shared `Batch` envelopes.
fn multicast_src() -> String {
    "sial mb\n\
     aoindex i = 1, n\n\
     aoindex k = 1, n\n\
     sparse distributed F(i)\n\
     temp t(i)\n\
     scalar total\n\
     pardo i\n\
       t(i) = 1.0 / (i * i * i * i)\n\
       put F(i) = t(i)\n\
     endpardo i\n\
     sip_barrier\n\
     pardo i, k\n\
       get F(i)\n\
       total += F(i) * F(i)\n\
     endpardo i, k\n\
     sip_barrier\n\
     execute sip_allreduce total\n\
     endsial\n"
        .to_string()
}

/// The 2-D cousin of [`multicast_src`]: `F(i,j)` blocks carry seg² doubles,
/// so payload bytes dominate control-message noise — the shape the traffic
/// pin below needs to measure byte savings without flapping.
fn multicast2_src() -> String {
    "sial mb2\n\
     aoindex i = 1, n\n\
     aoindex j = 1, n\n\
     aoindex k = 1, n\n\
     sparse distributed F(i,j)\n\
     temp t(i,j)\n\
     scalar total\n\
     pardo i, j\n\
       t(i,j) = 1.0 / ((i * i + j * j) * (i * i + j * j))\n\
       put F(i,j) = t(i,j)\n\
     endpardo i, j\n\
     sip_barrier\n\
     pardo i, j, k\n\
       get F(i,j)\n\
       total += F(i,j) * F(i,j)\n\
     endpardo i, j, k\n\
     sip_barrier\n\
     execute sip_allreduce total\n\
     endsial\n"
        .to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At threshold zero the sparse kind is a pure representation change:
    /// every stored block is bitwise-equal to the dense declaration's, for
    /// any size and worker count, and with one worker (deterministic chunk
    /// order) the reduced scalar matches bit-for-bit too.
    #[test]
    fn threshold_zero_is_bitwise_dense(n in 2i64..7, workers in 1usize..4) {
        let dense = run(&sparse_src(false), n, workers, 0.0, None);
        let sparse = run(&sparse_src(true), n, workers, 0.0, None);
        assert_blocks_bitwise_equal(&dense, &sparse)?;
        let (d, s) = (dense.scalars["total"], sparse.scalars["total"]);
        if workers == 1 {
            prop_assert_eq!(d.to_bits(), s.to_bits(), "dense {} vs sparse {}", d, s);
        } else {
            prop_assert!((d - s).abs() <= REORDER_EPS, "dense {d} vs sparse {s}");
        }
    }

    /// A positive threshold loses at most one norm-bound per block pair:
    /// each dropped put forfeits under `t²` of the reduction, each skipped
    /// contraction under `t` (Cauchy–Schwarz), so the dense/sparse gap is
    /// bounded by `blocks · t`.
    #[test]
    fn positive_threshold_error_is_bounded(
        n in 2i64..7,
        workers in 1usize..4,
        threshold in prop::sample::select(vec![1e-6, 1e-4, 1e-2]),
    ) {
        let dense = run(&sparse_src(true), n, workers, 0.0, None);
        let sparse = run(&sparse_src(true), n, workers, threshold, None);
        let blocks = dense.collected["A"].len() as f64;
        let gap = (dense.scalars["total"] - sparse.scalars["total"]).abs();
        prop_assert!(
            gap <= blocks * threshold + 1e-15,
            "gap {gap} exceeds {blocks} blocks × threshold {threshold}"
        );
        // Sparse totals never exceed dense ones here: screening only
        // removes strictly positive contributions.
        prop_assert!(sparse.scalars["total"] <= dense.scalars["total"] + 1e-15);
    }

    /// Seeded fabric faults against a screening run: retries and duplicate
    /// deliveries must not resurrect a dropped block (the home re-screens
    /// every redelivered payload) and must not change the reduction.
    #[test]
    fn faults_do_not_resurrect_dropped_blocks(
        n in 3i64..6,
        seed in 1u64..65,
    ) {
        let threshold = 1e-3;
        let clean = run(&sparse_src(true), n, 3, threshold, None);
        let mut plan = FaultPlan::seeded(seed);
        plan.drop = 0.05;
        plan.duplicate = 0.05;
        plan.delay = 0.02;
        let faulty = run(
            &sparse_src(true), n, 3, threshold, Some(FaultConfig::new(plan)),
        );
        assert_blocks_bitwise_equal(&clean, &faulty)?;
        let (c, f) = (clean.scalars["total"], faulty.scalars["total"]);
        prop_assert!(
            (c - f).abs() <= REORDER_EPS,
            "faults changed the screened reduction: clean {c} vs faulty {f}"
        );
    }

    /// Regression (PR 9): batched absent/real interleavings. Under planned
    /// placement a sparse broadcast operand ships real payloads and
    /// typed-absent norm records through the same staged multicast
    /// envelopes; seeded drops, duplicates, and delays then deliver norm
    /// records *after* the real payload for the same key (a late-flushed
    /// `Batch`, a delayed duplicate hop). A norm record must never
    /// supersede a payload already cached — if it did, consumers would
    /// read absent-zero for a present block and the reduction would drift
    /// far beyond summation-reorder noise.
    #[test]
    fn batched_absent_real_interleavings_keep_payloads(
        n in 4i64..9,
        seed in 1u64..49,
    ) {
        let threshold = 1e-2;
        let src = multicast_src();
        let clean = run_placed(&src, n, 3, threshold, None, true);
        let mut plan = FaultPlan::seeded(seed);
        plan.drop = 0.05;
        plan.duplicate = 0.10;
        plan.delay = 0.10;
        plan.max_delay_ops = 8;
        let faulty = run_placed(
            &src, n, 3, threshold, Some(FaultConfig::new(plan)), true,
        );
        assert_blocks_bitwise_equal(&clean, &faulty)?;
        let (c, f) = (clean.scalars["total"], faulty.scalars["total"]);
        prop_assert!(
            (c - f).abs() <= REORDER_EPS,
            "interleaved absent/real delivery changed the reduction: clean {c} vs faulty {f}"
        );
        // The hash-placement (no multicast) run is the ground truth both
        // must match.
        let hash = run_placed(&src, n, 3, threshold, None, false);
        prop_assert!((hash.scalars["total"] - c).abs() <= REORDER_EPS);
    }
}

/// Regression pin (PR 9): on the screened broadcast shape, planned
/// placement must cut fabric messages against hash placement (present
/// blocks ride the multicast tree instead of per-consumer GET
/// round-trips), and screening must cut planned-path bytes (screened
/// blocks ride the tree as `MulticastAbsent` norm records instead of full
/// payloads). The sparse savings counter must show the absent path fired.
#[test]
fn multicast_absent_improves_screened_broadcast_traffic() {
    // The 2-D operand: enough blocks (and enough bytes per block) that the
    // data-path savings dominate control-message noise — chunk grants vary
    // a little with worker interleaving run to run, so a pin on a shape
    // with a few-dozen-byte margin would flip sign.
    let n = 8;
    let threshold = 1e-2;
    let src = multicast2_src();
    let hash = run_placed(&src, n, 3, threshold, None, false);
    let planned = run_placed(&src, n, 3, threshold, None, true);
    assert_blocks_bitwise_equal(&hash, &planned).unwrap();
    assert!(
        (hash.scalars["total"] - planned.scalars["total"]).abs() <= REORDER_EPS,
        "placement changed the screened reduction"
    );
    // Screening must actually fire on this shape: consumers that learned of
    // an absence credit the bytes they did not have to pull. (The absolute
    // counts differ between paths — the tree delivers each absence once per
    // consumer and it stays cached, while the demand path answers every
    // fetch — so only `> 0` is pinned, not a cross-path comparison.)
    let sp = &planned.profile.metrics.sparse;
    assert!(
        sp.bytes_not_shipped > 0,
        "screened broadcast shipped every block: {sp:?}"
    );
    assert!(
        hash.profile.metrics.sparse.bytes_not_shipped > 0,
        "demand path must also credit unshipped bytes"
    );
    // The improvement pins. Messages: the tree replaces per-consumer GET
    // round-trips, a ~40% cut against demand fetching. Bytes: measured
    // against *unscreened* planned placement — the same tree, but every
    // screened block riding it as a full payload instead of a norm record.
    // (Bytes against the hash path are a wash on broadcast shapes: the
    // saved GET requests are about as small as the forwarding headers the
    // tree adds, so that difference sits inside scheduling noise.)
    assert!(
        planned.traffic.messages < hash.traffic.messages,
        "planned multicast should cut messages: planned {} vs hash {}",
        planned.traffic.messages,
        hash.traffic.messages
    );
    let unscreened = run_placed(&src, n, 3, 0.0, None, true);
    assert!(
        planned.traffic.bytes < unscreened.traffic.bytes,
        "absent records should cut multicast bytes: screened {} vs unscreened {}",
        planned.traffic.bytes,
        unscreened.traffic.bytes
    );
}

/// Deterministic spot check: with the decaying fill, a mid-range threshold
/// really does drop blocks (the property tests above would pass vacuously
/// if screening never fired).
#[test]
fn screening_actually_fires() {
    let n = 6;
    let dense = run(&sparse_src(true), n, 2, 0.0, None);
    let sparse = run(&sparse_src(true), n, 2, 1e-2, None);
    let (total, kept) = (dense.collected["A"].len(), sparse.collected["A"].len());
    assert!(
        kept < total,
        "threshold 1e-2 should drop some of the {total} blocks"
    );
    let sp = &sparse.profile.metrics.sparse;
    assert!(sp.blocks_skipped > 0, "contractions must skip: {sp:?}");
    assert!(sp.flops_avoided > 0);
}
