//! Property tests for the SIP: scheduler partitioning, where-clause
//! filtering vs brute force, accumulate-commutativity under real concurrent
//! execution, and dry-run consistency.

use proptest::prelude::*;
use sia_bytecode::{BoolExpr, CmpOp, ConstBindings, IndexId, ScalarExpr};
use sia_runtime::scheduler::{GuidedScheduler, IterationSpace};
use sia_runtime::{Sip, SipConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Guided chunks partition [0, total) exactly once with non-increasing
    /// sizes.
    #[test]
    fn guided_partitions_exactly(total in 0u64..5000, workers in 1usize..64, factor in 1usize..5) {
        let mut s = GuidedScheduler::new(total, workers, factor);
        let mut next_expected = 0u64;
        let mut last_size = u64::MAX;
        while let Some(r) = s.next_chunk() {
            prop_assert_eq!(r.start, next_expected, "chunks must be contiguous");
            prop_assert!(r.end > r.start);
            let size = r.end - r.start;
            prop_assert!(size <= last_size, "guided sizes must not increase");
            last_size = size;
            next_expected = r.end;
        }
        prop_assert_eq!(next_expected, total, "all work assigned");
        prop_assert_eq!(s.remaining(), 0);
    }

    /// Where-clause enumeration equals brute-force filtering of the cross
    /// product, for random rectangular ranges and a random linear clause.
    #[test]
    fn iteration_space_matches_brute_force(
        lo1 in 1i64..4, len1 in 1i64..5,
        lo2 in 1i64..4, len2 in 1i64..5,
        bound in 0i64..12,
        strict in prop::bool::ANY,
    ) {
        let ranges = [(lo1, lo1 + len1 - 1), (lo2, lo2 + len2 - 1)];
        let op = if strict { CmpOp::Lt } else { CmpOp::Le };
        let clause = BoolExpr::Cmp(
            ScalarExpr::Bin(
                sia_bytecode::BinOp::Add,
                Box::new(ScalarExpr::IndexVal(IndexId(0))),
                Box::new(ScalarExpr::IndexVal(IndexId(1))),
            ),
            op,
            ScalarExpr::Lit(bound as f64),
        );
        let space = IterationSpace::enumerate(
            &[IndexId(0), IndexId(1)],
            &ranges,
            std::slice::from_ref(&clause),
            &|_| 0.0,
            &|_| 0,
        )
        .unwrap();
        let mut brute = Vec::new();
        for i in ranges[0].0..=ranges[0].1 {
            for j in ranges[1].0..=ranges[1].1 {
                let pass = if strict { i + j < bound } else { i + j <= bound };
                if pass {
                    brute.push(vec![i, j]);
                }
            }
        }
        prop_assert_eq!(space.iters, brute);
    }

    /// Concurrent `put +=` into one block commutes: for any number of
    /// contributions and workers, the total is exact (run on the real SIP).
    #[test]
    fn accumulate_commutes_under_real_concurrency(
        n in 1i64..12,
        workers in 1usize..4,
        value in prop::sample::select(vec![0.25f64, 1.0, 2.0, -0.5]),
    ) {
        let src = format!(
            "sial acc\naoindex i = 1, {n}\naoindex k = 1, 1\ndistributed X(k,k)\ntemp one(k,k)\npardo i, k\none(k,k) = {value}\nput X(k,k) += one(k,k)\nendpardo i, k\nsip_barrier\nendsial\n"
        );
        let program = sial_frontend::compile(&src).unwrap();
        let config = SipConfig::builder()
            .workers(workers)
            .io_servers(0)
            .segment_size(2)
            .collect_distributed(true)
            .build()
            .unwrap();
        let out = Sip::new(config).run(program, &ConstBindings::new()).unwrap();
        let block = &out.collected["X"][&vec![1, 1]];
        let want = n as f64 * value;
        prop_assert!(
            block.data().iter().all(|&x| (x - want).abs() < 1e-9),
            "got {:?}, want {want}", block.data()
        );
    }

    /// Dry-run estimates never underestimate the *distributed-store* bytes a
    /// real run leaves resident (checked via collected blocks).
    #[test]
    fn dry_run_upper_bounds_distributed_residency(n in 1i64..5, workers in 1usize..4) {
        let src = format!(
            "sial mem\naoindex i = 1, {n}\ndistributed X(i,i)\ntemp t(i,i)\npardo i\nt(i,i) = 1.0\nput X(i,i) = t(i,i)\nendpardo i\nsip_barrier\nendsial\n"
        );
        let program = sial_frontend::compile(&src).unwrap();
        let config = SipConfig::builder()
            .workers(workers)
            .io_servers(0)
            .segment_size(3)
            .collect_distributed(true)
            .build()
            .unwrap();
        let sip = Sip::new(config);
        let estimate = sip.dry_run(program.clone(), &ConstBindings::new()).unwrap();
        let out = sip.run(program, &ConstBindings::new()).unwrap();
        let actual_bytes: u64 = out
            .collected
            .values()
            .flat_map(|blocks| blocks.values())
            .map(|b| b.len() as u64 * 8)
            .sum();
        // The estimate is per worker; total distributed ≤ estimate × workers.
        prop_assert!(
            estimate.per_worker_bytes * workers as u64 >= actual_bytes,
            "estimate {} × {workers} < actual {actual_bytes}",
            estimate.per_worker_bytes
        );
    }

    /// Scalar expressions inside SIAL agree with host-side arithmetic for
    /// random operand values routed through index variables.
    #[test]
    fn index_arithmetic_in_conditions(hi in 2i64..9, threshold in 1i64..10) {
        // Count blocks where 2·i − 1 > threshold via an if statement.
        let src = format!(
            "sial cond\naoindex i = 1, {hi}\nscalar count\npardo i\nif 2.0 * i - 1.0 > {threshold}.0\ncount += 1.0\nendif\nendpardo i\nsip_barrier\nexecute sip_allreduce count\nendsial\n"
        );
        let program = sial_frontend::compile(&src).unwrap();
        let config = SipConfig::builder()
            .workers(2)
            .io_servers(0)
            .segment_size(2)
            .build()
            .unwrap();
        let out = Sip::new(config).run(program, &ConstBindings::new()).unwrap();
        let want = (1..=hi).filter(|i| 2 * i - 1 > threshold).count() as f64;
        prop_assert!((out.scalars["count"] - want).abs() < 1e-12);
    }
}
