//! Integration tests for the unified observability surface: the overlap
//! metric (prefetch on/off), the cross-rank trace export, wait-cause
//! attribution, and the `--trace`/`--profile-json` file outputs.

use sia_bytecode::ConstBindings;
use sia_runtime::prelude::*;
use sia_runtime::{lint_chrome_trace, lint_profile_json};

/// A two-phase program whose second phase gets a remote block and uses it
/// on the very next instruction: with prefetch off every flight is fully
/// exposed, with look-ahead the next row's flights hide under the blocked
/// wait and the accumulate.
const OVERLAP_SRC: &str = r#"
sial overlap_probe
aoindex i = 1, n
aoindex j = 1, n
distributed X(i,j)
temp t(i,j)
scalar acc
pardo i, j
  t(i,j) = 1.5
  put X(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i
  do j
    get X(i,j)
    acc += X(i,j) * X(i,j)
  enddo j
endpardo i
sip_barrier
execute sip_allreduce acc
endsial
"#;

fn run_overlap(prefetch: usize, trace: bool) -> RunOutput {
    let program = sial_frontend::compile(OVERLAP_SRC).unwrap();
    let mut bindings = ConstBindings::new();
    bindings.insert("n".into(), 6);
    let config = SipConfig::builder()
        .workers(2)
        .io_servers(1)
        .prefetch_depth(prefetch)
        .cache_blocks(64)
        .collect_distributed(false)
        .trace(trace)
        .build()
        .unwrap();
    Sip::new(config).run(program, &bindings).unwrap()
}

#[test]
fn serialized_gets_expose_flights_prefetch_hides_them() {
    let serial = run_overlap(0, false);
    let ahead = run_overlap(4, false);
    let sc = serial.profile.metrics.comm;
    let ac = ahead.profile.metrics.comm;
    assert!(sc.fetches > 0, "remote fetches expected: {sc:?}");
    assert!(ac.fetches > 0, "remote fetches expected: {ac:?}");
    let serial_overlap = sc.overlap().expect("fetches flew");
    let ahead_overlap = ac.overlap().expect("fetches flew");
    assert!(
        serial_overlap < 0.35,
        "back-to-back get/use must expose its flights, measured {serial_overlap:.3} ({sc:?})"
    );
    assert!(
        ahead_overlap > 0.5,
        "look-ahead must hide most flight time, measured {ahead_overlap:.3} ({ac:?})"
    );
    assert!(
        ahead_overlap > serial_overlap,
        "prefetch must improve overlap: {ahead_overlap:.3} vs {serial_overlap:.3}"
    );
}

#[test]
fn wait_time_is_attributed_by_cause() {
    let out = run_overlap(0, false);
    let wait = &out.profile.metrics.wait;
    assert!(
        wait.get(WaitCause::BlockArrival) > 0,
        "serialized gets must block on block arrival: {wait:?}"
    );
    let barrierish = wait.get(WaitCause::SipBarrier)
        + wait.get(WaitCause::ChunkAssign)
        + wait.get(WaitCause::AckDrain)
        + wait.get(WaitCause::Collective);
    assert!(
        barrierish > 0,
        "barriers/collectives must account: {wait:?}"
    );
    // The per-cause breakdown IS the total (single accounting point).
    let sum: u64 = WaitCause::ALL.iter().map(|&c| wait.get(c)).sum();
    assert_eq!(sum, wait.total_nanos());
    // The report totals come from the same breakdown.
    let report_wait: u64 = out
        .profile
        .worker_waits
        .iter()
        .map(|d| d.as_nanos() as u64)
        .sum();
    assert_eq!(report_wait, wait.total_nanos());
}

#[test]
fn trace_covers_every_rank_and_lints_clean() {
    let out = run_overlap(2, true);
    let tl = out.trace.as_ref().expect("tracing was enabled");
    // master (0) + 2 workers (1, 2) + 1 I/O server (3).
    let ranks: Vec<usize> = tl.ranks.iter().map(|r| r.rank).collect();
    assert_eq!(ranks, vec![0, 1, 2, 3], "one timeline entry per rank");
    assert_eq!(tl.ranks[0].label, "master");
    assert_eq!(tl.ranks[1].label, "worker 1");
    assert_eq!(tl.ranks[3].label, "io 3");
    for w in &tl.ranks[1..3] {
        assert!(!w.events.is_empty(), "{} recorded no events", w.label);
    }
    assert!(tl.total_events() > 0);

    let json = tl.to_chrome_json(None);
    let lint = lint_chrome_trace(&json).expect("chrome trace lints clean");
    assert!(lint.events >= tl.total_events());
    for widx in [1u64, 2] {
        let r = lint.ranks.get(&widx).expect("worker rank in trace");
        assert!(r.spans > 0, "worker {widx} has no spans");
        assert!(
            r.cats.contains("instruction"),
            "worker {widx} missing instruction spans: {:?}",
            r.cats
        );
        assert!(
            r.cats.contains("comm"),
            "worker {widx} missing comm flights: {:?}",
            r.cats
        );
    }
}

#[test]
fn trace_and_profile_files_are_written_and_lint() {
    let dir = std::env::temp_dir().join(format!("sia-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let profile_path = dir.join("profile.json");

    let program = sial_frontend::compile(OVERLAP_SRC).unwrap();
    let mut bindings = ConstBindings::new();
    bindings.insert("n".into(), 4);
    let config = SipConfig::builder()
        .workers(2)
        .io_servers(1)
        .collect_distributed(false)
        .trace_path(&trace_path)
        .profile_json(&profile_path)
        .build()
        .unwrap();
    let out = Sip::new(config).run(program, &bindings).unwrap();
    assert!(out.trace.is_some(), "trace_path implies tracing");

    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written");
    lint_chrome_trace(&trace_text).expect("written trace lints clean");
    let profile_text = std::fs::read_to_string(&profile_path).expect("profile file written");
    lint_profile_json(&profile_text).expect("written profile lints clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_off_leaves_no_timeline() {
    let out = run_overlap(2, false);
    assert!(out.trace.is_none());
    assert!(
        out.profile.metrics.comm.fetches > 0,
        "overlap metric is always on"
    );
}
