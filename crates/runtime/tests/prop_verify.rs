//! Property test for the static verifier: randomly generated well-formed
//! SIAL programs — phases of pardo writes and reads with a `sip_barrier`
//! after every phase, destinations always covering the pardo indices — are
//! race-free by construction, so `sial check` must accept every one of
//! them with zero diagnostics. This pins the verifier's false-positive
//! rate at zero over the space of programs the frontend emits, not just
//! the shipped examples.

use proptest::prelude::*;
use sia_runtime::verify::check_program;
use std::fmt::Write as _;

const INDEX_POOL: [&str; 3] = ["i", "j", "k"];

/// One generated array: a distinct subset of the index pool as dims.
#[derive(Debug, Clone)]
struct ArraySpec {
    dims: Vec<&'static str>,
}

/// One generated phase over one array.
#[derive(Debug, Clone)]
struct Phase {
    array: usize,
    /// true = put (write phase), false = get (read phase).
    write: bool,
    /// `put +=` instead of `put =` (write phases only).
    accumulate: bool,
    /// Add a `where d0 <= d1` clause (rank-2 arrays only).
    with_where: bool,
}

fn arb_array() -> impl Strategy<Value = ArraySpec> {
    prop_oneof![
        (0..3usize).prop_map(|a| ArraySpec {
            dims: vec![INDEX_POOL[a]],
        }),
        (0..3usize, 0..2usize).prop_map(|(a, off)| {
            let b = (a + 1 + off) % 3;
            ArraySpec {
                dims: vec![INDEX_POOL[a], INDEX_POOL[b]],
            }
        }),
    ]
}

fn arb_phase(n_arrays: usize) -> impl Strategy<Value = Phase> {
    (0..n_arrays, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(array, write, accumulate, with_where)| Phase {
            array,
            write,
            accumulate,
            with_where,
        },
    )
}

/// Renders the generated spec as SIAL source.
fn render(arrays: &[ArraySpec], phases: &[Phase]) -> String {
    let mut s = String::from("sial prop_verify\n");
    for name in INDEX_POOL {
        let _ = writeln!(s, "aoindex {name} = 1, n");
    }
    for (a, spec) in arrays.iter().enumerate() {
        let dims = spec.dims.join(",");
        let _ = writeln!(s, "distributed X{a}({dims})");
        let _ = writeln!(s, "temp t{a}({dims})");
        let _ = writeln!(s, "temp u{a}({dims})");
    }
    for ph in phases {
        let spec = &arrays[ph.array];
        let dims = spec.dims.join(", ");
        let refdims = spec.dims.join(",");
        let a = ph.array;
        let wher = if ph.with_where && spec.dims.len() == 2 {
            format!(" where {} <= {}", spec.dims[0], spec.dims[1])
        } else {
            String::new()
        };
        let _ = writeln!(s, "pardo {dims}{wher}");
        if ph.write {
            let op = if ph.accumulate { "+=" } else { "=" };
            let _ = writeln!(s, "  t{a}({refdims}) = 1.0");
            let _ = writeln!(s, "  put X{a}({refdims}) {op} t{a}({refdims})");
        } else {
            let _ = writeln!(s, "  get X{a}({refdims})");
            let _ = writeln!(s, "  u{a}({refdims}) = X{a}({refdims})");
        }
        let _ = writeln!(s, "endpardo {dims}");
        let _ = writeln!(s, "sip_barrier");
    }
    s.push_str("endsial\n");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every barrier-disciplined frontend-compiled program passes
    /// `sial check` with zero diagnostics.
    #[test]
    fn generated_race_free_programs_pass_check(
        arrays in prop::collection::vec(arb_array(), 1..4),
        raw_phases in prop::collection::vec(arb_phase(3), 1..8),
    ) {
        let phases: Vec<Phase> = raw_phases
            .into_iter()
            .map(|mut p| { p.array %= arrays.len(); p })
            .collect();
        let src = render(&arrays, &phases);
        let program = sial_frontend::compile(&src).unwrap_or_else(|e| {
            panic!("generated source failed to compile: {e}\n{src}")
        });
        let diags = check_program(&program);
        prop_assert!(
            diags.is_empty(),
            "false positive on a race-free program:\n{}\nsource:\n{src}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    /// Dropping the barrier between a replace-mode write phase and a read
    /// phase of the same array must always be flagged: no false negatives
    /// on the canonical get-after-put shape.
    #[test]
    fn unbarriered_write_read_pair_is_always_flagged(array in arb_array()) {
        let arrays = [array];
        let mut src = render(
            &arrays,
            &[Phase { array: 0, write: true, accumulate: false, with_where: false }],
        );
        // Strip the trailing barrier and append a read phase.
        src.truncate(src.rfind("sip_barrier").unwrap());
        let dims = arrays[0].dims.join(", ");
        let refdims = arrays[0].dims.join(",");
        let _ = writeln!(src, "pardo {dims}");
        let _ = writeln!(src, "  get X0({refdims})");
        let _ = writeln!(src, "  u0({refdims}) = X0({refdims})");
        let _ = writeln!(src, "endpardo {dims}");
        src.push_str("endsial\n");
        let program = sial_frontend::compile(&src).unwrap();
        let diags = check_program(&program);
        prop_assert!(
            diags.iter().any(|d| d.rule.name() == "get-after-put"),
            "missed race:\n{src}"
        );
    }
}
